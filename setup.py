"""Packaging shim.

Core stays dependency-light (numpy + networkx); the accelerator array
namespaces are *extras* so ``pip install repro[torch]`` /
``repro[cupy]`` matches the install hints the backend registry and
:class:`repro.backends.MissingDependencyError` print.  The backends
themselves import lazily — installing an extra flips the corresponding
``einsum-torch`` / ``einsum-cupy`` registry entry from "unavailable
(hint)" to usable, with no code changes.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Equivalence checking of noisy quantum circuits via tensor-network "
        "contraction (reproduction of Hong et al., DAC 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "networkx",
    ],
    extras_require={
        # optional array namespaces for the einsum-* backends
        "torch": ["torch"],
        "cupy": ["cupy"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
