"""The HTTP checking service end to end, driven with nothing but urllib.

Launches a real `repro.service` server in-process (its own event loop on
a background thread — the same server `repro serve` binds to a port)
and walks every endpoint the way a remote caller would:

1. `GET  /healthz`      — liveness;
2. `POST /v1/check`     — `CheckRequest` wire JSON in, `CheckResponse`
   wire JSON out; typed error records mapped to HTTP statuses;
3. `POST /v1/batch`     — NDJSON rows streamed back order-preserving
   and error-isolating;
4. `POST /v1/jobs` + `GET /v1/jobs/{id}` — submit now, collect later;
5. `GET  /metrics`      — Prometheus text fed by the engine's
   cumulative stats.

Everything on the wire is the version-1 schema the CLI and in-process
`Engine` speak — see docs/service.md and docs/api.md.

Run: ``python examples/engine_service.py``
"""

import io
import json
import urllib.error
import urllib.request

from repro import Engine
from repro.service import ServiceThread

REQUEST = {
    "schema_version": "1",
    "ideal": {"library": "qft", "params": {"num_qubits": 4}},
    "noise": {"channel": "depolarizing", "p": 0.999, "noises": 2, "seed": 7},
    "epsilon": 0.01,
}


def post(url: str, body: bytes):
    """POST bytes; return (status, body) even for error statuses."""
    try:
        with urllib.request.urlopen(
            urllib.request.Request(url, data=body, method="POST"), timeout=60
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def main() -> None:
    engine = Engine(cache=True)
    with ServiceThread(engine, log_stream=io.StringIO()) as server:
        base = server.base_url
        print(f"service up    : {base}  (ephemeral loopback port)")

        # --- 1. liveness --------------------------------------------------
        status, body = get(base + "/healthz")
        print(f"healthz       : HTTP {status}  {body.decode().strip()}")

        # --- 2. one check over the wire ----------------------------------
        status, body = post(base + "/v1/check", json.dumps(REQUEST).encode())
        record = json.loads(body)
        print(f"check         : HTTP {status}  {record['verdict']}  "
              f"F_J = {record['fidelity']:.6f}")

        # the identical request again is answered from the result cache
        status, body = post(base + "/v1/check", json.dumps(REQUEST).encode())
        hits = json.loads(body)["stats"]["result_cache_hit"]
        print(f"warm repeat   : HTTP {status}  result_cache_hit = {hits}")

        # a broken request: typed error record, mapped HTTP status
        status, body = post(base + "/v1/check", b'{"epsilonn": 0.1}')
        record = json.loads(body)
        print(f"typo'd field  : HTTP {status}  "
              f"error_code = {record['error_code']}")

        # --- 3. an error-isolating batch stream --------------------------
        rows = [
            REQUEST,
            {"ideal": {"path": "does-not-exist.qasm"}},
            dict(REQUEST, epsilon=0.05),
        ]
        ndjson = b"".join(json.dumps(r).encode() + b"\n" for r in rows)
        status, body = post(base + "/v1/batch", ndjson)
        print(f"batch         : HTTP {status}")
        for line in body.splitlines():
            record = json.loads(line)
            detail = (f"error_code = {record['error_code']}"
                      if record["verdict"] == "ERROR"
                      else f"F_J = {record['fidelity']:.6f}")
            print(f"  [{record['index']}] {record['verdict']:<14} {detail}")

        # --- 4. submit / poll jobs ---------------------------------------
        status, body = post(base + "/v1/jobs", json.dumps(REQUEST).encode())
        job = json.loads(body)
        print(f"submit        : HTTP {status}  id = {job['id']}  "
              f"state = {job['state']}")
        status, body = get(base + f"/v1/jobs/{job['id']}")
        record = json.loads(body)
        print(f"collect       : HTTP {status}  {record['verdict']}")
        status, body = get(base + f"/v1/jobs/{job['id']}")
        record = json.loads(body)
        print(f"re-collect    : HTTP {status}  "
              f"error_code = {record['error_code']}  (jobs collect once)")

        # --- 5. metrics ---------------------------------------------------
        status, body = get(base + "/metrics")
        wanted = ("repro_requests_total{", "repro_checks_total ",
                  "repro_result_cache_hits_total ")
        print("metrics       :")
        for line in body.decode().splitlines():
            if line.startswith(wanted):
                print(f"  {line}")

    print("shutdown      : drained, engine closed")


if __name__ == "__main__":
    main()
