"""The typed front door end to end: requests, responses, jobs, wire JSON.

Walks the `repro.api` surface the way a checking service would use it:

1. declarative `CheckRequest`s (library circuits + noise specs + config
   overrides) answered by one `Engine` owning the sessions and cache;
2. an order-preserving, error-isolating `check_iter` stream in which a
   broken request becomes an `ERROR` response instead of an exception;
3. submit/result job handles;
4. the versioned wire schema: every request and response serialises to
   JSON and parses back losslessly — which is all an HTTP layer needs.

Run: ``python examples/engine_service.py``
"""

from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec


def main() -> None:
    engine = Engine(cache=False)

    # --- 1. one declarative request -------------------------------------
    request = CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=4),
        noise=NoiseSpec(channel="depolarizing", p=0.999, noises=2, seed=7),
        epsilon=0.01,
        config={"backend": "tdd"},
    )
    response = engine.check(request)
    print(f"single check  : {response.verdict}  "
          f"F_J = {response.fidelity:.6f}")

    # --- 2. an error-isolating stream ------------------------------------
    stream = [
        request,
        CheckRequest(ideal=CircuitSpec.from_path("does-not-exist.qasm")),
        CheckRequest(
            ideal=CircuitSpec.from_library("grover", num_qubits=3),
            noise=NoiseSpec(noises=1, seed=1),
            epsilon=0.05,
            config={"backend": "einsum"},
        ),
    ]
    print("\nstream        :")
    for r in engine.check_iter(stream):
        detail = (f"F_J = {r.fidelity:.6f}" if r.ok
                  else f"error_code = {r.error_code}")
        print(f"  [{r.index}] {r.verdict:<14} {detail}")

    # --- 3. job handles ---------------------------------------------------
    handles = [
        engine.submit(CheckRequest(
            ideal=CircuitSpec.from_library("qft", num_qubits=3),
            noise=NoiseSpec(noises=1, seed=seed),
            epsilon=0.05,
        ))
        for seed in range(3)
    ]
    verdicts = [engine.result(h).verdict for h in handles]
    print(f"\njobs          : {verdicts}")

    # --- 4. the wire schema ----------------------------------------------
    wire = request.to_json()
    parsed = CheckRequest.from_json(wire)
    assert parsed == request
    print(f"\nrequest wire  : {wire[:72]}...")
    record = response.to_json()
    print(f"response wire : {record[:72]}...")
    print("round-trips   : request ✓  response ✓")


if __name__ == "__main__":
    main()
