"""A warm-cache repeated-check service loop.

Simulates the workload the caching subsystem exists for: a service that
keeps answering "is this compiled circuit still equivalent?" for a
small, recurring population of circuit pairs.  Every request builds a
*fresh* ``CheckSession`` (as a stateless service handler would), yet
after the first pass over the population each request is a
result-cache hit — zero planning, zero contraction — because all
sessions share the same two-tier cache directory.

Also shown: a structurally identical *new* pair (same circuit shape,
different rotation angle) misses the result cache but hits the plan
cache, and ``repro cache``-style stats read back from the store.

Run: ``python examples/cached_service_loop.py``
"""

import tempfile
import time

from repro import CheckConfig, CheckSession, QuantumCircuit
from repro.noise import depolarizing


def make_pair(angle: float, p: float = 0.999):
    """A small ideal/noisy pair; the structure is angle-independent."""
    ideal = QuantumCircuit(4, "svc")
    for q in range(4):
        ideal.h(q)
    ideal.rz(angle, 0).cx(0, 1).cx(1, 2).cx(2, 3).rz(-angle, 3)
    noisy = ideal.copy()
    noisy.append(depolarizing(p), [1])
    noisy.append(depolarizing(p), [2])
    return ideal, noisy


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        config = CheckConfig(
            epsilon=0.01, backend="tdd", cache=True, cache_dir=cache_dir
        )

        # The recurring population: three distinct pairs, requested
        # over and over (round-robin, three full laps).
        population = [make_pair(angle) for angle in (0.25, 0.50, 0.75)]
        print("request  pair  verdict     time(ms)  plan-hits  result-hit")
        for request in range(9):
            ideal, noisy = population[request % len(population)]
            session = CheckSession(config)  # fresh handler per request
            start = time.perf_counter()
            result = session.check(ideal, noisy)
            wall_ms = (time.perf_counter() - start) * 1e3
            print(
                f"{request:7d}  {request % len(population):4d}  "
                f"{result.verdict:10s}  {wall_ms:8.2f}  "
                f"{result.stats.plan_cache_hit:9d}  "
                f"{result.stats.result_cache_hit:10d}"
            )

        # A new pair with the same *structure*: result miss, plan hit —
        # the contraction runs, the planning does not.
        fresh = CheckSession(config).check(*make_pair(0.123))
        print(
            f"\nnew structural twin: {fresh.verdict}, "
            f"plan_cache_hit={fresh.stats.plan_cache_hit}, "
            f"result_cache_hit={fresh.stats.result_cache_hit}"
        )

        stats = CheckSession(config).cache.stats()
        print(
            f"cache: {stats.entries} entries, {stats.total_bytes} bytes "
            f"under {stats.directory}"
        )


if __name__ == "__main__":
    main()
