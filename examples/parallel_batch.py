"""Parallel checking: batch-level workers and slice-level executors.

Checks a batch of noisy QFT variants serially and with ``jobs=2`` worker
processes (same results, same order), shows how ``isolate_errors`` turns
a poisoned batch item into an ERROR record instead of a crash, and runs
one memory-sliced contraction through a process-backed slice executor.

Run: ``python examples/parallel_batch.py``
"""

import time

from repro import CheckConfig, CheckSession, insert_random_noise, qft
from repro.backends import get_backend
from repro.core import RunStats
from repro.core.miter import algorithm_network
from repro.parallel import ProcessSliceExecutor
from repro.tensornet import build_plan, slice_plan


def main() -> None:
    ideal = qft(5)
    pairs = [
        (ideal, insert_random_noise(ideal, num_noises=2, seed=seed))
        for seed in range(6)
    ]
    session = CheckSession(CheckConfig(epsilon=0.01, backend="tdd"))

    # --- batch-level parallelism: whole checks on worker processes ----------
    for jobs in (1, 2):
        start = time.perf_counter()
        results = list(session.check_many(pairs, jobs=jobs))
        wall = time.perf_counter() - start
        merged = RunStats.merge((r.stats for r in results),
                                wall_seconds=wall)
        verdicts = ", ".join(r.verdict for r in results)
        print(f"jobs={jobs}: wall {merged.time_seconds:.3f}s, "
              f"cpu {merged.cpu_seconds:.3f}s  [{verdicts}]")

    # --- error isolation: one bad item cannot take down the batch ----------
    poisoned = pairs[:2] + [(qft(2), qft(3))] + pairs[2:3]  # width mismatch
    outcomes = list(
        session.check_many(poisoned, jobs=2, isolate_errors=True)
    )
    for index, outcome in enumerate(outcomes):
        detail = (
            f"F={outcome.fidelity:.6f}" if outcome.verdict != "ERROR"
            else f"{outcome.error_type}: {outcome.error}"
        )
        print(f"item {index}: {outcome.verdict:14s} {detail}")

    # --- slice-level parallelism: one big sliced contraction ----------------
    noisy = insert_random_noise(ideal, num_noises=2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    plan = build_plan(network)
    sliced = slice_plan(plan, max(1, plan.peak_size() // 4))
    print(f"\nsliced plan: {sliced.num_slices()} independent subplans "
          f"(peak intermediate {sliced.peak_size()} elements)")
    serial = get_backend("einsum").contract_scalar(network, plan=sliced)
    with ProcessSliceExecutor(jobs=2) as executor:
        backend = get_backend("einsum", executor=executor)
        parallel = backend.contract_scalar(network, plan=sliced)
    print(f"serial   sum: {serial.real:.12f}")
    print(f"parallel sum: {parallel.real:.12f} "
          f"(|diff| = {abs(parallel - serial):.2e})")


if __name__ == "__main__":
    main()
