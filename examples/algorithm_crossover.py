"""Explore the Alg I / Alg II crossover (the paper's Fig. 7 story).

Algorithm I contracts one small network per Kraus selection (4^k terms
for k depolarising noises); Algorithm II contracts a single network of
twice the width.  With few noises Alg I wins; as noises accumulate,
Alg II takes over.  This example measures both on a QFT and prints the
ratio, plus the early-termination shortcut that rescues Alg I when you
only need a verdict rather than the exact fidelity.

Run: ``python examples/algorithm_crossover.py``
"""

import math

from repro import fidelity_collective, fidelity_individual, insert_random_noise, qft


def main() -> None:
    ideal = qft(4)
    print(f"circuit: {ideal}\n")
    print(f"{'k':>3} {'t1: Alg I (s)':>14} {'t2: Alg II (s)':>15} "
          f"{'log10(t1/t2)':>13} {'Alg I w/ eps (s)':>17}")

    for k in range(1, 5):
        noisy = insert_random_noise(ideal, k, seed=k)
        r1 = fidelity_individual(noisy, ideal)
        r2 = fidelity_collective(noisy, ideal)
        # With an epsilon the dominant-first enumeration certifies
        # equivalence after a single term.
        r1_eps = fidelity_individual(noisy, ideal, epsilon=0.05)
        t1, t2 = r1.stats.time_seconds, r2.stats.time_seconds
        print(f"{k:>3} {t1:>14.3f} {t2:>15.3f} "
              f"{math.log10(t1 / t2):>13.2f} "
              f"{r1_eps.stats.time_seconds:>17.4f}")
        assert abs(r1.fidelity - r2.fidelity) < 1e-8

    print("\nAs k grows, Alg I's 4^k terms dominate (log ratio climbs "
          "linearly) while Alg II stays flat — but with an epsilon, "
          "Alg I's first term usually settles the question instantly.")


if __name__ == "__main__":
    main()
