"""Certify a noise budget for a NISQ device model.

The motivating workflow from the paper's introduction: a compiler has
mapped the Bernstein-Vazirani circuit onto a device whose every gate
suffers depolarising noise.  How good do the gates have to be for the
implementation to stay epsilon-equivalent to the spec?

This example sweeps the per-gate error rate, uses Algorithm II (many
noise sites -> the collective contraction wins) to compute the exact
Jamiolkowski fidelity for each rate, and reports the worst error rate
that still certifies epsilon-equivalence.

Run: ``python examples/noise_budget_certification.py``
"""

from repro import NoiseModel, bernstein_vazirani, depolarizing, fidelity_collective

EPSILON = 0.05
ERROR_RATES = [1e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2]


def main() -> None:
    ideal = bernstein_vazirani(6)
    print(f"spec: {ideal} | epsilon = {EPSILON}\n")
    print(f"{'per-gate error':>15} {'noise sites':>12} {'F_J':>10} "
          f"{'equivalent':>11} {'time (s)':>9}")

    worst_ok = None
    for rate in ERROR_RATES:
        model = NoiseModel().set_default_error(
            lambda rate=rate: depolarizing(1.0 - rate)
        )
        noisy = model.apply(ideal)
        result = fidelity_collective(noisy, ideal)
        ok = result.fidelity > 1.0 - EPSILON
        if ok:
            worst_ok = rate
        print(f"{rate:>15.4%} {noisy.num_noise_sites:>12} "
              f"{result.fidelity:>10.6f} {str(ok):>11} "
              f"{result.stats.time_seconds:>9.3f}")

    if worst_ok is not None:
        print(f"\nThe device certifies {EPSILON}-equivalence up to a "
              f"per-gate error rate of {worst_ok:.4%}.")
    else:
        print("\nNo tested error rate certifies equivalence.")


if __name__ == "__main__":
    main()
