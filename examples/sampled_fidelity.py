"""Sampled fidelity estimation (the paper's proposed future work).

When a circuit carries too many noise sites for Algorithm I's exact
enumeration and you want error bars rather than a single contraction,
`fidelity_sampled` importance-samples Kraus selections (valid for
mixed-unitary noise such as the depolarising channel) and reports a
Hoeffding confidence interval.

This example compares the estimate against Algorithm II's exact value on
a 4-qubit QFT with 6 noise sites (4^6 = 4096 exact terms).

Run: ``python examples/sampled_fidelity.py``
"""

from repro import fidelity_collective, insert_random_noise, qft
from repro.core import fidelity_sampled


def main() -> None:
    ideal = qft(4)
    noisy = insert_random_noise(ideal, 6, seed=11)
    exact = fidelity_collective(noisy, ideal)
    print(f"circuit         : {noisy}")
    print(f"exact F_J (AlgII): {exact.fidelity:.6f} "
          f"({exact.stats.time_seconds:.3f} s)\n")

    print(f"{'samples':>8} {'estimate':>10} {'95% interval':>22} "
          f"{'covers exact':>13} {'time (s)':>9}")
    for m in (25, 100, 400):
        result = fidelity_sampled(
            noisy, ideal, num_samples=m, confidence_level=0.95, seed=2
        )
        covers = result.lower <= exact.fidelity <= result.upper
        print(f"{m:>8} {result.estimate:>10.6f} "
              f"[{result.lower:.4f}, {result.upper:.4f}]".ljust(44)
              + f"{str(covers):>13} {result.stats.time_seconds:>9.3f}")

    print("\nThe interval shrinks as 1/sqrt(m); at NISQ noise rates the "
          "dominant identity selection appears in almost every sample, so "
          "the estimator concentrates quickly.")


if __name__ == "__main__":
    main()
