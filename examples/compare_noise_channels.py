"""How different physical noise types degrade a Grover search.

Uses the full channel zoo — bit flip, phase flip, bit-phase flip,
depolarising, amplitude damping, phase damping — attached after every
gate of a 3-qubit Grover circuit, and compares the resulting
Jamiolkowski fidelities at equal "strength".  Depolarising is the
harshest (it randomises in all three Pauli axes); dephasing-type noise
is gentler on this circuit.

Run: ``python examples/compare_noise_channels.py``
"""

from repro import (
    NoiseModel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    fidelity_collective,
    grover,
    phase_damping,
    phase_flip,
)

STRENGTH = 0.01  # flip/decay probability per gate

CHANNELS = {
    "bit flip": lambda: bit_flip(1 - STRENGTH),
    "phase flip": lambda: phase_flip(1 - STRENGTH),
    "bit-phase flip": lambda: bit_phase_flip(1 - STRENGTH),
    "depolarizing": lambda: depolarizing(1 - STRENGTH),
    "amplitude damping": lambda: amplitude_damping(STRENGTH),
    "phase damping": lambda: phase_damping(STRENGTH),
}


def main() -> None:
    ideal = grover(3)
    print(f"circuit: {ideal} | per-gate noise strength {STRENGTH}\n")
    print(f"{'channel':<18} {'noise sites':>12} {'F_J':>10} {'time (s)':>9}")

    rows = []
    for name, factory in CHANNELS.items():
        noisy = NoiseModel().set_default_error(factory).apply(ideal)
        result = fidelity_collective(noisy, ideal)
        rows.append((name, noisy.num_noise_sites, result))
        print(f"{name:<18} {noisy.num_noise_sites:>12} "
              f"{result.fidelity:>10.6f} "
              f"{result.stats.time_seconds:>9.3f}")

    worst = min(rows, key=lambda r: r[2].fidelity)
    best = max(rows, key=lambda r: r[2].fidelity)
    print(f"\nharshest: {worst[0]} (F_J = {worst[2].fidelity:.6f}); "
          f"gentlest: {best[0]} (F_J = {best[2].fidelity:.6f})")


if __name__ == "__main__":
    main()
