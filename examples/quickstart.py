"""Quickstart: is my noisy QFT still a QFT?

Builds the 5-qubit quantum Fourier transform, injects the paper's
NISQ-grade depolarising noise (p = 0.999) at random locations, and asks
the equivalence checker whether the noisy implementation is still
0.01-equivalent to the ideal circuit.

Run: ``python examples/quickstart.py``
"""

from repro import (
    CheckConfig,
    CheckSession,
    average_fidelity_from_jamiolkowski,
    insert_random_noise,
    qft,
)


def main() -> None:
    ideal = qft(5)
    noisy = insert_random_noise(ideal, num_noises=4, seed=7)
    print(f"ideal circuit : {ideal}")
    print(f"noisy circuit : {noisy}")

    session = CheckSession(CheckConfig(epsilon=0.01))
    result = session.check(ideal, noisy)

    print(f"\nalgorithm     : {result.algorithm}")
    print(f"F_J           : {result.fidelity:.6f}"
          + (" (lower bound)" if result.is_lower_bound else ""))
    print(f"equivalent    : {result.equivalent} (epsilon = {result.epsilon})")
    print(f"time          : {result.stats.time_seconds:.3f} s")
    print(f"peak TDD nodes: {result.stats.max_nodes}")

    favg = average_fidelity_from_jamiolkowski(result.fidelity, 2**5)
    print(f"\nInterpretation: a Haar-random input state would come out with "
          f"average fidelity ~{favg:.6f}.")


if __name__ == "__main__":
    main()
