"""Table II benchmark: Alg I with vs without the shared computed table.

The paper's Table II measures the saving from keeping one computed table
across all of Algorithm I's trace terms (bv3-5, 1-8 noises).  Each case
here benchmarks one (circuit, noise-count, table-mode) cell at a reduced
noise range so the suite stays quick; the report script sweeps 1..8.

Run: ``pytest benchmarks/bench_table2.py --benchmark-only``
Full table: ``python benchmarks/report_table2.py``
"""

from __future__ import annotations

import pytest

from repro.core import fidelity_individual
from repro.noise import depolarizing, insert_random_noise

from _common import NOISE_P, NOISE_SEED, table2_workloads

CIRCUITS = sorted(table2_workloads())
NOISE_COUNTS = [1, 2, 3]


def _noisy(name: str, k: int):
    build = table2_workloads()[name]
    return insert_random_noise(
        build(), k,
        channel_factory=lambda: depolarizing(NOISE_P),
        seed=NOISE_SEED,
    )


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("k", NOISE_COUNTS)
def test_alg1_with_computed_table(benchmark, name, k):
    """'Opt.' column: one shared TDD manager across all trace terms."""
    build = table2_workloads()[name]
    ideal = build()
    noisy = _noisy(name, k)
    result = benchmark(
        fidelity_individual, noisy, ideal, share_computed_table=True
    )
    assert result.stats.terms_computed == 4**k


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("k", NOISE_COUNTS)
def test_alg1_without_computed_table(benchmark, name, k):
    """'Ori.' column: a fresh manager (cold caches) for every term."""
    build = table2_workloads()[name]
    ideal = build()
    noisy = _noisy(name, k)
    result = benchmark(
        fidelity_individual, noisy, ideal, share_computed_table=False
    )
    assert result.stats.terms_computed == 4**k
