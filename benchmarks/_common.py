"""Shared workload definitions for the benchmark harness.

`TABLE1_ROWS` mirrors the paper's Table I benchmark list: circuit family,
qubit count and number of inserted noises.  Noise is the paper's
depolarising channel with p = 0.999, inserted at seeded-random positions
so every run regenerates the identical workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits import QuantumCircuit
from repro.library import (
    bernstein_vazirani,
    grover,
    mod_mult_7x15,
    qft,
    quantum_volume,
    randomized_benchmarking,
)
from repro.noise import depolarizing, insert_random_noise

#: The paper's noise parameter ("state-of-the-art design technology").
NOISE_P = 0.999

#: Seed used for all random noise placements.
NOISE_SEED = 2021


@dataclass(frozen=True)
class Workload:
    """One Table I row: a named ideal circuit plus a noise count."""

    name: str
    build: Callable[[], QuantumCircuit]
    num_noises: int

    def ideal(self) -> QuantumCircuit:
        circuit = self.build()
        circuit.name = self.name
        return circuit

    def noisy(self) -> QuantumCircuit:
        return insert_random_noise(
            self.ideal(),
            self.num_noises,
            channel_factory=lambda: depolarizing(NOISE_P),
            seed=NOISE_SEED,
        )


#: Rows of the paper's Table I (same circuits, same n and k).
TABLE1_ROWS = [
    Workload("rb2", lambda: randomized_benchmarking(2, 6, seed=0), 6),
    Workload("qft2", lambda: qft(2), 2),
    Workload("grover3", lambda: grover(3), 4),
    Workload("qft3", lambda: qft(3), 7),
    Workload("qv_n3d5", lambda: quantum_volume(3, 5, seed=0), 2),
    Workload("bv4", lambda: bernstein_vazirani(4), 7),
    Workload("7x1mod15", lambda: mod_mult_7x15(), 3),
    Workload("bv5", lambda: bernstein_vazirani(5), 6),
    Workload("qft5", lambda: qft(5), 3),
    Workload("qv_n5d5", lambda: quantum_volume(5, 5, seed=0), 3),
    Workload("bv6", lambda: bernstein_vazirani(6), 14),
    Workload("qv_n6d5", lambda: quantum_volume(6, 5, seed=0), 1),
    Workload("qft7", lambda: qft(7), 6),
    Workload("qv_n7d5", lambda: quantum_volume(7, 5, seed=0), 2),
    Workload("bv9", lambda: bernstein_vazirani(9), 6),
    Workload("qv_n9d5", lambda: quantum_volume(9, 5, seed=0), 3),
    Workload("qft9", lambda: qft(9), 2),
    Workload("qft10", lambda: qft(10), 2),
    Workload("bv13", lambda: bernstein_vazirani(13), 4),
    Workload("bv14", lambda: bernstein_vazirani(14), 4),
    Workload("bv16", lambda: bernstein_vazirani(16), 9),
]

TABLE1_BY_NAME = {w.name: w for w in TABLE1_ROWS}


def fig7_workloads():
    """Fig. 7 sweep: bv3-5 and qft3-5 with 1..8 noises."""
    families = {
        "bv3": lambda: bernstein_vazirani(3),
        "bv4": lambda: bernstein_vazirani(4),
        "bv5": lambda: bernstein_vazirani(5),
        "qft3": lambda: qft(3),
        "qft4": lambda: qft(4),
        "qft5": lambda: qft(5),
    }
    return families


def table2_workloads():
    """Table II sweep: bv3-5 with 1..8 noises (Alg I computed-table study)."""
    return {
        "bv3": lambda: bernstein_vazirani(3),
        "bv4": lambda: bernstein_vazirani(4),
        "bv5": lambda: bernstein_vazirani(5),
    }
