"""Fig. 7 benchmark: Alg I vs Alg II as the number of noises grows.

The paper's Fig. 7 plots log(t1/t2) against the noise count for bv3-5 and
qft3-5: Algorithm I wins at one noise, Algorithm II wins as noises
accumulate, with the log-ratio growing roughly linearly.  These cases
time both algorithms at the sweep's end points; the report script
produces the full series.

Run: ``pytest benchmarks/bench_fig7.py --benchmark-only``
Full series: ``python benchmarks/report_fig7.py``
"""

from __future__ import annotations

import pytest

from repro.core import fidelity_collective, fidelity_individual
from repro.noise import depolarizing, insert_random_noise

from _common import NOISE_P, NOISE_SEED, fig7_workloads

CIRCUITS = sorted(fig7_workloads())
NOISE_COUNTS = [1, 3]


def _pair(name: str, k: int):
    build = fig7_workloads()[name]
    ideal = build()
    noisy = insert_random_noise(
        ideal, k,
        channel_factory=lambda: depolarizing(NOISE_P),
        seed=NOISE_SEED,
    )
    return ideal, noisy


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("k", NOISE_COUNTS)
def test_alg1_noise_scaling(benchmark, name, k):
    """t1: Algorithm I, full enumeration (4^k terms)."""
    ideal, noisy = _pair(name, k)
    result = benchmark(fidelity_individual, noisy, ideal)
    assert result.stats.terms_computed == 4**k


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("k", NOISE_COUNTS)
def test_alg2_noise_scaling(benchmark, name, k):
    """t2: Algorithm II, one doubled contraction regardless of k."""
    ideal, noisy = _pair(name, k)
    result = benchmark(fidelity_collective, noisy, ideal)
    assert result.stats.terms_computed == 1
