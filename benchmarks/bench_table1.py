"""Table I benchmark: baseline vs Algorithm II vs Algorithm I.

Each pytest-benchmark case times one (circuit, method) cell of the paper's
Table I.  Cells the paper reports as MO (dense baseline beyond 6 qubits)
or TO (Alg I with many noises) are skipped with an explanatory reason —
exactly the cells our report script marks MO/TO.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only``
Full table: ``python benchmarks/report_table1.py``
"""

from __future__ import annotations

import pytest

from repro.baseline import PAPER_MEMORY_BYTES, process_fidelity
from repro.core import fidelity_collective, fidelity_individual

from _common import TABLE1_BY_NAME

#: Subset of rows benchmarked per method, chosen to keep the suite fast
#: while spanning the qubit range (the report script runs all 21 rows).
BASELINE_ROWS = ["rb2", "qft2", "qft3", "bv4", "7x1mod15", "bv5"]
ALG2_ROWS = [
    "rb2", "qft2", "grover3", "qft3", "bv4", "7x1mod15", "bv5", "qft5",
    "bv6", "qft7", "bv9", "bv13", "bv16",
]
ALG1_ROWS = ["qft2", "qv_n3d5", "7x1mod15", "qft5", "bv13"]


@pytest.mark.parametrize("name", BASELINE_ROWS)
def test_baseline(benchmark, name):
    """Dense Qiskit-style process_fidelity (Table I 'Qiskit' column)."""
    workload = TABLE1_BY_NAME[name]
    ideal = workload.ideal()
    noisy = workload.noisy()
    value = benchmark(
        process_fidelity, noisy, ideal,
        memory_limit_bytes=PAPER_MEMORY_BYTES,
    )
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("name", ALG2_ROWS)
def test_alg2(benchmark, name):
    """Algorithm II: single doubled-network contraction."""
    workload = TABLE1_BY_NAME[name]
    ideal = workload.ideal()
    noisy = workload.noisy()
    result = benchmark(fidelity_collective, noisy, ideal)
    assert 0.9 < result.fidelity <= 1.0


@pytest.mark.parametrize("name", ALG1_ROWS)
def test_alg1(benchmark, name):
    """Algorithm I: full per-term enumeration (few-noise rows only)."""
    workload = TABLE1_BY_NAME[name]
    ideal = workload.ideal()
    noisy = workload.noisy()
    result = benchmark(fidelity_individual, noisy, ideal)
    assert 0.9 < result.fidelity <= 1.0
