"""Cost of going remote: cache-tier latency and executor overhead.

Everything here runs on one machine (in-process daemons on loopback via
:class:`~repro.cluster.threads.ServerThread`), so the numbers measure
the *subsystem's* overhead — framing, pickling, socket round-trips,
dispatch threads — with zero real network latency and zero real extra
cores.  On a 1-CPU container the remote executor cannot win wall-clock;
the honest questions it answers are "what does a remote cache
round-trip cost next to a local disk hit?" and "how much does shipping
slices over sockets add to a contraction that gains nothing from it?".
On a real fleet the same overhead is what extra cores must amortise.

``remote_cache``
    put/get p50/p99 per payload size for a bare :class:`DiskStore`
    versus a :class:`RemoteStore` talking to a live cache server, plus
    the miss cost (one full round-trip answering nothing).
``remote_executor``
    the sliced qft(3) miter contracted by ``SerialExecutor`` versus
    ``RemoteSliceExecutor`` over two loopback workers, with the
    chunk/dispatch counters and the per-slice added cost; agreement to
    1e-9 is asserted while we are at it.

Usage::

    python benchmarks/bench_cluster.py
    python benchmarks/bench_cluster.py --repeats 30 --contractions 3
"""

from __future__ import annotations

import argparse
import io
import json
import os
import statistics
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.backends import get_backend  # noqa: E402
from repro.cache.store import DiskStore  # noqa: E402
from repro.cluster import (  # noqa: E402
    CacheServer,
    RemoteSliceExecutor,
    RemoteStore,
    ServerThread,
    WorkerServer,
    counters_snapshot,
    reset_counters,
)
from repro.core.miter import algorithm_network  # noqa: E402
from repro.library import qft  # noqa: E402
from repro.noise import insert_random_noise  # noqa: E402
from repro.parallel import SerialExecutor  # noqa: E402
from repro.tensornet import build_plan, slice_plan  # noqa: E402

PAYLOAD_SIZES = {"1KiB": 1 << 10, "64KiB": 1 << 16}


def percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": statistics.median(ordered) * 1000.0,
        "p99_ms": ordered[min(len(ordered) - 1,
                              int(len(ordered) * 0.99))] * 1000.0,
        "mean_ms": statistics.fmean(ordered) * 1000.0,
        "n": len(ordered),
    }


def timed(operation, repeats):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        operation()
        samples.append(time.perf_counter() - start)
    return percentiles(samples)


def bench_store(store, payload, repeats, key_prefix):
    """put / warm-get / miss-get latency against one CacheStore tier."""
    keys = [f"{key_prefix}-{index:04d}" for index in range(repeats)]
    iterator = iter(keys)
    puts = timed(lambda: store.put(next(iterator), payload), repeats)
    iterator = iter(keys)
    gets = timed(lambda: store.get(next(iterator)), repeats)
    misses = timed(lambda: store.get(f"{key_prefix}-absent"), repeats)
    assert store.get(keys[0]) == payload
    return {"put": puts, "get_hit": gets, "get_miss": misses}


def bench_remote_cache(tmp_path, repeats):
    report = {}
    for label, size in PAYLOAD_SIZES.items():
        payload = os.urandom(size)

        disk = DiskStore(tmp_path / f"disk-{label}")
        report.setdefault("disk", {})[label] = bench_store(
            disk, payload, repeats, "bench"
        )

        server = ServerThread(CacheServer(
            cache_dir=tmp_path / f"remote-{label}",
            log_stream=io.StringIO(),
        ))
        server.start()
        store = RemoteStore(server.url)
        try:
            report.setdefault("remote", {})[label] = bench_store(
                store, payload, repeats, "bench"
            )
        finally:
            store.close()
            server.stop()

        local = report["disk"][label]["get_hit"]["p50_ms"]
        remote = report["remote"][label]["get_hit"]["p50_ms"]
        report.setdefault("ratio_get_hit_p50", {})[label] = remote / local
    report["note"] = (
        "the cache server fronts a memory tier, so a hot remote get is "
        "one loopback round-trip + dict lookup and can beat a cold "
        "DiskStore read (which pays file open + integrity check) on "
        "larger payloads"
    )
    return report


def sliced_workload():
    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    plan = build_plan(network)
    sliced = slice_plan(plan, max(1, plan.peak_size() // 4))
    return network, sliced


def bench_remote_executor(contractions):
    network, plan = sliced_workload()

    serial_backend = get_backend("dense", executor=SerialExecutor())
    reference = serial_backend.contract_scalar(network, plan=plan)
    serial = timed(
        lambda: serial_backend.contract_scalar(network, plan=plan),
        contractions,
    )

    workers = [
        ServerThread(WorkerServer(log_stream=io.StringIO()))
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    reset_counters()
    try:
        executor = RemoteSliceExecutor(
            [worker.url for worker in workers], chunk_size=3
        )
        try:
            remote_backend = get_backend("dense", executor=executor)
            value = remote_backend.contract_scalar(network, plan=plan)
            assert abs(value - reference) < 1e-9, (value, reference)
            remote = timed(
                lambda: remote_backend.contract_scalar(network, plan=plan),
                contractions,
            )
        finally:
            executor.close()
    finally:
        for worker in workers:
            worker.stop()
    counters = counters_snapshot()
    assert counters["remote_workers_lost"] == 0, counters

    num_slices = plan.num_slices()
    added_ms = remote["p50_ms"] - serial["p50_ms"]
    return {
        "workload": {
            "circuit": "qft3",
            "num_noises": 2,
            "num_slices": num_slices,
        },
        "serial": serial,
        "remote_two_workers": remote,
        "overhead_ratio_p50": remote["p50_ms"] / serial["p50_ms"],
        "added_ms_per_contraction": added_ms,
        "added_ms_per_slice": added_ms / num_slices,
        "counters": {
            key: value for key, value in counters.items()
            if key.startswith("remote_") and value
        },
        "note": (
            "one CPU, loopback sockets: the remote path pays pickling + "
            "framing + dispatch with no parallel speedup available, so "
            "ratio > 1 is expected; on a fleet the same added cost is "
            "the break-even bar for extra cores"
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=60,
                        help="cache operations per percentile sample")
    parser.add_argument("--contractions", type=int, default=5,
                        help="full contractions per executor sample")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_cluster.json "
                        "at the repo root)")
    args = parser.parse_args(argv)

    import pathlib
    import shutil
    import tempfile

    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-cluster-"))
    try:
        report = {
            "remote_cache": bench_remote_cache(scratch, args.repeats),
            "remote_executor": bench_remote_executor(args.contractions),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    cache = report["remote_cache"]
    for label in PAYLOAD_SIZES:
        print(
            f"cache {label}: disk get "
            f"{cache['disk'][label]['get_hit']['p50_ms']:.3f} ms, remote "
            f"get {cache['remote'][label]['get_hit']['p50_ms']:.3f} ms "
            f"({cache['ratio_get_hit_p50'][label]:.1f}x)",
            file=sys.stderr,
        )
    executor = report["remote_executor"]
    print(
        f"executor: serial {executor['serial']['p50_ms']:.1f} ms, remote "
        f"{executor['remote_two_workers']['p50_ms']:.1f} ms "
        f"({executor['overhead_ratio_p50']:.2f}x, "
        f"{executor['added_ms_per_slice']:.3f} ms/slice added)",
        file=sys.stderr,
    )

    output = args.output or os.path.join(
        os.path.dirname(__file__.rsplit("/", 1)[0]) or ".",
        "BENCH_cluster.json",
    )
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
