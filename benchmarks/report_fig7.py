"""Regenerate the paper's Fig. 7 data.

For bv3-5 and qft3-5 with 1..max noises, time Algorithm I (t1) and
Algorithm II (t2) and print ``log10(t1 / t2)`` — the paper's vertical
axis.  Positive values mean Algorithm II wins; the series grows roughly
linearly with the noise count because t1 scales with 4^k.

Usage::

    python benchmarks/report_fig7.py                # k = 1..4
    python benchmarks/report_fig7.py --max-noises 8 # paper range
"""

from __future__ import annotations

import argparse
import math
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import NOISE_P, NOISE_SEED, fig7_workloads  # noqa: E402

from repro.core import fidelity_collective, fidelity_individual  # noqa: E402
from repro.noise import depolarizing, insert_random_noise  # noqa: E402


def measure(build, k, budget):
    ideal = build()
    noisy = insert_random_noise(
        ideal, k,
        channel_factory=lambda: depolarizing(NOISE_P),
        seed=NOISE_SEED,
    )
    r1 = fidelity_individual(noisy, ideal, time_budget_seconds=budget)
    r2 = fidelity_collective(noisy, ideal)
    t1 = r1.stats.time_seconds
    t2 = r2.stats.time_seconds
    return t1, t2, r1.stats.timed_out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-noises", type=int, default=4)
    parser.add_argument(
        "--budget", type=float, default=60.0,
        help="per-point Alg I wall-clock budget",
    )
    args = parser.parse_args()

    ks = list(range(1, args.max_noises + 1))
    families = fig7_workloads()
    print(f"{'circuit':<8}" + "".join(f" k={k:<8}" for k in ks))
    print("-" * (8 + 10 * len(ks)))
    for name, build in families.items():
        cells = []
        for k in ks:
            t1, t2, timed_out = measure(build, k, args.budget)
            if timed_out:
                cells.append(f"{'>TO':>9}")
            else:
                cells.append(f"{math.log10(t1 / t2):>9.2f}")
        print(f"{name:<8}" + " ".join(cells), flush=True)
    print(
        "\nCell = log10(t1/t2): negative -> Alg I faster, positive -> "
        "Alg II faster; growth with k is ~linear (t1 ~ 4^k)."
    )


if __name__ == "__main__":
    main()
