"""Ablation benchmarks for the design choices called out in DESIGN.md.

* contraction-order heuristic (sequential vs min-fill vs tree
  decomposition) for Algorithm II;
* TDD backend vs dense tensor backend;
* local optimisations (gate cancellation + SWAP elimination) on/off;
* early termination in Algorithm I.

Run: ``pytest benchmarks/bench_ablation.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.core import fidelity_collective, fidelity_individual

from _common import TABLE1_BY_NAME

WORKLOAD = TABLE1_BY_NAME["qft5"]


@pytest.mark.parametrize(
    "order_method", ["sequential", "min_fill", "tree_decomposition"]
)
def test_contraction_order(benchmark, order_method):
    """Alg II runtime under each contraction-order heuristic."""
    ideal = WORKLOAD.ideal()
    noisy = WORKLOAD.noisy()
    result = benchmark(
        fidelity_collective, noisy, ideal, order_method=order_method
    )
    assert result.fidelity > 0.9


@pytest.mark.parametrize("backend", ["tdd", "dense"])
def test_backend(benchmark, backend):
    """Alg II on the TDD backend vs the dense tensor backend."""
    ideal = WORKLOAD.ideal()
    noisy = WORKLOAD.noisy()
    result = benchmark(fidelity_collective, noisy, ideal, backend=backend)
    assert result.fidelity > 0.9


@pytest.mark.parametrize("optimised", [False, True])
def test_local_optimisations(benchmark, optimised):
    """Gate cancellation + SWAP elimination (excluded from Table I runs)."""
    workload = TABLE1_BY_NAME["qft7"]
    ideal = workload.ideal()
    noisy = workload.noisy()
    result = benchmark(
        fidelity_collective, noisy, ideal,
        use_local_optimisations=optimised,
    )
    assert result.fidelity > 0.9


@pytest.mark.parametrize("epsilon", [None, 0.05])
def test_early_termination(benchmark, epsilon):
    """Alg I with and without the partial-sum early stop."""
    workload = TABLE1_BY_NAME["qft5"]
    ideal = workload.ideal()
    noisy = workload.noisy()
    result = benchmark(fidelity_individual, noisy, ideal, epsilon=epsilon)
    if epsilon is not None:
        assert result.stats.terms_computed < result.stats.terms_total
