"""Regenerate the paper's Table I.

For every benchmark row: run the dense baseline (with the paper's 8 GB
memory envelope), Algorithm II, and Algorithm I, reporting wall-clock
seconds and peak TDD node counts.  Cells print MO when the baseline
refuses the dense allocation and TO when Algorithm I exceeds its
wall-clock budget — the same failure modes the paper tabulates.

Usage::

    python benchmarks/report_table1.py            # quick envelope
    python benchmarks/report_table1.py --paper    # 3600 s / full baseline
    python benchmarks/report_table1.py --rows qft5 bv9
"""

from __future__ import annotations

import argparse
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import TABLE1_ROWS  # noqa: E402

from repro.baseline import (  # noqa: E402
    PAPER_MEMORY_BYTES,
    MemoryLimitExceeded,
    estimate_superop_bytes,
    process_fidelity,
)
from repro.core import fidelity_collective, fidelity_individual  # noqa: E402


def run_baseline(ideal, noisy, max_qubits):
    if ideal.num_qubits > max_qubits:
        return "TO*", None
    try:
        start = time.perf_counter()
        process_fidelity(
            noisy, ideal, memory_limit_bytes=PAPER_MEMORY_BYTES
        )
        return f"{time.perf_counter() - start:.2f}", None
    except MemoryLimitExceeded:
        return "MO", None


def run_alg2(ideal, noisy):
    result = fidelity_collective(noisy, ideal)
    return f"{result.stats.time_seconds:.2f}", result.stats.max_nodes


def run_alg1(ideal, noisy, budget):
    result = fidelity_individual(
        noisy, ideal, time_budget_seconds=budget
    )
    if result.stats.timed_out:
        return "TO", "TO"
    return f"{result.stats.time_seconds:.2f}", result.stats.max_nodes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper", action="store_true",
        help="paper envelope: 3600 s budgets, baseline up to the memory wall",
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="Alg I wall-clock budget in seconds (default 30, paper 3600)",
    )
    parser.add_argument(
        "--max-baseline-qubits", type=int, default=None,
        help="skip the dense baseline above this width (default 5, paper 7)",
    )
    parser.add_argument(
        "--rows", nargs="*", default=None, help="subset of row names to run"
    )
    args = parser.parse_args()

    budget = args.budget or (3600.0 if args.paper else 30.0)
    max_baseline = args.max_baseline_qubits or (7 if args.paper else 5)

    rows = TABLE1_ROWS
    if args.rows:
        rows = [w for w in TABLE1_ROWS if w.name in set(args.rows)]

    header = (
        f"{'Circuit':<10} {'n':>3} {'|G|':>4} {'k':>3} "
        f"{'Qiskit(s)':>10} {'AlgII(s)':>9} {'nodes':>7} "
        f"{'AlgI(s)':>9} {'nodes':>7}"
    )
    print(header)
    print("-" * len(header))
    for workload in rows:
        ideal = workload.ideal()
        noisy = workload.noisy()
        base_time, _ = run_baseline(ideal, noisy, max_baseline)
        alg2_time, alg2_nodes = run_alg2(ideal, noisy)
        alg1_time, alg1_nodes = run_alg1(ideal, noisy, budget)
        print(
            f"{workload.name:<10} {ideal.num_qubits:>3} "
            f"{ideal.num_gates:>4} {workload.num_noises:>3} "
            f"{base_time:>10} {alg2_time:>9} {alg2_nodes:>7} "
            f"{alg1_time:>9} {alg1_nodes:>7}",
            flush=True,
        )
    print(
        "\nTO = exceeded wall-clock budget; TO* = baseline skipped above "
        f"{max_baseline} qubits in quick mode; MO = dense SuperOp over the "
        f"{PAPER_MEMORY_BYTES / 1024**3:.0f} GiB envelope "
        f"(e.g. 7 qubits need ~{estimate_superop_bytes(7) / 1024**3:.1f} GiB)."
    )


if __name__ == "__main__":
    main()
