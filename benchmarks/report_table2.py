"""Regenerate the paper's Table II: utility of the shared computed table.

For bv3-5 with 1..max noises, run Algorithm I twice — once with a single
TDD manager shared across all trace terms ('Opt.') and once with a fresh
manager per term ('Ori.') — and report the runtime ratio.

Usage::

    python benchmarks/report_table2.py                # k = 1..4
    python benchmarks/report_table2.py --max-noises 8 # paper range
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import NOISE_P, NOISE_SEED, table2_workloads  # noqa: E402

from repro.core import fidelity_individual  # noqa: E402
from repro.noise import depolarizing, insert_random_noise  # noqa: E402


def measure(build, k, shared):
    ideal = build()
    noisy = insert_random_noise(
        ideal, k,
        channel_factory=lambda: depolarizing(NOISE_P),
        seed=NOISE_SEED,
    )
    result = fidelity_individual(
        noisy, ideal, share_computed_table=shared
    )
    return result.stats.time_seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-noises", type=int, default=4)
    args = parser.parse_args()

    circuits = table2_workloads()
    names = sorted(circuits)
    header = f"{'k':>3}" + "".join(
        f" {name + ' Opt.':>10} {name + ' Ori.':>10} {'rate':>6}"
        for name in names
    )
    print(header)
    print("-" * len(header))
    sums = {name: [0.0, 0.0] for name in names}
    for k in range(1, args.max_noises + 1):
        cells = []
        for name in names:
            opt = measure(circuits[name], k, shared=True)
            ori = measure(circuits[name], k, shared=False)
            sums[name][0] += opt
            sums[name][1] += ori
            rate = opt / ori if ori > 0 else float("nan")
            cells.append(f" {opt:>10.3f} {ori:>10.3f} {rate:>6.2f}")
        print(f"{k:>3}" + "".join(cells), flush=True)
    total_cells = []
    for name in names:
        opt, ori = sums[name]
        total_cells.append(
            f" {opt:>10.3f} {ori:>10.3f} {opt / ori:>6.2f}"
        )
    print("SUM" + "".join(total_cells))
    print(
        "\nOpt. = shared computed table, Ori. = fresh manager per term; "
        "rate = Opt./Ori. (the paper reports ~0.28-0.38)."
    )


if __name__ == "__main__":
    main()
