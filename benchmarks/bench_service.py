"""Latency benchmark of the HTTP service against the bare engine.

Hosts a real :class:`repro.service.ReproService` on a loopback socket
(background event-loop thread) and measures, per scenario, p50/p99
latency and throughput:

``unary_warm``
    the same request repeated over one keep-alive connection with the
    result cache hot — every request is answered by a cache lookup, so
    this isolates the HTTP + JSON + scheduling overhead of the service.
``unary_cold``
    each request a fresh noise seed (full contraction every time).
``batch``
    one ``POST /v1/batch`` NDJSON body, rows/second end to end.
``saturated``
    many client threads against ``--max-inflight 2``: admission control
    must answer the overflow with 503 + Retry-After, fast, while the
    admitted requests complete — total, accepted and rejected counts
    plus the p99 of the *rejections* are recorded (a slow 503 would
    defeat its purpose).

The ``overhead`` section times bare ``Engine.respond`` on the identical
warm request and records ``service_p50 / bare_p50`` (target < 1.10,
i.e. <10% added wall time).  Context rows make the number honest: a
warm-cache check is sub-millisecond, so the loopback-TCP + HTTP floor
(``floor_p50_ms``, measured on ``/healthz``) dominates the warm ratio —
the absolute added latency (``added_ms``) and the same ratio on the
cold path (``overhead_ratio_cold``, where real contraction amortises
the transport) tell the real story.

The ``trace_overhead`` section pins the span tracer's cost on the warm
check path (see ``docs/observability.md``): the disabled tracer must
cost < 1% of a warm check (estimated from the measured no-op
``trace.span()`` per-call cost times the spans a warm check records)
and the enabled tracer < 10% (traced vs untraced warm p50 on a bare
engine) — both asserted, so the benchmark doubles as a regression
gate.  Numbers land in ``BENCH_service.json`` next to the other
benchmark records so future PRs have a trajectory.

Usage::

    python benchmarks/bench_service.py
    python benchmarks/bench_service.py --warm 200 --cold 20
"""

from __future__ import annotations

import argparse
import http.client
import io
import json
import os
import statistics
import sys
import threading
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec  # noqa: E402
from repro.service import ServiceThread  # noqa: E402

#: Warm-path workload: large enough that the cache-hit fingerprint is
#: real work, small enough that the cold path stays interactive.
NUM_QUBITS = 4
NUM_NOISES = 4
EPSILON = 0.05


def wire_request(seed: int = 0) -> bytes:
    return json.dumps({
        "schema_version": "1",
        "ideal": {"library": "qft", "params": {"num_qubits": NUM_QUBITS}},
        "noise": {"noises": NUM_NOISES, "seed": seed},
        "epsilon": EPSILON,
    }).encode()


def typed_request(seed: int = 0) -> CheckRequest:
    return CheckRequest(
        ideal=CircuitSpec.from_library("qft", num_qubits=NUM_QUBITS),
        noise=NoiseSpec(noises=NUM_NOISES, seed=seed),
        epsilon=EPSILON,
    )


def percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": statistics.median(ordered) * 1000.0,
        "p99_ms": ordered[min(len(ordered) - 1,
                              int(len(ordered) * 0.99))] * 1000.0,
        "mean_ms": statistics.fmean(ordered) * 1000.0,
        "n": len(ordered),
    }


def timed_post(conn, path, body, headers=None):
    start = time.perf_counter()
    conn.request("POST", path, body=body, headers=headers or {})
    response = conn.getresponse()
    response.read()
    return time.perf_counter() - start, response.status


def bench_unary(server, bodies):
    """Sequential requests over one keep-alive connection."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=120)
    try:
        timed_post(conn, "/v1/check", bodies[0])  # connection warmup
        samples = []
        start = time.perf_counter()
        for body in bodies:
            elapsed, status = timed_post(conn, "/v1/check", body)
            assert status == 200, f"unexpected status {status}"
            samples.append(elapsed)
        wall = time.perf_counter() - start
    finally:
        conn.close()
    report = percentiles(samples)
    report["req_per_s"] = len(samples) / wall
    return report


def bench_floor(server, repeats=200):
    """The loopback-TCP + HTTP round-trip floor (`/healthz`): transport
    cost every remote caller pays before any engine work."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            samples.append(time.perf_counter() - start)
    finally:
        conn.close()
    return percentiles(samples)


def bench_batch(server, rows):
    body = b"".join(wire_request(seed) + b"\n" for seed in range(rows))
    conn = http.client.HTTPConnection(server.host, server.port, timeout=600)
    try:
        start = time.perf_counter()
        conn.request("POST", "/v1/batch", body=body)
        response = conn.getresponse()
        records = [json.loads(line) for line in response.read().splitlines()]
        wall = time.perf_counter() - start
    finally:
        conn.close()
    assert len(records) == rows
    assert all(r["verdict"] != "ERROR" for r in records)
    return {
        "rows": rows,
        "wall_seconds": wall,
        "rows_per_s": rows / wall,
    }


def bench_saturated(threads_n, requests_each):
    """Hammer a max_inflight=2 server; overflow must 503 fast."""
    engine = Engine(cache=True)
    ok, rejected, reject_samples = [], [], []
    lock = threading.Lock()
    with ServiceThread(
        engine, log_stream=io.StringIO(), max_inflight=2
    ) as server:
        # warm the cache so accepted requests are quick
        conn = http.client.HTTPConnection(server.host, server.port)
        timed_post(conn, "/v1/check", wire_request(0))
        conn.close()

        def client():
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=120
            )
            try:
                for _ in range(requests_each):
                    elapsed, status = timed_post(
                        conn, "/v1/check", wire_request(0)
                    )
                    with lock:
                        if status == 200:
                            ok.append(elapsed)
                        else:
                            assert status == 503, status
                            rejected.append(elapsed)
                            reject_samples.append(elapsed)
            finally:
                conn.close()

        start = time.perf_counter()
        workers = [
            threading.Thread(target=client) for _ in range(threads_n)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - start
    total = len(ok) + len(rejected)
    report = {
        "client_threads": threads_n,
        "requests_total": total,
        "accepted_200": len(ok),
        "rejected_503": len(rejected),
        "wall_seconds": wall,
        "req_per_s": total / wall,
    }
    if reject_samples:
        report["rejection"] = percentiles(reject_samples)
    return report


def bench_trace_overhead(repeats):
    """The tracer's cost on the warm check path, disabled and enabled.

    Disabled is the default for every user, so it is estimated from the
    measured per-call cost of the no-op ``trace.span()`` times the spans
    a warm check would have recorded — the fraction of check wall time
    the instrumentation points cost when nobody is tracing.  Enabled is
    the direct ratio of traced vs untraced warm p50 on a bare engine
    (same result-cache entry: ``trace`` is excluded from the cache
    fingerprint).
    """
    import dataclasses
    import shutil
    import tempfile
    import timeit

    from repro import trace
    from repro.trace import tree_records

    noop_ns = min(
        timeit.repeat(
            "span('probe', key=1)",
            globals={"span": trace.span},
            number=100_000,
            repeat=5,
        )
    ) / 100_000 * 1e9

    cache_dir = tempfile.mkdtemp(prefix="bench-service-trace-")
    try:
        engine = Engine(cache=True, cache_dir=cache_dir)
        plain = typed_request(0)
        traced = dataclasses.replace(plain, config={"trace": True})
        untraced_p50 = bench_bare_engine(engine, plain, repeats)["p50_ms"]
        traced_p50 = bench_bare_engine(engine, traced, repeats)["p50_ms"]
        spans_per_check = len(
            tree_records(engine.respond(traced).result.trace)
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    disabled_ratio = (noop_ns * spans_per_check) / (untraced_p50 * 1e6)
    enabled_ratio = traced_p50 / untraced_p50
    report = {
        "noop_span_ns_per_call": noop_ns,
        "spans_per_warm_check": spans_per_check,
        "untraced_warm_p50_ms": untraced_p50,
        "traced_warm_p50_ms": traced_p50,
        "disabled_overhead_ratio": disabled_ratio,
        "disabled_target_ratio": 0.01,
        "enabled_overhead_ratio": enabled_ratio,
        "enabled_target_ratio": 1.10,
    }
    assert disabled_ratio < 0.01, (
        f"disabled tracer costs {disabled_ratio:.2%} of a warm check "
        f"(budget 1%)"
    )
    assert enabled_ratio < 1.10, (
        f"enabled tracer ratio {enabled_ratio:.2f} (budget 1.10)"
    )
    return report


def bench_bare_engine(engine, request, repeats):
    engine.respond(request)  # warm
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        response = engine.respond(request)
        samples.append(time.perf_counter() - start)
        assert response.ok
    return percentiles(samples)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--warm", type=int, default=150,
                        help="warm unary repeats")
    parser.add_argument("--cold", type=int, default=12,
                        help="cold unary repeats (full contraction each)")
    parser.add_argument("--batch-rows", type=int, default=24)
    parser.add_argument("--sat-threads", type=int, default=8)
    parser.add_argument("--sat-requests", type=int, default=20,
                        help="requests per saturation client thread")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_service.json "
                        "next to the repo root)")
    args = parser.parse_args(argv)

    report = {
        "workload": {
            "circuit": f"qft{NUM_QUBITS}",
            "num_noises": NUM_NOISES,
            "epsilon": EPSILON,
        },
        "scenarios": {},
    }

    import tempfile

    cache_dir = tempfile.mkdtemp(prefix="bench-service-cache-")
    try:
        engine = Engine(cache=True, cache_dir=cache_dir)
        with ServiceThread(engine, log_stream=io.StringIO()) as server:
            print(f"service on {server.base_url}", file=sys.stderr)

            report["scenarios"]["floor_healthz"] = bench_floor(server)
            print("floor:", report["scenarios"]["floor_healthz"],
                  file=sys.stderr)

            warm_bodies = [wire_request(0)] * args.warm
            report["scenarios"]["unary_warm"] = bench_unary(
                server, warm_bodies
            )
            print("unary_warm:", report["scenarios"]["unary_warm"],
                  file=sys.stderr)

            cold_bodies = [
                wire_request(seed) for seed in range(1, args.cold + 1)
            ]
            report["scenarios"]["unary_cold"] = bench_unary(
                server, cold_bodies
            )
            print("unary_cold:", report["scenarios"]["unary_cold"],
                  file=sys.stderr)

            report["scenarios"]["batch"] = bench_batch(
                server, args.batch_rows
            )
            print("batch:", report["scenarios"]["batch"], file=sys.stderr)

        report["scenarios"]["saturated"] = bench_saturated(
            args.sat_threads, args.sat_requests
        )
        print("saturated:", report["scenarios"]["saturated"],
              file=sys.stderr)

        # bare-engine comparison on identical requests (fresh engine +
        # cache directory so the service run above cannot skew it)
        bare_dir = tempfile.mkdtemp(prefix="bench-service-bare-")
        try:
            bare_engine = Engine(cache=True, cache_dir=bare_dir)
            bare = bench_bare_engine(
                bare_engine, typed_request(0), args.warm
            )
            cold_samples = []
            for seed in range(101, 101 + max(4, args.cold // 2)):
                start = time.perf_counter()
                assert bare_engine.respond(typed_request(seed)).ok
                cold_samples.append(time.perf_counter() - start)
            bare_cold = percentiles(cold_samples)
        finally:
            import shutil

            shutil.rmtree(bare_dir, ignore_errors=True)
    finally:
        import shutil

        shutil.rmtree(cache_dir, ignore_errors=True)

    service_p50 = report["scenarios"]["unary_warm"]["p50_ms"]
    floor_p50 = report["scenarios"]["floor_healthz"]["p50_ms"]
    cold_p50 = report["scenarios"]["unary_cold"]["p50_ms"]
    report["overhead"] = {
        "bare_engine_warm": bare,
        "bare_engine_cold": bare_cold,
        "service_p50_ms": service_p50,
        "bare_p50_ms": bare["p50_ms"],
        "added_ms": service_p50 - bare["p50_ms"],
        "floor_p50_ms": floor_p50,
        "overhead_ratio": service_p50 / bare["p50_ms"],
        "overhead_ratio_cold": cold_p50 / bare_cold["p50_ms"],
        "target_ratio": 1.10,
        "note": (
            "warm-cache checks are sub-millisecond, so the loopback "
            "TCP+HTTP floor dominates the warm ratio; added_ms and the "
            "cold ratio measure the service layer itself"
        ),
    }
    print(
        "overhead: warm ratio "
        f"{report['overhead']['overhead_ratio']:.2f} "
        f"(added {report['overhead']['added_ms']:.3f} ms, floor "
        f"{floor_p50:.3f} ms), cold ratio "
        f"{report['overhead']['overhead_ratio_cold']:.2f}",
        file=sys.stderr,
    )

    report["trace_overhead"] = bench_trace_overhead(args.warm)
    print(
        "trace_overhead: disabled "
        f"{report['trace_overhead']['disabled_overhead_ratio']:.4%} "
        f"(budget 1%), enabled "
        f"{report['trace_overhead']['enabled_overhead_ratio']:.2f}x "
        f"(budget 1.10x)",
        file=sys.stderr,
    )

    output = args.output or os.path.join(
        os.path.dirname(__file__.rsplit("/", 1)[0]) or ".",
        "BENCH_service.json",
    )
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
