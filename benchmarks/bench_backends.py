"""Micro-benchmark of the contraction backends on Table-I-style rows.

Times all three registered engines (tdd / dense / einsum) on a handful of
small Table I workloads, for both algorithms, and writes the raw numbers
to ``BENCH_backends.json`` so future performance PRs have a trajectory to
compare against.  Since the plan-IR refactor, *planning* (building the
shared :class:`~repro.tensornet.planner.ContractionPlan` for the network
the algorithm contracts) is timed separately from *execution* (the
fidelity computation replaying the cached plan), and each cell records
the plan's predicted cost next to the measured times — so both plan
quality and plan overhead are tracked across PRs.  Agreement across
backends is asserted to 1e-9 while we're at it — a benchmark that
silently computes the wrong number is worse than no benchmark.

Since the parallel-subsystem PR the report also carries a ``parallel``
section: wall-clock rows for a sliced contraction and a batch-checking
workload at jobs ∈ {1, 2, 4}, with the serial-relative speedup and the
machine's CPU count recorded (speedup is bounded by the latter — a
single-core CI runner will honestly report ~1×).

Since the caching PR a ``cache`` section records cold-vs-warm rows per
backend: the same check against an empty cache (``cold``), a
structurally identical new pair against the warm cache (``warm_plan``
— plan-cache hit, contraction still runs) and an exact repeat
(``warm_result`` — result-cache hit, nothing runs), each with its
wall-clock time and the ``RunStats`` hit counters.

Since the array-API PR a ``batched`` section compares the two sliced
execution modes on the finely sliced qft3 row: ``looped``
(``slice_batch=1``, one einsum sweep per slice — the old behaviour) vs
``batched`` (auto ``slice_batch``, whole chunks of slices per einsum
call).  Each row records the effective batch, the number of batched
kernel sweeps and the wall clock; the batched row carries its speedup
over looped, and the einsum speedup is asserted to stay above
``MIN_BATCHED_SPEEDUP``.  When torch is installed an ``einsum-torch``
pair of rows rides along and its fidelity is held to the same 1e-9.

Since the plan-search PR a ``planning`` section races every registered
planner (greedy, min_fill, and the budgeted anneal / hyper searches) on
a small and a large alg-2 workload, recording predicted cost, planning
time and trials per row.  The anytime floor is asserted everywhere, a
funded one-second search must *strictly* beat both heuristics on the
large workload, and a warm plan-cache rerun must replay the searched
plan with zero trials.

Since the typed-API PR an ``engine`` section records the front-door
overhead: per-check latency of ``Engine.check(request)`` against bare
``CheckSession.check(ideal, noisy)`` on the same warm pair, with the
ratio.  The engine's request resolution is a handful of dict lookups,
so the ratio should stay within a few percent of 1.0 (the acceptance
bound is 5%).

Usage::

    python benchmarks/bench_backends.py                  # default rows
    python benchmarks/bench_backends.py --rows qft3 bv4  # subset
    python benchmarks/bench_backends.py --repeats 5
    python benchmarks/bench_backends.py --jobs 1 2 4 8
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import TABLE1_BY_NAME  # noqa: E402

from repro.backends import available_backends, get_backend  # noqa: E402
from repro.core import (  # noqa: E402
    CheckConfig,
    CheckSession,
    fidelity_collective,
    fidelity_individual,
)
from repro.core.miter import algorithm_network  # noqa: E402
from repro.library import qft  # noqa: E402
from repro.noise import depolarizing, insert_random_noise  # noqa: E402
from repro.parallel import ProcessSliceExecutor  # noqa: E402
from repro.tensornet import (  # noqa: E402
    ContractionStats,
    build_plan,
    slice_plan,
)

#: Small rows where every backend (including dense) finishes in seconds.
DEFAULT_ROWS = ["rb2", "qft2", "grover3", "qft3", "bv4"]

#: Alg I on every row is capped so exponential rows can't run away.
ALG1_MAX_TERMS = 64

#: Worker counts for the serial-vs-parallel speedup rows.
DEFAULT_JOBS = [1, 2, 4]

#: Acceptance floor: batched sliced execution must beat the per-slice
#: loop by at least this factor on the einsum backend (measured ~17x on
#: a single-core container; 5x leaves headroom for noisy CI runners).
MIN_BATCHED_SPEEDUP = 5.0

#: Search budget for the ``planning`` section — the acceptance budget:
#: within one second, anneal or hyper must strictly beat both heuristic
#: planners on the qft4 workload (measured: improvement by trial ~10 at
#: hundreds of trials per second, so this holds on slow CI too).
PLAN_SEARCH_BUDGET_SECONDS = 1.0


def bench_cell(workload, backend_name, algorithm, repeats):
    """Plan/exec timings + fidelity for one (row, backend, alg) cell."""
    ideal = workload.ideal()
    noisy = workload.noisy()
    network = algorithm_network(noisy, ideal, algorithm)

    plan_times = []
    plan = None
    for _ in range(repeats):
        backend = get_backend(backend_name)  # cold planner, like the CLI
        start = time.perf_counter()
        plan = backend.plan_for(network)
        plan_times.append(time.perf_counter() - start)
    plan_times.sort()

    exec_times = []
    fidelity = None
    peak = 0
    stats = None
    for _ in range(repeats):
        backend = get_backend(backend_name)
        backend.plan_for(network)  # warm plan: execution timed alone
        start = time.perf_counter()
        if algorithm == "alg1":
            result = fidelity_individual(
                noisy, ideal, backend=backend, max_terms=ALG1_MAX_TERMS
            )
        else:
            result = fidelity_collective(noisy, ideal, backend=backend)
        exec_times.append(time.perf_counter() - start)
        fidelity = result.fidelity
        stats = result.stats
        peak = max(peak, result.stats.max_nodes,
                   result.stats.max_intermediate_size)
    exec_times.sort()

    return {
        "backend": backend_name,
        "algorithm": algorithm,
        "plan_seconds": plan_times[len(plan_times) // 2],
        "median_exec_seconds": exec_times[len(exec_times) // 2],
        "best_exec_seconds": exec_times[0],
        # total wall clock, comparable with pre-split trajectories
        "median_seconds": plan_times[len(plan_times) // 2]
        + exec_times[len(exec_times) // 2],
        "predicted_cost": stats.predicted_cost,
        "predicted_peak_size": stats.predicted_peak_size,
        "slice_count": stats.slice_count,
        "plan_width": plan.width(),
        "fidelity": fidelity,
        "peak_size": peak,
        "repeats": repeats,
    }


def bench_sliced_parallel(jobs_list, repeats):
    """Wall-clock rows: one sliced contraction at each worker count.

    The speedup baseline is always a measured ``jobs=1`` run, whatever
    order (or subset) ``--jobs`` requests.
    """
    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    plan = build_plan(network)
    # peak//8 slices this network into ~8k subplans of ~0.2ms each —
    # exactly the many-small-slices regime chunked dispatch exists for.
    sliced = slice_plan(plan, max(1, plan.peak_size() // 8))

    def measure(jobs):
        executor = ProcessSliceExecutor(jobs=jobs) if jobs > 1 else None
        backend = get_backend("einsum", executor=executor)
        try:
            if executor is not None:  # pool spin-up priced separately
                executor._ensure_pool()
            times = []
            value = None
            for _ in range(repeats):
                start = time.perf_counter()
                value = backend.contract_scalar(network, plan=sliced)
                times.append(time.perf_counter() - start)
        finally:
            if executor is not None:
                executor.close()
        return min(times), value

    serial_best, reference = measure(1)
    rows = []
    for jobs in jobs_list:
        if jobs == 1:
            best, value = serial_best, reference
        else:
            best, value = measure(jobs)
            if abs(value - reference) > 1e-9:
                raise AssertionError(
                    f"jobs={jobs} disagrees with serial by "
                    f"{abs(value - reference):.2e}"
                )
        rows.append({
            "workload": "sliced-qft3-alg2",
            "backend": "einsum",
            "num_slices": sliced.num_slices(),
            "jobs": jobs,
            "wall_seconds": best,
            "speedup_vs_serial": serial_best / best if best else 0.0,
        })
        print(
            f"parallel sliced   jobs {jobs}  wall {best:8.4f}s  "
            f"speedup {rows[-1]['speedup_vs_serial']:.2f}x"
        )
    return rows


def bench_batch_parallel(jobs_list, repeats, num_pairs=6):
    """Wall-clock rows: a check_many batch at each worker count.

    As with the sliced rows, the baseline is a measured ``jobs=1`` run.
    """
    # ~100ms of TDD work per item: heavy enough that worker processes
    # amortise their spawn cost, small enough for CI.
    ideal = qft(6)
    pairs = [
        (ideal, insert_random_noise(ideal, 2, seed=seed))
        for seed in range(num_pairs)
    ]
    config = CheckConfig(epsilon=0.05, algorithm="alg2", backend="tdd")

    def measure(jobs):
        times = []
        fidelities = None
        for _ in range(repeats):
            session = CheckSession(config)
            start = time.perf_counter()
            results = list(session.check_many(pairs, jobs=jobs))
            times.append(time.perf_counter() - start)
            fidelities = [result.fidelity for result in results]
        return min(times), fidelities

    serial_best, reference = measure(1)
    rows = []
    for jobs in jobs_list:
        if jobs == 1:
            best, fidelities = serial_best, reference
        else:
            best, fidelities = measure(jobs)
            if any(
                abs(a - b) > 1e-9 for a, b in zip(fidelities, reference)
            ):
                raise AssertionError(f"jobs={jobs} batch results diverged")
        rows.append({
            "workload": f"batch-qft6-x{num_pairs}",
            "backend": "tdd",
            "num_pairs": num_pairs,
            "jobs": jobs,
            "wall_seconds": best,
            "speedup_vs_serial": serial_best / best if best else 0.0,
        })
        print(
            f"parallel batch    jobs {jobs}  wall {best:8.4f}s  "
            f"speedup {rows[-1]['speedup_vs_serial']:.2f}x"
        )
    return rows


def bench_batched(repeats):
    """Looped vs batched execution of the finely sliced qft3 row.

    The same ~8k-slice plan as the parallel section, contracted two
    ways on every batch-capable backend that is installed: the
    ``slice_batch=1`` reference loop and the auto-sized batched kernel.
    Both must agree with the *unsliced* dense contraction to 1e-9
    (relative), and the einsum batched/looped ratio is the PR's
    headline number — asserted against :data:`MIN_BATCHED_SPEEDUP` so a
    regression fails the benchmark instead of quietly shipping.
    """
    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    plan = build_plan(network)
    sliced = slice_plan(plan, max(1, plan.peak_size() // 8))
    reference = get_backend("dense").contract_scalar(network, plan=plan)
    scale = max(1.0, abs(reference))

    names = [
        name for name in ("einsum", "dense", "einsum-torch")
        if name in available_backends()
    ]
    rows = []
    speedups = {}
    for backend_name in names:
        timings = {}
        for mode, slice_batch in (("looped", 1), ("batched", None)):
            backend = get_backend(backend_name, slice_batch=slice_batch)
            best = None
            value = None
            stats = None
            for _ in range(repeats):
                stats = ContractionStats()
                start = time.perf_counter()
                value = backend.contract_scalar(
                    network, plan=sliced, stats=stats
                )
                seconds = time.perf_counter() - start
                if best is None or seconds < best:
                    best = seconds
            if abs(value - reference) > 1e-9 * scale:
                raise AssertionError(
                    f"{backend_name}/{mode} disagrees with the unsliced "
                    f"contraction by {abs(value - reference):.2e}"
                )
            timings[mode] = best
            rows.append({
                "workload": "sliced-qft3-alg2",
                "backend": backend_name,
                "mode": mode,
                "num_slices": sliced.num_slices(),
                "slice_batch": backend.effective_slice_batch(sliced),
                "batched_slice_calls": stats.batched_slice_calls,
                "wall_seconds": best,
            })
            print(
                f"batched {mode:7s} {backend_name:12s} "
                f"slice_batch {rows[-1]['slice_batch']:5d}  "
                f"wall {best:8.4f}s"
            )
        speedup = (
            timings["looped"] / timings["batched"]
            if timings["batched"] else 0.0
        )
        rows[-1]["speedup_vs_looped"] = speedup
        speedups[backend_name] = speedup
        print(
            f"batched speedup {backend_name:12s} {speedup:.2f}x "
            f"over the per-slice loop"
        )
    if speedups.get("einsum", 0.0) < MIN_BATCHED_SPEEDUP:
        raise AssertionError(
            f"einsum batched speedup {speedups.get('einsum', 0.0):.2f}x "
            f"fell below the {MIN_BATCHED_SPEEDUP:.0f}x floor"
        )
    return rows


def bench_cache(repeats):
    """Cold-vs-warm rows per backend: plan and whole-check reuse.

    Three phases per backend, all on a QFT-4 pair with two noises:

    * ``cold`` — empty cache directory, everything computes;
    * ``warm_plan`` — a structurally identical pair (same noise sites,
      different channel parameter) against the warm cache: planning is
      a lookup, the contraction still runs;
    * ``warm_result`` — the exact cold pair again: the whole check is
      one lookup.

    Cold rows get a fresh directory per repeat; warm rows reuse the
    populated one with a fresh session per repeat (the service
    pattern).  Fidelity equality between cold and warm_result is
    asserted — a cache that changes answers is worse than no cache.
    """
    ideal = qft(4)
    noisy = insert_random_noise(ideal, 2, seed=0)

    def twin(repeat):
        # same seed => same noise sites => identical structure; the
        # channel parameter differs (and differs per repeat, so repeats
        # cannot hit the result entry stored by an earlier repeat) —
        # only the plan cache can serve these
        p = 0.99 - 0.001 * repeat
        return insert_random_noise(
            ideal, 2, channel_factory=lambda: depolarizing(p), seed=0
        )

    rows = []
    for backend_name in available_backends():
        def timed_check(cache_dir, pair):
            session = CheckSession(CheckConfig(
                epsilon=0.05, algorithm="alg2", backend=backend_name,
                cache=True, cache_dir=cache_dir,
            ))
            start = time.perf_counter()
            result = session.check(*pair)
            return time.perf_counter() - start, result

        cold_best = None
        cold_result = None
        warm_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            for repeat in range(repeats):
                fresh = tempfile.mkdtemp(prefix="repro-bench-cache-")
                try:
                    seconds, result = timed_check(fresh, (ideal, noisy))
                finally:
                    shutil.rmtree(fresh, ignore_errors=True)
                if cold_best is None or seconds < cold_best:
                    cold_best, cold_result = seconds, result
            phases = [("cold", cold_best, cold_result)]

            timed_check(warm_dir, (ideal, noisy))  # populate
            for phase, pair_for in (
                ("warm_plan", lambda r: (ideal, twin(r))),
                ("warm_result", lambda r: (ideal, noisy)),
            ):
                best = None
                outcome = None
                for repeat in range(repeats):
                    seconds, result = timed_check(
                        warm_dir, pair_for(repeat)
                    )
                    if best is None or seconds < best:
                        best, outcome = seconds, result
                phases.append((phase, best, outcome))
        finally:
            shutil.rmtree(warm_dir, ignore_errors=True)

        for phase, seconds, result in phases:
            rows.append({
                "workload": "qft4-2noise-alg2",
                "backend": backend_name,
                "phase": phase,
                "check_seconds": seconds,
                "plan_cache_hit": result.stats.plan_cache_hit,
                "result_cache_hit": result.stats.result_cache_hit,
                "fidelity": result.fidelity,
            })
            print(
                f"cache {phase:11s} {backend_name:8s} "
                f"check {seconds:8.4f}s  "
                f"plan_hits {result.stats.plan_cache_hit}  "
                f"result_hits {result.stats.result_cache_hit}"
            )
        by_phase = {row["phase"]: row for row in rows
                    if row["backend"] == backend_name}
        if abs(by_phase["warm_result"]["fidelity"]
               - by_phase["cold"]["fidelity"]) > 0.0:
            raise AssertionError(
                f"{backend_name}: warm result diverged from cold"
            )
        if by_phase["warm_result"]["result_cache_hit"] != 1:
            raise AssertionError(f"{backend_name}: warm rerun missed")
        if by_phase["warm_plan"]["plan_cache_hit"] < 1:
            raise AssertionError(f"{backend_name}: twin pair replanned")
    return rows


def bench_planning(repeats):
    """Plan quality per planner, and the warm-cache search skip.

    Every registered planner races on two alg-2 workloads: the small
    qft3 row and the larger qft4 row (the acceptance workload).  Each
    row records the predicted cost, the peak intermediate, the planning
    wall clock and — for the search planners, funded with
    :data:`PLAN_SEARCH_BUDGET_SECONDS` — the trials run.  Asserted:

    * anytime floor — no search planner ever costs more than either
      heuristic, on any workload;
    * on the largest workload the funded search is *strictly* cheaper
      than both greedy and min_fill;
    * a warm plan-cache rerun replays the searched plan with zero
      trials (the search is paid for exactly once per structure).
    """
    specs = [
        ("greedy", {"planner": "greedy"}),
        ("min_fill", {"planner": "order", "order_method": "min_fill"}),
        ("anneal", {"planner": "anneal"}),
        ("hyper", {"planner": "hyper"}),
    ]
    rows = []
    costs = {}
    for workload, qubits in (("qft3-2noise-alg2", 3),
                             ("qft4-2noise-alg2", 4)):
        ideal = qft(qubits)
        noisy = insert_random_noise(ideal, 2, seed=0)
        network = algorithm_network(noisy, ideal, "alg2")
        for name, kwargs in specs:
            search = kwargs["planner"] in ("anneal", "hyper")
            if search:
                kwargs = dict(
                    kwargs,
                    plan_budget_seconds=PLAN_SEARCH_BUDGET_SECONDS,
                    plan_seed=0,
                )
            best = None
            plan = None
            # the budget *is* the wall clock for search planners: one
            # funded run each, best-of-repeats for the heuristics
            for _ in range(1 if search else repeats):
                start = time.perf_counter()
                plan = build_plan(network, **kwargs)
                seconds = time.perf_counter() - start
                if best is None or seconds < best:
                    best = seconds
            report = plan.search_report
            costs[(workload, name)] = plan.total_cost()
            rows.append({
                "workload": workload,
                "planner": name,
                "predicted_cost": plan.total_cost(),
                "peak_intermediate_size": plan.peak_size(),
                "plan_seconds": best,
                "budget_seconds": (
                    PLAN_SEARCH_BUDGET_SECONDS if search else None
                ),
                "trials": report.trials if report else None,
            })
            trials = "-" if report is None else str(report.trials)
            print(
                f"planning {workload:18s} {name:9s} "
                f"cost {plan.total_cost():>10d}  "
                f"plan {best:7.3f}s  trials {trials:>5s}"
            )
    for (workload, name), cost in costs.items():
        if name in ("anneal", "hyper"):
            floor = min(costs[(workload, "greedy")],
                        costs[(workload, "min_fill")])
            if cost > floor:
                raise AssertionError(
                    f"{workload}/{name}: searched cost {cost} above the "
                    f"heuristic floor {floor} — anytime guarantee broken"
                )
    large = "qft4-2noise-alg2"
    heuristic_best = min(costs[(large, "greedy")],
                         costs[(large, "min_fill")])
    searched_best = min(costs[(large, "anneal")], costs[(large, "hyper")])
    if searched_best >= heuristic_best:
        raise AssertionError(
            f"{large}: funded search ({searched_best}) failed to beat "
            f"the heuristics ({heuristic_best})"
        )

    # warm plan-cache rerun: the search must run exactly once
    ideal = qft(4)
    noisy = insert_random_noise(ideal, 2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    knobs = dict(
        planner="anneal",
        plan_budget_seconds=PLAN_SEARCH_BUDGET_SECONDS,
        plan_seed=0,
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-plan-cache-")
    try:
        cold = get_backend("einsum", plan_cache=cache_dir, **knobs)
        start = time.perf_counter()
        cold.plan_for(network)
        cold_seconds = time.perf_counter() - start
        warm = get_backend("einsum", plan_cache=cache_dir, **knobs)
        start = time.perf_counter()
        warm.plan_for(network)
        warm_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if warm.plan_cache_hits != 1:
        raise AssertionError("warm plan rerun missed the plan cache")
    if warm.plan_trials_total != 0:
        raise AssertionError("warm plan rerun re-ran the search")
    warm_rerun = {
        "workload": large,
        "planner": "anneal",
        "cold_plan_seconds": cold_seconds,
        "cold_trials": cold.plan_trials_total,
        "warm_plan_seconds": warm_seconds,
        "warm_trials": warm.plan_trials_total,
        "plan_cache_hit": warm.plan_cache_hits,
    }
    print(
        f"planning warm rerun: cold {cold_seconds:7.3f}s "
        f"({cold.plan_trials_total} trials) -> "
        f"warm {warm_seconds:7.3f}s (0 trials, cache hit)"
    )
    return {
        "budget_seconds": PLAN_SEARCH_BUDGET_SECONDS,
        "rows": rows,
        "warm_rerun": warm_rerun,
    }


def bench_engine_overhead(repeats, num_checks=50):
    """Per-check latency of the Engine front door vs a bare session.

    Both paths run the identical contraction on a warm backend; the
    difference is pure request ceremony (config memo, circuit memo,
    response wrap).  Requests carry live circuit objects — the
    service-loop shape where the caller already holds them.
    """
    from repro import CheckRequest, CircuitSpec, Engine

    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    config = CheckConfig(epsilon=0.05, algorithm="alg2", backend="tdd")
    session = CheckSession(config)
    request = CheckRequest(
        ideal=CircuitSpec.from_circuit(ideal),
        noisy=CircuitSpec.from_circuit(noisy),
        epsilon=0.05,
        config={"algorithm": "alg2", "backend": "tdd"},
    )
    engine = Engine()

    direct = session.check(ideal, noisy)        # warm both paths
    fronted = engine.check(request)
    if abs(direct.fidelity - fronted.fidelity) > 0.0:
        raise AssertionError("engine and bare session disagree")

    def per_check(run_one):
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(num_checks):
                run_one()
            seconds = (time.perf_counter() - start) / num_checks
            if best is None or seconds < best:
                best = seconds
        return best

    session_seconds = per_check(lambda: session.check(ideal, noisy))
    engine_seconds = per_check(lambda: engine.check(request))
    row = {
        "workload": "qft3-2noise-alg2",
        "backend": "tdd",
        "num_checks": num_checks,
        "session_check_seconds": session_seconds,
        "engine_check_seconds": engine_seconds,
        "overhead_ratio": engine_seconds / session_seconds - 1.0,
        "fidelity": fronted.fidelity,
    }
    print(
        f"engine overhead   session {session_seconds * 1e3:8.3f}ms  "
        f"engine {engine_seconds * 1e3:8.3f}ms  "
        f"overhead {row['overhead_ratio'] * 100:+.2f}%"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", nargs="*", default=DEFAULT_ROWS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", nargs="*", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--output", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    backends = available_backends()
    report = {"rows": {}, "backends": backends}
    for name in args.rows:
        workload = TABLE1_BY_NAME[name]
        cells = []
        for algorithm in ("alg2", "alg1"):
            values = {}
            for backend_name in backends:
                cell = bench_cell(workload, backend_name, algorithm,
                                  args.repeats)
                cells.append(cell)
                values[backend_name] = cell["fidelity"]
                print(
                    f"{name:10s} {algorithm:5s} {backend_name:8s} "
                    f"plan {cell['plan_seconds']:8.4f}s  "
                    f"exec {cell['median_exec_seconds']:8.4f}s  "
                    f"cost {cell['predicted_cost']:>10d}  "
                    f"F={cell['fidelity']:.10f}"
                )
            spread = max(values.values()) - min(values.values())
            if spread > 1e-9:
                raise AssertionError(
                    f"{name}/{algorithm}: backends disagree by {spread:.2e}"
                )
        report["rows"][name] = {
            "num_qubits": workload.ideal().num_qubits,
            "num_noises": workload.num_noises,
            "cells": cells,
        }

    report["parallel"] = {
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "sliced": bench_sliced_parallel(args.jobs, args.repeats),
        "batch": bench_batch_parallel(args.jobs, args.repeats),
    }

    report["batched"] = bench_batched(args.repeats)

    report["cache"] = bench_cache(args.repeats)

    report["planning"] = bench_planning(args.repeats)

    report["engine"] = bench_engine_overhead(args.repeats)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
