"""Micro-benchmark of the contraction backends on Table-I-style rows.

Times all three registered engines (tdd / dense / einsum) on a handful of
small Table I workloads, for both algorithms, and writes the raw numbers
to ``BENCH_backends.json`` so future performance PRs have a trajectory to
compare against.  Since the plan-IR refactor, *planning* (building the
shared :class:`~repro.tensornet.planner.ContractionPlan` for the network
the algorithm contracts) is timed separately from *execution* (the
fidelity computation replaying the cached plan), and each cell records
the plan's predicted cost next to the measured times — so both plan
quality and plan overhead are tracked across PRs.  Agreement across
backends is asserted to 1e-9 while we're at it — a benchmark that
silently computes the wrong number is worse than no benchmark.

Since the parallel-subsystem PR the report also carries a ``parallel``
section: wall-clock rows for a sliced contraction and a batch-checking
workload at jobs ∈ {1, 2, 4}, with the serial-relative speedup and the
machine's CPU count recorded (speedup is bounded by the latter — a
single-core CI runner will honestly report ~1×).

Usage::

    python benchmarks/bench_backends.py                  # default rows
    python benchmarks/bench_backends.py --rows qft3 bv4  # subset
    python benchmarks/bench_backends.py --repeats 5
    python benchmarks/bench_backends.py --jobs 1 2 4 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import TABLE1_BY_NAME  # noqa: E402

from repro.backends import available_backends, get_backend  # noqa: E402
from repro.core import (  # noqa: E402
    CheckConfig,
    CheckSession,
    fidelity_collective,
    fidelity_individual,
)
from repro.core.miter import algorithm_network  # noqa: E402
from repro.library import qft  # noqa: E402
from repro.noise import insert_random_noise  # noqa: E402
from repro.parallel import ProcessSliceExecutor  # noqa: E402
from repro.tensornet import build_plan, slice_plan  # noqa: E402

#: Small rows where every backend (including dense) finishes in seconds.
DEFAULT_ROWS = ["rb2", "qft2", "grover3", "qft3", "bv4"]

#: Alg I on every row is capped so exponential rows can't run away.
ALG1_MAX_TERMS = 64

#: Worker counts for the serial-vs-parallel speedup rows.
DEFAULT_JOBS = [1, 2, 4]


def bench_cell(workload, backend_name, algorithm, repeats):
    """Plan/exec timings + fidelity for one (row, backend, alg) cell."""
    ideal = workload.ideal()
    noisy = workload.noisy()
    network = algorithm_network(noisy, ideal, algorithm)

    plan_times = []
    plan = None
    for _ in range(repeats):
        backend = get_backend(backend_name)  # cold planner, like the CLI
        start = time.perf_counter()
        plan = backend.plan_for(network)
        plan_times.append(time.perf_counter() - start)
    plan_times.sort()

    exec_times = []
    fidelity = None
    peak = 0
    stats = None
    for _ in range(repeats):
        backend = get_backend(backend_name)
        backend.plan_for(network)  # warm plan: execution timed alone
        start = time.perf_counter()
        if algorithm == "alg1":
            result = fidelity_individual(
                noisy, ideal, backend=backend, max_terms=ALG1_MAX_TERMS
            )
        else:
            result = fidelity_collective(noisy, ideal, backend=backend)
        exec_times.append(time.perf_counter() - start)
        fidelity = result.fidelity
        stats = result.stats
        peak = max(peak, result.stats.max_nodes,
                   result.stats.max_intermediate_size)
    exec_times.sort()

    return {
        "backend": backend_name,
        "algorithm": algorithm,
        "plan_seconds": plan_times[len(plan_times) // 2],
        "median_exec_seconds": exec_times[len(exec_times) // 2],
        "best_exec_seconds": exec_times[0],
        # total wall clock, comparable with pre-split trajectories
        "median_seconds": plan_times[len(plan_times) // 2]
        + exec_times[len(exec_times) // 2],
        "predicted_cost": stats.predicted_cost,
        "predicted_peak_size": stats.predicted_peak_size,
        "slice_count": stats.slice_count,
        "plan_width": plan.width(),
        "fidelity": fidelity,
        "peak_size": peak,
        "repeats": repeats,
    }


def bench_sliced_parallel(jobs_list, repeats):
    """Wall-clock rows: one sliced contraction at each worker count.

    The speedup baseline is always a measured ``jobs=1`` run, whatever
    order (or subset) ``--jobs`` requests.
    """
    ideal = qft(3)
    noisy = insert_random_noise(ideal, 2, seed=0)
    network = algorithm_network(noisy, ideal, "alg2")
    plan = build_plan(network)
    # peak//8 slices this network into ~8k subplans of ~0.2ms each —
    # exactly the many-small-slices regime chunked dispatch exists for.
    sliced = slice_plan(plan, max(1, plan.peak_size() // 8))

    def measure(jobs):
        executor = ProcessSliceExecutor(jobs=jobs) if jobs > 1 else None
        backend = get_backend("einsum", executor=executor)
        try:
            if executor is not None:  # pool spin-up priced separately
                executor._ensure_pool()
            times = []
            value = None
            for _ in range(repeats):
                start = time.perf_counter()
                value = backend.contract_scalar(network, plan=sliced)
                times.append(time.perf_counter() - start)
        finally:
            if executor is not None:
                executor.close()
        return min(times), value

    serial_best, reference = measure(1)
    rows = []
    for jobs in jobs_list:
        if jobs == 1:
            best, value = serial_best, reference
        else:
            best, value = measure(jobs)
            if abs(value - reference) > 1e-9:
                raise AssertionError(
                    f"jobs={jobs} disagrees with serial by "
                    f"{abs(value - reference):.2e}"
                )
        rows.append({
            "workload": "sliced-qft3-alg2",
            "backend": "einsum",
            "num_slices": sliced.num_slices(),
            "jobs": jobs,
            "wall_seconds": best,
            "speedup_vs_serial": serial_best / best if best else 0.0,
        })
        print(
            f"parallel sliced   jobs {jobs}  wall {best:8.4f}s  "
            f"speedup {rows[-1]['speedup_vs_serial']:.2f}x"
        )
    return rows


def bench_batch_parallel(jobs_list, repeats, num_pairs=6):
    """Wall-clock rows: a check_many batch at each worker count.

    As with the sliced rows, the baseline is a measured ``jobs=1`` run.
    """
    # ~100ms of TDD work per item: heavy enough that worker processes
    # amortise their spawn cost, small enough for CI.
    ideal = qft(6)
    pairs = [
        (ideal, insert_random_noise(ideal, 2, seed=seed))
        for seed in range(num_pairs)
    ]
    config = CheckConfig(epsilon=0.05, algorithm="alg2", backend="tdd")

    def measure(jobs):
        times = []
        fidelities = None
        for _ in range(repeats):
            session = CheckSession(config)
            start = time.perf_counter()
            results = list(session.check_many(pairs, jobs=jobs))
            times.append(time.perf_counter() - start)
            fidelities = [result.fidelity for result in results]
        return min(times), fidelities

    serial_best, reference = measure(1)
    rows = []
    for jobs in jobs_list:
        if jobs == 1:
            best, fidelities = serial_best, reference
        else:
            best, fidelities = measure(jobs)
            if any(
                abs(a - b) > 1e-9 for a, b in zip(fidelities, reference)
            ):
                raise AssertionError(f"jobs={jobs} batch results diverged")
        rows.append({
            "workload": f"batch-qft6-x{num_pairs}",
            "backend": "tdd",
            "num_pairs": num_pairs,
            "jobs": jobs,
            "wall_seconds": best,
            "speedup_vs_serial": serial_best / best if best else 0.0,
        })
        print(
            f"parallel batch    jobs {jobs}  wall {best:8.4f}s  "
            f"speedup {rows[-1]['speedup_vs_serial']:.2f}x"
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", nargs="*", default=DEFAULT_ROWS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", nargs="*", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--output", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    backends = available_backends()
    report = {"rows": {}, "backends": backends}
    for name in args.rows:
        workload = TABLE1_BY_NAME[name]
        cells = []
        for algorithm in ("alg2", "alg1"):
            values = {}
            for backend_name in backends:
                cell = bench_cell(workload, backend_name, algorithm,
                                  args.repeats)
                cells.append(cell)
                values[backend_name] = cell["fidelity"]
                print(
                    f"{name:10s} {algorithm:5s} {backend_name:8s} "
                    f"plan {cell['plan_seconds']:8.4f}s  "
                    f"exec {cell['median_exec_seconds']:8.4f}s  "
                    f"cost {cell['predicted_cost']:>10d}  "
                    f"F={cell['fidelity']:.10f}"
                )
            spread = max(values.values()) - min(values.values())
            if spread > 1e-9:
                raise AssertionError(
                    f"{name}/{algorithm}: backends disagree by {spread:.2e}"
                )
        report["rows"][name] = {
            "num_qubits": workload.ideal().num_qubits,
            "num_noises": workload.num_noises,
            "cells": cells,
        }

    report["parallel"] = {
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "sliced": bench_sliced_parallel(args.jobs, args.repeats),
        "batch": bench_batch_parallel(args.jobs, args.repeats),
    }

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
