"""Micro-benchmark of the contraction backends on Table-I-style rows.

Times all three registered engines (tdd / dense / einsum) on a handful of
small Table I workloads, for both algorithms, and writes the raw numbers
to ``BENCH_backends.json`` so future performance PRs have a trajectory to
compare against.  Since the plan-IR refactor, *planning* (building the
shared :class:`~repro.tensornet.planner.ContractionPlan` for the network
the algorithm contracts) is timed separately from *execution* (the
fidelity computation replaying the cached plan), and each cell records
the plan's predicted cost next to the measured times — so both plan
quality and plan overhead are tracked across PRs.  Agreement across
backends is asserted to 1e-9 while we're at it — a benchmark that
silently computes the wrong number is worse than no benchmark.

Usage::

    python benchmarks/bench_backends.py                  # default rows
    python benchmarks/bench_backends.py --rows qft3 bv4  # subset
    python benchmarks/bench_backends.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import TABLE1_BY_NAME  # noqa: E402

from repro.backends import available_backends, get_backend  # noqa: E402
from repro.core import fidelity_collective, fidelity_individual  # noqa: E402
from repro.core.miter import algorithm_network  # noqa: E402

#: Small rows where every backend (including dense) finishes in seconds.
DEFAULT_ROWS = ["rb2", "qft2", "grover3", "qft3", "bv4"]

#: Alg I on every row is capped so exponential rows can't run away.
ALG1_MAX_TERMS = 64


def bench_cell(workload, backend_name, algorithm, repeats):
    """Plan/exec timings + fidelity for one (row, backend, alg) cell."""
    ideal = workload.ideal()
    noisy = workload.noisy()
    network = algorithm_network(noisy, ideal, algorithm)

    plan_times = []
    plan = None
    for _ in range(repeats):
        backend = get_backend(backend_name)  # cold planner, like the CLI
        start = time.perf_counter()
        plan = backend.plan_for(network)
        plan_times.append(time.perf_counter() - start)
    plan_times.sort()

    exec_times = []
    fidelity = None
    peak = 0
    stats = None
    for _ in range(repeats):
        backend = get_backend(backend_name)
        backend.plan_for(network)  # warm plan: execution timed alone
        start = time.perf_counter()
        if algorithm == "alg1":
            result = fidelity_individual(
                noisy, ideal, backend=backend, max_terms=ALG1_MAX_TERMS
            )
        else:
            result = fidelity_collective(noisy, ideal, backend=backend)
        exec_times.append(time.perf_counter() - start)
        fidelity = result.fidelity
        stats = result.stats
        peak = max(peak, result.stats.max_nodes,
                   result.stats.max_intermediate_size)
    exec_times.sort()

    return {
        "backend": backend_name,
        "algorithm": algorithm,
        "plan_seconds": plan_times[len(plan_times) // 2],
        "median_exec_seconds": exec_times[len(exec_times) // 2],
        "best_exec_seconds": exec_times[0],
        # total wall clock, comparable with pre-split trajectories
        "median_seconds": plan_times[len(plan_times) // 2]
        + exec_times[len(exec_times) // 2],
        "predicted_cost": stats.predicted_cost,
        "predicted_peak_size": stats.predicted_peak_size,
        "slice_count": stats.slice_count,
        "plan_width": plan.width(),
        "fidelity": fidelity,
        "peak_size": peak,
        "repeats": repeats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", nargs="*", default=DEFAULT_ROWS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    backends = available_backends()
    report = {"rows": {}, "backends": backends}
    for name in args.rows:
        workload = TABLE1_BY_NAME[name]
        cells = []
        for algorithm in ("alg2", "alg1"):
            values = {}
            for backend_name in backends:
                cell = bench_cell(workload, backend_name, algorithm,
                                  args.repeats)
                cells.append(cell)
                values[backend_name] = cell["fidelity"]
                print(
                    f"{name:10s} {algorithm:5s} {backend_name:8s} "
                    f"plan {cell['plan_seconds']:8.4f}s  "
                    f"exec {cell['median_exec_seconds']:8.4f}s  "
                    f"cost {cell['predicted_cost']:>10d}  "
                    f"F={cell['fidelity']:.10f}"
                )
            spread = max(values.values()) - min(values.values())
            if spread > 1e-9:
                raise AssertionError(
                    f"{name}/{algorithm}: backends disagree by {spread:.2e}"
                )
        report["rows"][name] = {
            "num_qubits": workload.ideal().num_qubits,
            "num_noises": workload.num_noises,
            "cells": cells,
        }

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
