"""Micro-benchmark of the contraction backends on Table-I-style rows.

Times all three registered engines (tdd / dense / einsum) on a handful of
small Table I workloads, for both algorithms, and writes the raw numbers
to ``BENCH_backends.json`` so future performance PRs have a trajectory to
compare against.  Agreement across backends is asserted to 1e-9 while
we're at it — a benchmark that silently computes the wrong number is
worse than no benchmark.

Usage::

    python benchmarks/bench_backends.py                  # default rows
    python benchmarks/bench_backends.py --rows qft3 bv4  # subset
    python benchmarks/bench_backends.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import TABLE1_BY_NAME  # noqa: E402

from repro.backends import available_backends, get_backend  # noqa: E402
from repro.core import fidelity_collective, fidelity_individual  # noqa: E402

#: Small rows where every backend (including dense) finishes in seconds.
DEFAULT_ROWS = ["rb2", "qft2", "grover3", "qft3", "bv4"]

#: Alg I on every row is capped so exponential rows can't run away.
ALG1_MAX_TERMS = 64


def bench_cell(workload, backend_name, algorithm, repeats):
    """Median wall-clock seconds + fidelity for one (row, backend, alg)."""
    ideal = workload.ideal()
    noisy = workload.noisy()
    times = []
    fidelity = None
    peak = 0
    for _ in range(repeats):
        backend = get_backend(backend_name)  # cold start, like the CLI
        start = time.perf_counter()
        if algorithm == "alg1":
            result = fidelity_individual(
                noisy, ideal, backend=backend, max_terms=ALG1_MAX_TERMS
            )
        else:
            result = fidelity_collective(noisy, ideal, backend=backend)
        times.append(time.perf_counter() - start)
        fidelity = result.fidelity
        peak = max(peak, result.stats.max_nodes,
                   result.stats.max_intermediate_size)
    times.sort()
    return {
        "backend": backend_name,
        "algorithm": algorithm,
        "median_seconds": times[len(times) // 2],
        "best_seconds": times[0],
        "fidelity": fidelity,
        "peak_size": peak,
        "repeats": repeats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", nargs="*", default=DEFAULT_ROWS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    backends = available_backends()
    report = {"rows": {}, "backends": backends}
    for name in args.rows:
        workload = TABLE1_BY_NAME[name]
        cells = []
        for algorithm in ("alg2", "alg1"):
            values = {}
            for backend_name in backends:
                cell = bench_cell(workload, backend_name, algorithm,
                                  args.repeats)
                cells.append(cell)
                values[backend_name] = cell["fidelity"]
                print(
                    f"{name:10s} {algorithm:5s} {backend_name:8s} "
                    f"{cell['median_seconds']:8.4f}s  "
                    f"F={cell['fidelity']:.10f}"
                )
            spread = max(values.values()) - min(values.values())
            if spread > 1e-9:
                raise AssertionError(
                    f"{name}/{algorithm}: backends disagree by {spread:.2e}"
                )
        report["rows"][name] = {
            "num_qubits": workload.ideal().num_qubits,
            "num_noises": workload.num_noises,
            "cells": cells,
        }

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
