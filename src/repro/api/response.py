"""Typed check responses and the version-``1`` response wire schema.

A :class:`CheckResponse` is the one output type of the
:class:`~repro.api.engine.Engine`: either a successful
:class:`~repro.core.stats.CheckResult` or a typed
:class:`~repro.api.errors.ReproError`, under a uniform ``verdict``
(:class:`Verdict`).  ``to_dict()`` emits exactly the wire schema that
``CheckResult.to_dict()`` / ``ReproError.to_dict()`` define — the CLI's
``check --json`` and ``batch`` records are the same payload, so there is
one schema, not two.

Success wire form (version ``1``; ``stats`` nests the full
:class:`~repro.core.stats.RunStats` record)::

    {"schema_version": "1", "equivalent": true, "verdict": "EQUIVALENT",
     "epsilon": 0.01, "fidelity": 0.9993, "is_lower_bound": false,
     "algorithm": "alg2", "backend": "tdd", "time_seconds": 0.018,
     "note": null, "stats": {...}}

Error wire form::

    {"schema_version": "1", "equivalent": false, "verdict": "ERROR",
     "error": "...", "error_type": "FileNotFoundError",
     "error_code": "circuit_load_failed", "index": 3}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Optional

from ..core.stats import SCHEMA_VERSION, CheckError, CheckResult, RunStats
from .errors import ReproError, SchemaVersionError, error_from_code
from .request import CheckRequest


class Verdict:
    """The three verdict strings of the response wire schema."""

    EQUIVALENT = "EQUIVALENT"
    NOT_EQUIVALENT = "NOT_EQUIVALENT"
    ERROR = "ERROR"

    ALL = (EQUIVALENT, NOT_EQUIVALENT, ERROR)


@dataclass(frozen=True)
class CheckResponse:
    """One engine outcome: a result or a typed error, never both."""

    verdict: str
    result: Optional[CheckResult] = None
    error: Optional[ReproError] = None
    #: position in the request stream (check_iter / batch), else None
    index: Optional[int] = None
    #: the originating request, kept for provenance; excluded from
    #: equality so wire round-trips (which cannot recover it) compare
    #: equal to the original
    request: Optional[CheckRequest] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self):
        if (self.result is None) == (self.error is None):
            raise ValueError(
                "a CheckResponse carries exactly one of result / error"
            )
        if self.verdict not in Verdict.ALL:
            raise ValueError(
                f"unknown verdict {self.verdict!r}; "
                f"choose from {list(Verdict.ALL)}"
            )

    # --- constructors ---------------------------------------------------------

    @classmethod
    def from_result(
        cls,
        result: CheckResult,
        request: Optional[CheckRequest] = None,
        index: Optional[int] = None,
    ) -> "CheckResponse":
        return cls(
            verdict=result.verdict,
            result=result,
            index=index,
            request=request,
        )

    @classmethod
    def from_error(
        cls,
        error: ReproError,
        request: Optional[CheckRequest] = None,
        index: Optional[int] = None,
    ) -> "CheckResponse":
        if index is None:
            index = error.index
        else:
            # Keep the carried error's index in lockstep with the
            # response's, so wire round-trips (which rebuild the error
            # from the record's single index field) compare equal.
            error.index = index
        return cls(
            verdict=Verdict.ERROR, error=error, index=index, request=request
        )

    @classmethod
    def from_check_error(
        cls,
        record: CheckError,
        request: Optional[CheckRequest] = None,
        index: Optional[int] = None,
    ) -> "CheckResponse":
        """Adopt a batch-worker :class:`CheckError` record."""
        return cls.from_error(
            error_from_code(
                record.error_code,
                record.error,
                error_type=record.error_type,
                index=record.index if index is None else index,
            ),
            request=request,
        )

    # --- ergonomics -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def equivalent(self) -> bool:
        return self.result.equivalent if self.result is not None else False

    @property
    def fidelity(self) -> Optional[float]:
        return self.result.fidelity if self.result is not None else None

    @property
    def stats(self) -> Optional[RunStats]:
        return self.result.stats if self.result is not None else None

    @property
    def error_code(self) -> Optional[str]:
        return self.error.code if self.error is not None else None

    def raise_for_error(self) -> "CheckResponse":
        """Raise the carried typed error, if any; else return self."""
        if self.error is not None:
            raise self.error
        return self

    # --- wire -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """The version-``1`` response wire record.

        Stream responses (a non-None ``index``) carry their position in
        both halves of the schema; standalone success records omit the
        field (additive — the version stays ``"1"``).
        """
        if self.error is not None:
            record = self.error.to_dict()
            if self.index is not None:
                record["index"] = self.index
            return record
        record = self.result.to_dict()
        if self.index is not None:
            record["index"] = self.index
        return record

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, payload) -> "CheckResponse":
        """Parse a wire record back into a typed response.

        Round-trip identity holds for everything the wire carries:
        ``CheckResponse.from_dict(r.to_dict()) == r`` (the in-process
        ``request`` back-reference is excluded from equality).
        """
        if not isinstance(payload, dict):
            raise ReproError(
                f"response must be an object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version", "1")
        if str(version) != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"unsupported schema_version {version!r}; this build reads "
                f"version {SCHEMA_VERSION!r}"
            )
        if payload.get("verdict") == Verdict.ERROR:
            return cls.from_error(
                error_from_code(
                    payload.get("error_code", "repro_error"),
                    payload.get("error", ""),
                    error_type=payload.get("error_type"),
                    details=payload.get("details"),
                    index=payload.get("index"),
                ),
                index=payload.get("index"),
            )
        required = ("equivalent", "epsilon", "fidelity", "is_lower_bound")
        missing = [name for name in required if name not in payload]
        if missing:
            raise ReproError(
                "response record is missing required field"
                f"{'s' if len(missing) > 1 else ''} "
                f"{', '.join(map(repr, missing))}"
            )
        stats_record = dict(payload.get("stats") or {})
        known = {f.name for f in fields(RunStats)}
        stats = RunStats(**{
            name: value
            for name, value in stats_record.items()
            if name in known
        })
        result = CheckResult(
            equivalent=payload["equivalent"],
            epsilon=payload["epsilon"],
            fidelity=payload["fidelity"],
            is_lower_bound=payload["is_lower_bound"],
            stats=stats,
            algorithm=payload.get("algorithm", ""),
            backend=payload.get("backend", ""),
            note=payload.get("note"),
            trace=payload.get("trace"),
        )
        return cls.from_result(result, index=payload.get("index"))

    @classmethod
    def from_json(cls, text: str) -> "CheckResponse":
        return cls.from_dict(json.loads(text))
