"""Typed, frozen check requests and their version-``1`` wire schema.

A :class:`CheckRequest` is the one declarative input of the
:class:`~repro.api.engine.Engine`: which circuits (inline QASM, a file
path, or a named library generator), which noise to lay on top, which
epsilon / mode, and which :class:`~repro.core.session.CheckConfig`
overrides.  Requests are frozen and hashable, parse from and serialise
to the versioned JSON wire form (``from_dict``/``to_dict``,
``from_json``/``to_json``), and reject unknown fields and foreign schema
versions with typed :mod:`~repro.api.errors` codes instead of guessing.

Wire form (version ``1``)::

    {
      "schema_version": "1",
      "mode": "check",                      # or "fidelity"
      "epsilon": 0.01,
      "ideal": {"qasm": "OPENQASM 2.0; ..."}
               | {"path": "ideal.qasm"}
               | {"library": "qft", "params": {"num_qubits": 3}},
      "noisy": <circuit spec> | null,       # null: noise applies to ideal
      "noise": {"channel": "depolarizing", "p": 0.999,
                "noises": 2, "every_gate": false, "seed": 0} | null,
      "config": {"backend": "tdd", "algorithm": "auto", ...}
    }
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..circuits import QuantumCircuit, qasm
from ..core.session import RUN_MODES, CheckConfig
from ..library import (
    bernstein_vazirani,
    grover,
    mod_mult_7x15,
    qft,
    qft_dagger,
    quantum_volume,
    randomized_benchmarking,
)
from ..noise import (
    NoiseModel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    insert_random_noise,
    phase_damping,
    phase_flip,
)
from .errors import (
    CircuitLoadError,
    CircuitSpecError,
    InvalidRequestError,
    NoiseSpecError,
    SchemaVersionError,
    UnknownFieldError,
)

#: Noise-channel constructors addressable from a wire request (and the
#: CLI's ``--channel`` flag, which imports this table).  Keys follow the
#: paper's keep-probability convention for the damping channels.
CHANNELS = {
    "depolarizing": depolarizing,
    "bit_flip": bit_flip,
    "phase_flip": phase_flip,
    "bit_phase_flip": bit_phase_flip,
    "amplitude_damping": lambda p: amplitude_damping(1.0 - p),
    "phase_damping": lambda p: phase_damping(1.0 - p),
}

#: Circuit generators addressable by ``{"library": name, "params": ...}``.
LIBRARY = {
    "bernstein_vazirani": bernstein_vazirani,
    "grover": grover,
    "mod_mult_7x15": mod_mult_7x15,
    "qft": qft,
    "qft_dagger": qft_dagger,
    "quantum_volume": quantum_volume,
    "randomized_benchmarking": randomized_benchmarking,
}

#: Generators that draw randomness: a wire spec must pin their ``seed``,
#: or the "same" request would resolve to a different circuit per
#: process (and per circuit-memo eviction), breaking request
#: fingerprints and cache dedup.
RANDOM_LIBRARY = ("quantum_volume", "randomized_benchmarking")

#: CheckConfig fields a request may override.  ``epsilon`` is a
#: top-level request field, the cache knobs belong to the Engine (one
#: shared cache per engine, not per request), and the cluster topology
#: knobs are deployment configuration — a wire request must never be
#: able to point computation or cache traffic at an attacker's host.
_ENGINE_OWNED_CONFIG = (
    "epsilon", "cache", "cache_dir", "cache_url", "workers"
)
CONFIG_OVERRIDE_FIELDS = tuple(
    f.name
    for f in dataclasses.fields(CheckConfig)
    if f.name not in _ENGINE_OWNED_CONFIG
)

_SUPPORTED_SCHEMA_VERSIONS = ("1",)


def _check_schema_version(payload: dict) -> None:
    version = payload.get("schema_version", "1")
    if str(version) not in _SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaVersionError(
            f"unsupported schema_version {version!r}; this build reads "
            f"versions {list(_SUPPORTED_SCHEMA_VERSIONS)}"
        )


def _reject_unknown(payload: dict, allowed: Tuple[str, ...], where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise UnknownFieldError(
            f"unknown field{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(map(repr, unknown))} in {where}; "
            f"valid fields: {', '.join(allowed)}",
            details={"unknown": unknown, "valid": list(allowed)},
        )


@dataclass(frozen=True)
class CircuitSpec:
    """Exactly one way of naming a circuit: QASM text, a file, a library
    generator — or, for in-process callers, a live circuit object."""

    qasm: Optional[str] = None
    path: Optional[str] = None
    library: Optional[str] = None
    #: generator kwargs, stored as sorted items so the spec stays
    #: frozen/hashable; constructors accept a plain dict
    params: Tuple[Tuple[str, Any], ...] = ()
    #: live circuit (API callers); compared by object identity
    #: (circuits define no value equality), serialised as inline QASM
    circuit: Optional[QuantumCircuit] = field(default=None, repr=False)

    _WIRE_FIELDS = ("qasm", "path", "library", "params")

    def __post_init__(self):
        if isinstance(self.params, dict):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        ways = [
            w
            for w in ("qasm", "path", "library")
            if getattr(self, w) is not None
        ]
        if self.circuit is not None:
            if ways:
                raise CircuitSpecError(
                    "a circuit-backed spec cannot also name "
                    + "/".join(ways)
                )
        elif len(ways) != 1:
            raise CircuitSpecError(
                "a circuit spec needs exactly one of 'qasm', 'path' or "
                f"'library'; got {ways or 'none of them'}"
            )
        if self.params and self.library is None:
            raise CircuitSpecError(
                "'params' only applies to a 'library' spec"
            )
        try:
            hash(self.params)
        except TypeError:
            raise CircuitSpecError(
                "'params' values must be hashable scalars (got a "
                "nested list/object)"
            ) from None
        if self.library in RANDOM_LIBRARY and dict(self.params).get(
            "seed"
        ) is None:
            raise CircuitSpecError(
                f"library circuit {self.library!r} draws randomness; "
                "pin it with a 'seed' param so the request resolves to "
                "the same circuit everywhere"
            )

    # --- constructors ---------------------------------------------------------

    @classmethod
    def inline(cls, qasm_text: str) -> "CircuitSpec":
        return cls(qasm=qasm_text)

    @classmethod
    def from_path(cls, path) -> "CircuitSpec":
        return cls(path=str(path))

    @classmethod
    def from_library(cls, name: str, **params) -> "CircuitSpec":
        return cls(library=name, params=tuple(sorted(params.items())))

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "CircuitSpec":
        return cls(circuit=circuit)

    @classmethod
    def from_dict(cls, payload, where: str = "circuit spec") -> "CircuitSpec":
        if not isinstance(payload, dict):
            raise CircuitSpecError(
                f"{where} must be an object with one of "
                f"{'/'.join(cls._WIRE_FIELDS[:3])}, got {type(payload).__name__}"
            )
        _reject_unknown(payload, cls._WIRE_FIELDS, where)
        params = payload.get("params", {})
        if params and not isinstance(params, dict):
            raise CircuitSpecError(f"'params' of {where} must be an object")
        return cls(
            qasm=payload.get("qasm"),
            path=payload.get("path"),
            library=payload.get("library"),
            params=tuple(sorted(params.items())) if params else (),
        )

    # --- wire / resolution ----------------------------------------------------

    def to_dict(self) -> dict:
        """Wire form; a live circuit serialises as inline QASM."""
        if self.circuit is not None:
            try:
                return {"qasm": qasm.dumps(self.circuit)}
            except Exception as exc:
                raise CircuitSpecError(
                    f"circuit-backed spec cannot serialise to QASM: {exc}",
                    error_type=type(exc).__name__,
                ) from exc
        if self.qasm is not None:
            return {"qasm": self.qasm}
        if self.path is not None:
            return {"path": self.path}
        record: Dict[str, Any] = {"library": self.library}
        if self.params:
            record["params"] = dict(self.params)
        return record

    def resolve(self) -> QuantumCircuit:
        """Materialise the circuit; failures carry typed codes."""
        if self.circuit is not None:
            return self.circuit
        if self.library is not None:
            generator = LIBRARY.get(self.library)
            if generator is None:
                raise CircuitSpecError(
                    f"unknown library circuit {self.library!r}; "
                    f"available: {', '.join(sorted(LIBRARY))}"
                )
            try:
                return generator(**dict(self.params))
            except Exception as exc:
                raise CircuitLoadError(
                    f"library circuit {self.library!r} failed to build: {exc}",
                    error_type=type(exc).__name__,
                ) from exc
        try:
            if self.qasm is not None:
                return qasm.loads(self.qasm)
            return qasm.load(self.path)
        except Exception as exc:
            raise CircuitLoadError(
                str(exc), error_type=type(exc).__name__
            ) from exc

    def describe(self) -> str:
        """Short human label (the CLI's batch ``ideal``/``noisy`` field)."""
        if self.path is not None:
            return self.path
        if self.library is not None:
            return f"<library:{self.library}>"
        if self.qasm is not None:
            return "<inline-qasm>"
        return "<circuit>"


@dataclass(frozen=True)
class NoiseSpec:
    """Declarative noise on top of the noisy (or ideal) circuit.

    Mirrors the CLI noise flags: ``every_gate`` attaches a channel after
    every gate; ``noises`` inserts that many channels at seeded-random
    positions.  Exactly one placement is required — a channel with
    nowhere to go would silently no-op into a wrong EQUIVALENT verdict,
    so it is rejected instead ("no noise" is spelled ``noise: null`` /
    ``noise=None`` on the request, not an empty spec).
    """

    channel: str = "depolarizing"
    #: channel keep-probability (the paper's convention)
    p: float = 0.999
    noises: Optional[int] = None
    every_gate: bool = False
    seed: int = 0

    _WIRE_FIELDS = ("channel", "p", "noises", "every_gate", "seed")

    def __post_init__(self):
        if self.channel not in CHANNELS:
            raise NoiseSpecError(
                f"unknown noise channel {self.channel!r}; "
                f"available: {', '.join(sorted(CHANNELS))}"
            )
        if isinstance(self.p, bool) or not isinstance(
            self.p, (int, float)
        ):
            raise NoiseSpecError(f"'p' must be a number, got {self.p!r}")
        if self.noises is not None and (
            isinstance(self.noises, bool)
            or not isinstance(self.noises, int)
            or self.noises < 0
        ):
            raise NoiseSpecError("'noises' must be a non-negative integer")
        # Strict types throughout: a client serialising booleans as
        # strings must fail loudly — bool("false") is True, and a str
        # seed resolves a different circuit than its int value.
        if not isinstance(self.every_gate, bool):
            raise NoiseSpecError(
                f"'every_gate' must be a boolean, got {self.every_gate!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise NoiseSpecError(
                f"'seed' must be an integer, got {self.seed!r}"
            )
        if self.noises is not None and self.every_gate:
            raise NoiseSpecError(
                "'noises' and 'every_gate' are mutually exclusive noise "
                "placements"
            )
        if self.noises is None and not self.every_gate:
            raise NoiseSpecError(
                "a noise spec needs a placement: set 'noises' or "
                "'every_gate' (omit the spec entirely for no noise)"
            )

    @classmethod
    def from_dict(cls, payload, where: str = "noise spec") -> "NoiseSpec":
        if not isinstance(payload, dict):
            raise NoiseSpecError(
                f"{where} must be an object, got {type(payload).__name__}"
            )
        _reject_unknown(payload, cls._WIRE_FIELDS, where)
        defaults = {
            f.name: f.default for f in dataclasses.fields(cls)
        }
        return cls(**{
            name: payload.get(name, defaults[name])
            for name in cls._WIRE_FIELDS
        })

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._WIRE_FIELDS}

    def apply(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """The noisy copy of ``circuit`` this spec describes."""
        factory = lambda: CHANNELS[self.channel](self.p)  # noqa: E731
        if self.every_gate:
            return NoiseModel().set_default_error(factory).apply(circuit)
        return insert_random_noise(
            circuit, self.noises, channel_factory=factory, seed=self.seed
        )


@dataclass(frozen=True)
class CheckRequest:
    """One declarative equivalence-checking (or fidelity) query.

    Frozen and hashable; circuits are named by :class:`CircuitSpec`,
    noise by :class:`NoiseSpec`, everything else is the epsilon, the
    run mode and :class:`~repro.core.session.CheckConfig` overrides
    (stored as sorted items; constructors accept a plain dict).
    """

    ideal: CircuitSpec
    noisy: Optional[CircuitSpec] = None
    noise: Optional[NoiseSpec] = None
    epsilon: float = 0.01
    mode: str = "check"
    config: Tuple[Tuple[str, Any], ...] = ()

    _WIRE_FIELDS = (
        "schema_version", "mode", "epsilon", "ideal", "noisy", "noise",
        "config",
    )

    def __post_init__(self):
        if isinstance(self.config, dict):
            object.__setattr__(
                self, "config", tuple(sorted(self.config.items()))
            )
        if not isinstance(self.ideal, CircuitSpec):
            raise InvalidRequestError(
                "'ideal' must be a CircuitSpec "
                f"(got {type(self.ideal).__name__})"
            )
        if self.noisy is not None and not isinstance(self.noisy, CircuitSpec):
            raise InvalidRequestError(
                "'noisy' must be a CircuitSpec or None "
                f"(got {type(self.noisy).__name__})"
            )
        if self.noise is not None and not isinstance(self.noise, NoiseSpec):
            raise InvalidRequestError(
                "'noise' must be a NoiseSpec or None "
                f"(got {type(self.noise).__name__})"
            )
        if isinstance(self.epsilon, bool) or not isinstance(
            self.epsilon, (int, float)
        ):
            raise InvalidRequestError(
                f"epsilon must be a number, got {self.epsilon!r}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise InvalidRequestError("epsilon must lie in [0, 1]")
        if self.mode not in RUN_MODES:
            raise InvalidRequestError(
                f"unknown mode {self.mode!r}; choose from {list(RUN_MODES)}"
            )
        bad = sorted(
            key for key, _ in self.config
            if key not in CONFIG_OVERRIDE_FIELDS
        )
        if bad:
            hint = ""
            if any(key in _ENGINE_OWNED_CONFIG for key in bad):
                hint = (
                    "; 'epsilon' is a top-level request field and the "
                    "cache/cluster knobs are Engine-owned"
                )
            raise InvalidRequestError(
                f"unknown config override{'s' if len(bad) > 1 else ''} "
                f"{', '.join(map(repr, bad))}{hint}; "
                f"valid overrides: {', '.join(CONFIG_OVERRIDE_FIELDS)}",
                details={"unknown": bad,
                         "valid": list(CONFIG_OVERRIDE_FIELDS)},
            )
        try:
            # Requests must stay hashable (the engine memoises per
            # config-override set); lists/objects in overrides are
            # config errors, not TypeErrors from a memo dict.
            hash(self.config)
        except TypeError:
            raise InvalidRequestError(
                "config override values must be hashable scalars "
                "(strings, numbers, booleans, null)"
            ) from None

    # --- wire -----------------------------------------------------------------

    @classmethod
    def from_dict(
        cls, payload, base: Optional["CheckRequest"] = None
    ) -> "CheckRequest":
        """Parse a wire payload, rejecting what the schema does not know.

        ``base`` supplies defaults for absent fields (the CLI's batch
        command passes the flag-built request, so JSONL rows only state
        what differs).  For the *optional* fields (``noisy``,
        ``noise``) an explicit ``null`` beats the base — a row may
        switch inherited noise off; for the scalar fields (``epsilon``,
        ``mode``) ``null`` reads the same as absent, so a row cannot
        silently reset an operator's flag to the schema default.
        """
        if not isinstance(payload, dict):
            raise InvalidRequestError(
                f"request must be an object, got {type(payload).__name__}"
            )
        _check_schema_version(payload)
        _reject_unknown(payload, cls._WIRE_FIELDS, "request")

        def merged(name, parse, default, null_clears=False):
            value = payload.get(name)
            if value is not None:
                return parse(value)
            if null_clears and name in payload:
                return default
            return getattr(base, name) if base is not None else default

        ideal = merged(
            "ideal", lambda v: CircuitSpec.from_dict(v, "'ideal'"), None
        )
        if ideal is None:
            raise InvalidRequestError("request is missing 'ideal'")
        config = dict(base.config) if base is not None else {}
        raw_config = payload.get("config")
        if raw_config is not None:
            if not isinstance(raw_config, dict):
                raise InvalidRequestError("'config' must be an object")
            config.update(raw_config)
        return cls(
            ideal=ideal,
            noisy=merged(
                "noisy", lambda v: CircuitSpec.from_dict(v, "'noisy'"),
                None, null_clears=True,
            ),
            noise=merged(
                "noise", lambda v: NoiseSpec.from_dict(v),
                None, null_clears=True,
            ),
            # raw values pass through: __post_init__ type-checks both
            # with typed errors (a float() here would raise bare
            # ValueError on garbage and escape the error taxonomy)
            epsilon=merged("epsilon", lambda v: v, 0.01),
            mode=merged("mode", lambda v: v, "check"),
            config=config,
        )

    @classmethod
    def from_json(cls, text: str, **kwargs) -> "CheckRequest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidRequestError(
                f"request is not valid JSON: {exc}",
                error_type=type(exc).__name__,
            ) from exc
        return cls.from_dict(payload, **kwargs)

    def to_dict(self) -> dict:
        """Canonical wire form: every field present, fixed key order."""
        from ..core.stats import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "mode": self.mode,
            "epsilon": self.epsilon,
            "ideal": self.ideal.to_dict(),
            "noisy": self.noisy.to_dict() if self.noisy else None,
            "noise": self.noise.to_dict() if self.noise else None,
            "config": dict(self.config),
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def trace_id(self) -> str:
        """The request's 16-hex identity: one field shared by the
        service access log (``trace_id``), job ids and span traces.

        Digest of the canonical wire form, so byte-identical requests —
        over HTTP, via the CLI, in process — carry the same id.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # --- resolution helpers ---------------------------------------------------

    def resolve_config(self, base: Optional[CheckConfig] = None) -> CheckConfig:
        """The request's effective :class:`CheckConfig` over ``base``."""
        from .errors import ConfigError

        base = base if base is not None else CheckConfig()
        try:
            return base.replace(epsilon=self.epsilon, **dict(self.config))
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                str(exc), error_type=type(exc).__name__
            ) from exc

    def resolve_circuits(self) -> Tuple[QuantumCircuit, QuantumCircuit]:
        """Materialise the ``(ideal, noisy)`` pair, noise applied.

        Failures carry typed codes, exactly as when the Engine resolves
        the request (it shares :func:`apply_noise`)."""
        ideal = self.ideal.resolve()
        base = self.noisy.resolve() if self.noisy is not None else ideal
        return ideal, apply_noise(self.noise, base)


def apply_noise(noise: Optional[NoiseSpec], circuit: QuantumCircuit):
    """Apply a (possibly absent) noise spec with typed failures.

    The one noise-application path for request resolution — the Engine
    and :meth:`CheckRequest.resolve_circuits` both use it, so a bad
    spec surfaces as ``circuit_load_failed`` everywhere instead of a
    raw exception on one path.
    """
    if noise is None:
        return circuit
    try:
        return noise.apply(circuit)
    except Exception as exc:
        raise CircuitLoadError(
            f"noise application failed: {exc}",
            error_type=type(exc).__name__,
        ) from exc
