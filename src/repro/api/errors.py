"""The :class:`ReproError` taxonomy: typed failures with machine codes.

Every failure the :class:`~repro.api.engine.Engine` can surface is an
instance of :class:`ReproError`, carrying a stable machine-readable
``code`` (the value services branch on), the original exception class
name when one was wrapped (``error_type``, kept for CLI back-compat with
the pre-taxonomy batch records) and an optional ``details`` mapping.
``to_dict()`` emits the error half of the version-``1`` response wire
schema.

Codes are stable API: renaming one is a schema break.  The registry
:data:`ERROR_CODES` maps every code back to its class, which is how
:func:`error_from_code` reconstructs typed errors when a wire payload is
parsed back (golden round-trips depend on it).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..core.stats import SCHEMA_VERSION


class ReproError(Exception):
    """Base of every typed checking-service failure.

    Subclasses override :attr:`code`; the message is the human-readable
    half, the code the machine-readable one.
    """

    #: stable machine-readable failure code (wire field ``error_code``)
    code = "repro_error"

    def __init__(
        self,
        message: str,
        *,
        error_type: Optional[str] = None,
        details: Optional[dict] = None,
        index: Optional[int] = None,
    ):
        super().__init__(message)
        self.message = message
        #: original exception class name when this error wraps one;
        #: defaults to the ReproError subclass name itself
        self.error_type = error_type or type(self).__name__
        #: structured context (offending field, valid choices, ...)
        self.details = dict(details or {})
        #: position in a batch input, when raised for one item of many
        self.index = index

    def to_dict(self) -> dict:
        """The error record of the version-``1`` response wire schema."""
        record = {
            "schema_version": SCHEMA_VERSION,
            "equivalent": False,
            "verdict": "ERROR",
            "error": self.message,
            "error_type": self.error_type,
            "error_code": self.code,
            "index": self.index,
        }
        if self.details:
            record["details"] = dict(self.details)
        return record

    def __reduce__(self):
        # Default Exception pickling replays only ``args`` and would
        # drop the keyword-only fields (and a dynamically-assigned code
        # from :func:`error_from_code`); rebuild explicitly instead.
        return (
            _rebuild_error,
            (type(self), self.message, self.error_type, self.details,
             self.index, self.code),
        )

    def __eq__(self, other) -> bool:
        """Structural equality, so wire round-trips compare equal."""
        if not isinstance(other, ReproError):
            return NotImplemented
        return (
            self.code == other.code
            and self.message == other.message
            and self.error_type == other.error_type
            and self.details == other.details
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.code, self.message, self.error_type, self.index))

    @classmethod
    def wrap(cls, exc: Exception, index: Optional[int] = None) -> "ReproError":
        """Adopt an arbitrary exception into the taxonomy.

        A :class:`ReproError` passes through unchanged (its own code is
        more specific); anything else becomes an instance of ``cls``
        whose ``error_type`` remembers the original class.
        """
        if isinstance(exc, ReproError):
            if index is not None and exc.index is None:
                exc.index = index
            return exc
        return cls(str(exc), error_type=type(exc).__name__, index=index)


def _rebuild_error(cls, message, error_type, details, index, code):
    """Pickle hook of :meth:`ReproError.__reduce__`."""
    error = cls(message, error_type=error_type, details=details, index=index)
    if error.code != code:
        error.code = code
    return error


class InvalidRequestError(ReproError):
    """A request payload that cannot be interpreted at all."""

    code = "invalid_request"


class SchemaVersionError(InvalidRequestError):
    """A wire payload declaring a schema version this build cannot read."""

    code = "unsupported_schema_version"


class UnknownFieldError(InvalidRequestError):
    """A wire payload carrying a field the schema does not define.

    Unknown fields are rejected, not ignored: silently dropping a
    mistyped ``epsilonn`` would turn a typo into a wrong verdict.
    """

    code = "unknown_field"


class CircuitSpecError(InvalidRequestError):
    """A circuit spec that is not exactly one of qasm / path / library."""

    code = "invalid_circuit_spec"


class NoiseSpecError(InvalidRequestError):
    """A noise spec with an unknown channel or inconsistent placement."""

    code = "invalid_noise_spec"


class ConfigError(InvalidRequestError):
    """Config overrides that :class:`~repro.core.session.CheckConfig`
    rejects (the message lists the valid choices)."""

    code = "invalid_config"


class CircuitLoadError(ReproError):
    """A well-formed circuit spec whose circuit cannot be materialised
    (missing file, QASM parse error, bad library parameters)."""

    code = "circuit_load_failed"


class CheckFailedError(ReproError):
    """The check itself raised after the request resolved cleanly."""

    code = "check_failed"


class JobNotFoundError(ReproError):
    """A job id :meth:`~repro.api.engine.Engine.result` does not hold
    (never submitted, its result was already collected, or the job was
    evicted by the engine's completed-job TTL / max-count policy)."""

    code = "job_not_found"


class DeadlineExceededError(ReproError):
    """A request whose per-request deadline expired before the check
    finished (the service's ``X-Repro-Timeout`` header or its default
    request timeout)."""

    code = "deadline_exceeded"


class OverloadedError(ReproError):
    """A request rejected by admission control: the service already has
    ``max_inflight`` requests in flight and refuses to queue more —
    callers should back off and retry (HTTP 503 + ``Retry-After``)."""

    code = "overloaded"


class RemoteUnavailableError(ReproError):
    """A cluster peer (cache server, worker) that cannot be reached.

    Only administrative fail-closed paths raise this (``repro cache
    stats --cache-url`` against a dead server); the checking paths are
    fail-open by contract and degrade to recompute/local instead."""

    code = "remote_unavailable"


class WorkerLostError(RemoteUnavailableError):
    """A ``repro worker`` that died or went silent mid-chunk.

    Internal to :class:`~repro.cluster.executor.RemoteSliceExecutor`'s
    re-dispatch loop in normal operation; surfaces only when local
    fallback is disabled and the whole pool is gone."""

    code = "worker_lost"


#: code -> class, for every concrete member of the taxonomy.
ERROR_CODES: Dict[str, Type[ReproError]] = {
    cls.code: cls
    for cls in (
        ReproError,
        InvalidRequestError,
        SchemaVersionError,
        UnknownFieldError,
        CircuitSpecError,
        NoiseSpecError,
        ConfigError,
        CircuitLoadError,
        CheckFailedError,
        JobNotFoundError,
        DeadlineExceededError,
        OverloadedError,
        RemoteUnavailableError,
        WorkerLostError,
    )
}


def error_from_code(
    code: str,
    message: str,
    *,
    error_type: Optional[str] = None,
    details: Optional[dict] = None,
    index: Optional[int] = None,
) -> ReproError:
    """Reconstruct a typed error from its wire fields.

    Unknown codes (a newer peer's taxonomy) degrade to the base
    :class:`ReproError` rather than failing the parse — the code string
    itself is preserved on the instance.
    """
    cls = ERROR_CODES.get(code)
    error = (cls or ReproError)(
        message, error_type=error_type, details=details, index=index
    )
    if cls is None:
        error.code = code
    return error
