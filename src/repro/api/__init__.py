"""The typed front-door API: one request type in, one response type out.

``repro.api`` is the layer a service (HTTP, RPC, queue worker) builds
on: declarative, frozen :class:`CheckRequest` objects (circuits as
inline QASM, file paths or library specs; noise as a
:class:`NoiseSpec`; config overrides), a versioned JSON wire schema
(``schema_version`` ``"1"``, shared byte-for-byte with the CLI's
``--json``/``batch`` output), a machine-readable
:class:`ReproError` taxonomy, and the :class:`Engine` facade that owns
sessions, the worker pool and the shared content-addressed cache.

Layering (top to bottom):

* :class:`Engine` — requests/responses, pool + cache ownership;
* :class:`~repro.core.session.CheckSession` — circuit objects in,
  results out; the supported lower layer;
* :mod:`repro.backends` / :mod:`repro.tensornet` — contraction engines
  and the plan IR.
"""

from ..core.stats import SCHEMA_VERSION
from .engine import Engine, JobHandle
from .errors import (
    ERROR_CODES,
    CheckFailedError,
    CircuitLoadError,
    CircuitSpecError,
    ConfigError,
    DeadlineExceededError,
    InvalidRequestError,
    JobNotFoundError,
    NoiseSpecError,
    OverloadedError,
    ReproError,
    SchemaVersionError,
    UnknownFieldError,
    error_from_code,
)
from .request import (
    CHANNELS,
    CONFIG_OVERRIDE_FIELDS,
    LIBRARY,
    CheckRequest,
    CircuitSpec,
    NoiseSpec,
)
from .response import CheckResponse, Verdict

__all__ = [
    "CHANNELS",
    "CONFIG_OVERRIDE_FIELDS",
    "ERROR_CODES",
    "LIBRARY",
    "SCHEMA_VERSION",
    "CheckFailedError",
    "CheckRequest",
    "CheckResponse",
    "CircuitLoadError",
    "CircuitSpec",
    "CircuitSpecError",
    "ConfigError",
    "DeadlineExceededError",
    "Engine",
    "InvalidRequestError",
    "JobHandle",
    "JobNotFoundError",
    "NoiseSpec",
    "NoiseSpecError",
    "OverloadedError",
    "ReproError",
    "SchemaVersionError",
    "UnknownFieldError",
    "Verdict",
    "error_from_code",
]
