"""The :class:`Engine` facade: one typed front door for every check.

An engine owns everything a checking service needs behind a single
object: the per-config :class:`~repro.core.session.CheckSession` map
(warm backend state), **one** shared
:class:`~repro.cache.CheckCache` (every session and every worker keys
lookups off the request fingerprint), and **one** lazily-created worker
pool reused across calls.  Callers hand it frozen
:class:`~repro.api.request.CheckRequest` objects and get
:class:`~repro.api.response.CheckResponse` objects back:

>>> from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec
>>> engine = Engine(jobs=4, cache=True)
>>> request = CheckRequest(
...     ideal=CircuitSpec.from_library("qft", num_qubits=4),
...     noise=NoiseSpec(noises=2, seed=7),
...     epsilon=0.01,
... )
>>> engine.check(request).equivalent                 # doctest: +SKIP
True
>>> for r in engine.check_iter([request] * 8):       # doctest: +SKIP
...     print(r.verdict)

Three call shapes:

* :meth:`Engine.check` — one request, one response; failures raise
  typed :class:`~repro.api.errors.ReproError` subclasses;
* :meth:`Engine.check_iter` — a request stream in, a response stream
  out: order-preserving, error-isolating (a failed request becomes an
  ``ERROR`` response, the rest still run), fanned out to the shared
  pool when ``jobs > 1``;
* :meth:`Engine.submit` / :meth:`Engine.result` — fire-and-collect job
  handles over the same pool.

The engine is the documented replacement for the deprecated
``EquivalenceChecker`` front end; ``CheckSession`` remains the
supported lower layer for callers who already hold circuit objects and
want zero request ceremony.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from ..backends import ContractionBackend, available_backends
from ..cache import CheckCache
from ..cache.fingerprint import request_fingerprint
from ..circuits import QuantumCircuit
from ..core.session import CheckConfig, CheckSession
from ..core.stats import CheckError
from .errors import (
    CheckFailedError,
    ConfigError,
    JobNotFoundError,
    ReproError,
)
from .request import CheckRequest, CircuitSpec, apply_noise
from .response import CheckResponse

#: Resolved-circuit memo bound (pure specs only: inline QASM and
#: library generators; path specs re-read their file every time).
_CIRCUIT_MEMO_ENTRIES = 128

#: Session memo bound.  A long-lived service sweeping epsilons or
#: config overrides must not accumulate warm backend state forever;
#: the least-recently-used (config, session) pair is dropped past this.
_SESSION_MEMO_ENTRIES = 32


@dataclass(frozen=True)
class JobHandle:
    """Ticket for one submitted request; redeem with :meth:`Engine.result`."""

    id: str
    request: CheckRequest


class Engine:
    """Session, pool and cache owner behind the typed request API.

    ``config`` (or keyword overrides, as with ``CheckSession``) sets the
    *base* configuration; each request's ``config`` overrides layer on
    top.  ``jobs`` sizes the shared worker pool used by
    :meth:`check_iter` and :meth:`submit`; ``cache``/``cache_dir``
    switch on the one shared content-addressed cache (defaulting to the
    base config's own cache knobs).
    """

    def __init__(
        self,
        config: Optional[CheckConfig] = None,
        *,
        jobs: int = 1,
        cache: Optional[bool] = None,
        cache_dir: Optional[str] = None,
        **overrides,
    ):
        if config is None:
            config = CheckConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if cache is None:
            cache = config.cache
        if cache_dir is None:
            cache_dir = config.cache_dir
        self.jobs = jobs
        #: the one shared cache (None when caching is off); every
        #: in-process session attaches this object, and worker configs
        #: carry its resolved directory so the pool shares the disk tier
        self.cache: Optional[CheckCache] = (
            CheckCache.open(cache_dir) if cache else None
        )
        self.cache_dir: Optional[str] = (
            self.cache.directory if self.cache is not None else None
        )
        #: base config with the cache knobs stripped — sessions must not
        #: open private caches; they share the engine's
        self.config = config.replace(cache=False, cache_dir=None)
        self._sessions: Dict[CheckConfig, CheckSession] = {}
        #: (epsilon, overrides) -> (config, session): one small-tuple
        #: hash on the hot path instead of re-hashing the full frozen
        #: config every check; LRU-bounded, evictions also retire the
        #: session when no other key still maps to its config
        self._resolved: "OrderedDict[tuple, Tuple[CheckConfig, CheckSession]]" = (
            OrderedDict()
        )
        self._circuits: "OrderedDict[CircuitSpec, QuantumCircuit]" = (
            OrderedDict()
        )
        self._pool = None
        self._job_ids = itertools.count(1)
        self._jobs_pending: Dict[str, tuple] = {}

    # --- resolution -----------------------------------------------------------

    def _config_for(self, request: CheckRequest) -> CheckConfig:
        return self._config_session_for(request)[0]

    def _config_session_for(
        self, request: CheckRequest
    ) -> Tuple[CheckConfig, CheckSession]:
        key = (request.epsilon, request.config)
        entry = self._resolved.get(key)
        if entry is not None:
            self._resolved.move_to_end(key)
            return entry
        config = request.resolve_config(self.config)
        entry = (config, self._session(config))
        self._resolved[key] = entry
        while len(self._resolved) > _SESSION_MEMO_ENTRIES:
            _, (old_config, _) = self._resolved.popitem(last=False)
            if all(
                cfg != old_config for cfg, _ in self._resolved.values()
            ):
                self._sessions.pop(old_config, None)
        return entry

    def _circuit(self, spec: CircuitSpec) -> QuantumCircuit:
        if spec.circuit is not None:
            return spec.circuit
        if spec.path is not None:  # files mutate; never memoised
            return spec.resolve()
        # inline-QASM and library specs are pure (specs validate
        # hashability and random generators require a pinned seed)
        circuit = self._circuits.get(spec)
        if circuit is not None:
            self._circuits.move_to_end(spec)
            return circuit
        circuit = spec.resolve()
        self._circuits[spec] = circuit
        while len(self._circuits) > _CIRCUIT_MEMO_ENTRIES:
            self._circuits.popitem(last=False)
        return circuit

    def _resolve(
        self, request: CheckRequest
    ) -> Tuple[CheckConfig, QuantumCircuit, QuantumCircuit]:
        """Request -> (config, ideal, noisy); failures carry typed codes."""
        config = self._config_for(request)
        ideal = self._circuit(request.ideal)
        base = (
            self._circuit(request.noisy)
            if request.noisy is not None
            else ideal
        )
        return config, ideal, apply_noise(request.noise, base)

    def _session(self, config: CheckConfig) -> CheckSession:
        session = self._sessions.get(config)
        if session is None:
            session = CheckSession(config)
            if self.cache is not None:
                session.cache = self.cache
            self._sessions[config] = session
        return session

    def _worker_config(self, config: CheckConfig) -> CheckConfig:
        """The config shipped to pool workers (re-opens the disk tier)."""
        if isinstance(config.backend, ContractionBackend):
            raise ConfigError(
                "jobs > 1 cannot ship a live backend instance to worker "
                "processes; configure the backend by registry name "
                f"(available: {', '.join(available_backends())})"
            )
        if self.cache is None:
            return config
        return config.replace(cache=True, cache_dir=self.cache_dir)

    def fingerprint(self, request: CheckRequest) -> str:
        """The request's content fingerprint — its result-cache key.

        Two requests with equal fingerprints are the same query to the
        service: with caching on, the second is answered by lookup.
        """
        config, ideal, noisy = self._resolve(request)
        return request_fingerprint(ideal, noisy, config, request.mode)

    # --- checking -------------------------------------------------------------

    def _execute(
        self, request: CheckRequest, index: Optional[int]
    ) -> CheckResponse:
        try:
            config, ideal, noisy = self._resolve(request)
            session = self._config_session_for(request)[1]
            try:
                result = session.run(ideal, noisy, request.mode)
            except Exception as exc:
                raise CheckFailedError.wrap(exc) from exc
        except ReproError as error:
            return CheckResponse.from_error(
                error, request=request, index=index
            )
        return CheckResponse.from_result(result, request=request, index=index)

    def check(self, request: CheckRequest) -> CheckResponse:
        """Answer one request in-process; typed errors raise."""
        return self._execute(request, None).raise_for_error()

    def fidelity(self, request: CheckRequest) -> float:
        """The request's exact fidelity (forces ``mode="fidelity"``)."""
        from dataclasses import replace

        if request.mode != "fidelity":
            request = replace(request, mode="fidelity")
        return self.check(request).fidelity

    def check_iter(
        self, requests: Iterable[CheckRequest]
    ) -> Iterator[CheckResponse]:
        """Stream responses for a request stream, in input order.

        Error-isolating: a request that fails — unparseable circuit,
        bad config, raising check — yields an ``ERROR`` response at its
        position and the rest still run.  With ``jobs > 1`` requests
        are materialised up front and fan out to the engine's shared
        worker pool; with ``jobs == 1`` the stream is fully lazy.
        """
        if self.jobs == 1:
            return (
                self._execute(request, index)
                for index, request in enumerate(requests)
            )
        return self._check_iter_parallel(list(requests))

    def _check_iter_parallel(
        self, requests
    ) -> Iterator[CheckResponse]:
        from ..parallel.batch import iter_parallel_items

        entries = []  # (request, resolved-or-None, error-or-None)
        for request in requests:
            try:
                config, ideal, noisy = self._resolve(request)
                entries.append(
                    (request,
                     (self._worker_config(config), ideal, noisy,
                      request.mode),
                     None)
                )
            except ReproError as error:
                entries.append((request, None, error))
        outcomes = iter_parallel_items(
            [item for _, item, _ in entries if item is not None],
            self.jobs,
            isolate_errors=True,
            pool=self._ensure_pool(),
        )
        for index, (request, item, error) in enumerate(entries):
            if error is not None:
                yield CheckResponse.from_error(
                    error, request=request, index=index
                )
                continue
            outcome = next(outcomes)
            if isinstance(outcome, CheckError):
                yield CheckResponse.from_check_error(
                    outcome, request=request, index=index
                )
            else:
                yield CheckResponse.from_result(
                    outcome, request=request, index=index
                )

    # --- job handles ----------------------------------------------------------

    def submit(self, request: CheckRequest) -> JobHandle:
        """Enqueue one request; collect it later with :meth:`result`.

        With ``jobs > 1`` the check starts immediately on the shared
        pool; with ``jobs == 1`` it is deferred and runs inside
        :meth:`result` (same warm sessions either way).  Resolution
        failures are captured in the handle and surface as an ``ERROR``
        response, never as a raise from ``submit``.
        """
        job_id = f"job-{next(self._job_ids)}"
        try:
            config, ideal, noisy = self._resolve(request)
            if self.jobs > 1:
                from ..parallel.worker import run_check_item

                future = self._ensure_pool().submit(
                    run_check_item,
                    self._worker_config(config),
                    0,
                    ideal,
                    noisy,
                    True,
                    request.mode,
                )
                state = ("future", future)
            else:
                state = ("deferred", (config, ideal, noisy))
        except ReproError as error:
            state = ("error", error)
        self._jobs_pending[job_id] = (request, state)
        return JobHandle(id=job_id, request=request)

    def result(
        self,
        handle: Union[JobHandle, str],
        timeout: Optional[float] = None,
    ) -> CheckResponse:
        """Collect one submitted job's response (each job, exactly once).

        Failures come back as ``ERROR`` responses; an unknown or
        already-collected id raises
        :class:`~repro.api.errors.JobNotFoundError`.  ``timeout``
        applies to pool-backed jobs; on expiry the job stays pending
        and ``TimeoutError`` propagates.
        """
        job_id = handle.id if isinstance(handle, JobHandle) else str(handle)
        entry = self._jobs_pending.pop(job_id, None)
        if entry is None:
            raise JobNotFoundError(
                f"unknown or already-collected job {job_id!r}"
            )
        request, (kind, payload) = entry
        if kind == "error":
            return CheckResponse.from_error(payload, request=request)
        if kind == "future":
            try:
                _, result, error = payload.result(timeout)
            except (TimeoutError, _FuturesTimeout):
                # concurrent.futures.TimeoutError only became an alias
                # of the builtin in 3.11; catch both for the 3.10 CI leg
                self._jobs_pending[job_id] = entry  # still collectable
                raise
            if error is not None:
                error_type, message = error
                return CheckResponse.from_error(
                    CheckFailedError(message, error_type=error_type),
                    request=request,
                )
            return CheckResponse.from_result(result, request=request)
        config, ideal, noisy = payload
        session = self._session(config)
        try:
            result = session.run(ideal, noisy, request.mode)
        except Exception as exc:
            return CheckResponse.from_error(
                CheckFailedError.wrap(exc), request=request
            )
        return CheckResponse.from_result(result, request=request)

    def pending_jobs(self) -> Tuple[str, ...]:
        """Ids of submitted-but-uncollected jobs, oldest first."""
        return tuple(self._jobs_pending)

    # --- lifecycle ------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def reset(self) -> None:
        """Drop warm session/backend state (the cache survives)."""
        for session in self._sessions.values():
            session.reset()
        self._sessions.clear()
        self._resolved.clear()
        self._circuits.clear()

    def close(self) -> None:
        """Shut the worker pool down and forget pending jobs."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._jobs_pending.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
