"""The :class:`Engine` facade: one typed front door for every check.

An engine owns everything a checking service needs behind a single
object: the per-config :class:`~repro.core.session.CheckSession` map
(warm backend state), **one** shared
:class:`~repro.cache.CheckCache` (every session and every worker keys
lookups off the request fingerprint), and **one** lazily-created worker
pool reused across calls.  Callers hand it frozen
:class:`~repro.api.request.CheckRequest` objects and get
:class:`~repro.api.response.CheckResponse` objects back:

>>> from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec
>>> engine = Engine(jobs=4, cache=True)
>>> request = CheckRequest(
...     ideal=CircuitSpec.from_library("qft", num_qubits=4),
...     noise=NoiseSpec(noises=2, seed=7),
...     epsilon=0.01,
... )
>>> engine.check(request).equivalent                 # doctest: +SKIP
True
>>> for r in engine.check_iter([request] * 8):       # doctest: +SKIP
...     print(r.verdict)

Three call shapes:

* :meth:`Engine.check` — one request, one response; failures raise
  typed :class:`~repro.api.errors.ReproError` subclasses;
* :meth:`Engine.check_iter` — a request stream in, a response stream
  out: order-preserving, error-isolating (a failed request becomes an
  ``ERROR`` response, the rest still run), fanned out to the shared
  pool when ``jobs > 1``;
* :meth:`Engine.submit` / :meth:`Engine.result` — fire-and-collect job
  handles over the same pool.

The engine is the documented replacement for the deprecated
``EquivalenceChecker`` front end; ``CheckSession`` remains the
supported lower layer for callers who already hold circuit objects and
want zero request ceremony.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from .. import trace as _trace
from ..backends import ContractionBackend, available_backends
from ..cache import CheckCache
from ..cache.fingerprint import request_fingerprint
from ..circuits import QuantumCircuit
from ..core.session import CheckConfig, CheckSession
from ..core.stats import CheckError
from .errors import (
    CheckFailedError,
    ConfigError,
    JobNotFoundError,
    ReproError,
)
from .request import CheckRequest, CircuitSpec, apply_noise
from .response import CheckResponse

#: Resolved-circuit memo bound (pure specs only: inline QASM and
#: library generators; path specs re-read their file every time).
_CIRCUIT_MEMO_ENTRIES = 128

#: Session memo bound.  A long-lived service sweeping epsilons or
#: config overrides must not accumulate warm backend state forever;
#: the least-recently-used (config, session) pair is dropped past this.
_SESSION_MEMO_ENTRIES = 32

#: Default bound on submitted-but-uncollected jobs.  ``result()`` is
#: collectable-once, so a service whose clients abandon handles would
#: otherwise grow ``_jobs_pending`` without limit; past this many, the
#: oldest *finished* jobs are evicted first, then the oldest outright.
_MAX_PENDING_JOBS = 1024


@dataclass(frozen=True)
class JobHandle:
    """Ticket for one submitted request; redeem with :meth:`Engine.result`."""

    id: str
    request: CheckRequest


class Engine:
    """Session, pool and cache owner behind the typed request API.

    ``config`` (or keyword overrides, as with ``CheckSession``) sets the
    *base* configuration; each request's ``config`` overrides layer on
    top.  ``jobs`` sizes the shared worker pool used by
    :meth:`check_iter` and :meth:`submit`; ``cache``/``cache_dir``
    switch on the one shared content-addressed cache (defaulting to the
    base config's own cache knobs).
    """

    def __init__(
        self,
        config: Optional[CheckConfig] = None,
        *,
        jobs: int = 1,
        cache: Optional[bool] = None,
        cache_dir: Optional[str] = None,
        cache_url: Optional[str] = None,
        max_pending_jobs: int = _MAX_PENDING_JOBS,
        job_ttl_seconds: Optional[float] = None,
        **overrides,
    ):
        if config is None:
            config = CheckConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if max_pending_jobs < 1:
            raise ValueError("max_pending_jobs must be at least 1")
        if job_ttl_seconds is not None and job_ttl_seconds <= 0:
            raise ValueError("job_ttl_seconds must be positive")
        if cache is None:
            cache = config.cache
        if cache_dir is None:
            cache_dir = config.cache_dir
        if cache_url is None:
            cache_url = config.cache_url
        self.jobs = jobs
        #: bound on uncollected job handles (oldest evicted past it)
        self.max_pending_jobs = max_pending_jobs
        #: age after which an uncollected job is evicted (None = never)
        self.job_ttl_seconds = job_ttl_seconds
        #: the one shared cache (None when caching is off); every
        #: in-process session attaches this object, and worker configs
        #: carry its resolved directory so the pool shares the disk tier
        self.cache: Optional[CheckCache] = (
            CheckCache.open(cache_dir, cache_url=cache_url)
            if cache
            else None
        )
        self.cache_dir: Optional[str] = (
            self.cache.directory if self.cache is not None else None
        )
        #: resolved remote-cache address the shared cache dials, if any
        self.cache_url: Optional[str] = (
            self.cache.cache_url if self.cache is not None else None
        )
        #: base config with the cache knobs stripped — sessions must not
        #: open private caches; they share the engine's
        self.config = config.replace(
            cache=False, cache_dir=None, cache_url=None
        )
        self._sessions: Dict[CheckConfig, CheckSession] = {}
        #: (epsilon, overrides) -> (config, session): one small-tuple
        #: hash on the hot path instead of re-hashing the full frozen
        #: config every check; LRU-bounded, evictions also retire the
        #: session when no other key still maps to its config
        self._resolved: "OrderedDict[tuple, Tuple[CheckConfig, CheckSession]]" = (
            OrderedDict()
        )
        self._circuits: "OrderedDict[CircuitSpec, QuantumCircuit]" = (
            OrderedDict()
        )
        self._pool = None
        self._job_ids = itertools.count(1)
        #: job id -> (request, (kind, payload), submitted_at); ordered
        #: by submission (dicts preserve insertion order), which is
        #: what the TTL / max-count eviction walks
        self._jobs_pending: Dict[str, tuple] = {}
        #: guards every memo (_resolved/_sessions/_circuits), the job
        #: table and pool creation; re-entrant because resolution paths
        #: nest (_config_session_for -> _session)
        self._lock = threading.RLock()
        #: config -> lock serialising checks on that config's session.
        #: Sessions share mutable backend state (TDD computed tables,
        #: plan memos) that is not safe under concurrent contraction;
        #: the per-session lock makes threaded callers correct while
        #: different configs — and pool-backed jobs — still overlap.
        self._session_locks: Dict[CheckConfig, threading.Lock] = {}

    # --- resolution -----------------------------------------------------------

    def _config_for(self, request: CheckRequest) -> CheckConfig:
        return self._config_session_for(request)[0]

    def _config_session_for(
        self, request: CheckRequest
    ) -> Tuple[CheckConfig, CheckSession]:
        key = (request.epsilon, request.config)
        with self._lock:
            entry = self._resolved.get(key)
            if entry is not None:
                self._resolved.move_to_end(key)
                return entry
            config = request.resolve_config(self.config)
            entry = (config, self._session(config))
            self._resolved[key] = entry
            while len(self._resolved) > _SESSION_MEMO_ENTRIES:
                _, (old_config, _) = self._resolved.popitem(last=False)
                if all(
                    cfg != old_config for cfg, _ in self._resolved.values()
                ):
                    self._sessions.pop(old_config, None)
                    self._session_locks.pop(old_config, None)
            return entry

    def _circuit(self, spec: CircuitSpec) -> QuantumCircuit:
        if spec.circuit is not None:
            return spec.circuit
        if spec.path is not None:  # files mutate; never memoised
            with _trace.span("circuit.load", source="path"):
                return spec.resolve()
        # inline-QASM and library specs are pure (specs validate
        # hashability and random generators require a pinned seed)
        with self._lock:
            circuit = self._circuits.get(spec)
            if circuit is not None:
                self._circuits.move_to_end(spec)
                return circuit
        # resolve outside the lock: QASM parsing / generator calls can
        # be slow, and purity makes a duplicate race-resolve harmless
        with _trace.span(
            "circuit.load",
            source="library" if spec.library is not None else "qasm",
        ):
            circuit = spec.resolve()
        with self._lock:
            self._circuits[spec] = circuit
            while len(self._circuits) > _CIRCUIT_MEMO_ENTRIES:
                self._circuits.popitem(last=False)
        return circuit

    def _resolve(
        self, request: CheckRequest
    ) -> Tuple[CheckConfig, QuantumCircuit, QuantumCircuit]:
        """Request -> (config, ideal, noisy); failures carry typed codes."""
        with _trace.span("request.resolve"):
            config = self._config_for(request)
            ideal = self._circuit(request.ideal)
            base = (
                self._circuit(request.noisy)
                if request.noisy is not None
                else ideal
            )
            return config, ideal, apply_noise(request.noise, base)

    def _session(self, config: CheckConfig) -> CheckSession:
        with self._lock:
            session = self._sessions.get(config)
            if session is None:
                session = CheckSession(config)
                if self.cache is not None:
                    session.cache = self.cache
                self._sessions[config] = session
                self._session_locks[config] = threading.Lock()
            return session

    def _session_lock(self, config: CheckConfig) -> threading.Lock:
        with self._lock:
            lock = self._session_locks.get(config)
            if lock is None:  # session created before locks existed
                lock = self._session_locks.setdefault(
                    config, threading.Lock()
                )
            return lock

    def _worker_config(self, config: CheckConfig) -> CheckConfig:
        """The config shipped to pool workers (re-opens the disk tier)."""
        if isinstance(config.backend, ContractionBackend):
            raise ConfigError(
                "jobs > 1 cannot ship a live backend instance to worker "
                "processes; configure the backend by registry name "
                f"(available: {', '.join(available_backends())})"
            )
        if self.cache is None:
            return config
        return config.replace(
            cache=True,
            cache_dir=self.cache_dir,
            # "" pins workers to force-local resolution: pool workers
            # must re-open the remote tier (shared warmth), not consult
            # a different environment than the engine did
            cache_url=self.cache_url or "",
        )

    def fingerprint(self, request: CheckRequest) -> str:
        """The request's content fingerprint — its result-cache key.

        Two requests with equal fingerprints are the same query to the
        service: with caching on, the second is answered by lookup.
        """
        config, ideal, noisy = self._resolve(request)
        return request_fingerprint(ideal, noisy, config, request.mode)

    # --- checking -------------------------------------------------------------

    def _execute(
        self, request: CheckRequest, index: Optional[int]
    ) -> CheckResponse:
        """Answer one request, opening a trace when its config asks.

        The recorder is created here — above the session — so the root
        ``engine.request`` span covers resolution, caching and the check
        itself; the finished span tree lands on ``result.trace``.
        """
        try:
            trace_on = self._config_for(request).trace
        except ReproError:
            # invalid config: the untraced path below resolves again and
            # maps the same failure to a typed ERROR response
            trace_on = False
        if not trace_on or _trace.current_recorder() is not None:
            return self._execute_inner(request, index)
        recorder = _trace.TraceRecorder()
        with _trace.recording(recorder):
            with _trace.span(
                "engine.request", trace_id=request.trace_id()
            ):
                response = self._execute_inner(request, index)
        if response.result is not None:
            response.result.trace = _trace.span_tree(recorder)
        return response

    def _execute_inner(
        self, request: CheckRequest, index: Optional[int]
    ) -> CheckResponse:
        try:
            config, ideal, noisy = self._resolve(request)
            session = self._config_session_for(request)[1]
            try:
                # one check at a time per session: warm backend state
                # (TDD tables, plan memos) is not contraction-safe
                # under concurrent mutation.  Other configs overlap.
                with self._session_lock(config):
                    result = session.run(ideal, noisy, request.mode)
            except Exception as exc:
                raise CheckFailedError.wrap(exc) from exc
        except ReproError as error:
            return CheckResponse.from_error(
                error, request=request, index=index
            )
        return CheckResponse.from_result(result, request=request, index=index)

    def check(self, request: CheckRequest) -> CheckResponse:
        """Answer one request in-process; typed errors raise."""
        return self._execute(request, None).raise_for_error()

    def respond(self, request: CheckRequest) -> CheckResponse:
        """Answer one request, never raising: failures come back as an
        ``ERROR`` response carrying the typed error.

        The service entry point — a network layer wants one uniform
        return type to serialise, with the error→status mapping applied
        from the response's ``error_code`` rather than an exception
        handler.  In-process callers who prefer exceptions keep
        :meth:`check`.  Safe to call from multiple threads.
        """
        return self._execute(request, None)

    def fidelity(self, request: CheckRequest) -> float:
        """The request's exact fidelity (forces ``mode="fidelity"``)."""
        from dataclasses import replace

        if request.mode != "fidelity":
            request = replace(request, mode="fidelity")
        return self.check(request).fidelity

    def check_iter(
        self, requests: Iterable[CheckRequest]
    ) -> Iterator[CheckResponse]:
        """Stream responses for a request stream, in input order.

        Error-isolating: a request that fails — unparseable circuit,
        bad config, raising check — yields an ``ERROR`` response at its
        position and the rest still run.  With ``jobs > 1`` requests
        are materialised up front and fan out to the engine's shared
        worker pool; with ``jobs == 1`` the stream is fully lazy.
        """
        if self.jobs == 1:
            return (
                self._execute(request, index)
                for index, request in enumerate(requests)
            )
        return self._check_iter_parallel(list(requests))

    def _check_iter_parallel(
        self, requests
    ) -> Iterator[CheckResponse]:
        from ..parallel.batch import iter_parallel_items

        entries = []  # (request, resolved-or-None, error-or-None)
        for request in requests:
            try:
                config, ideal, noisy = self._resolve(request)
                entries.append(
                    (request,
                     (self._worker_config(config), ideal, noisy,
                      request.mode),
                     None)
                )
            except ReproError as error:
                entries.append((request, None, error))
        outcomes = iter_parallel_items(
            [item for _, item, _ in entries if item is not None],
            self.jobs,
            isolate_errors=True,
            pool=self._ensure_pool(),
        )
        for index, (request, item, error) in enumerate(entries):
            if error is not None:
                yield CheckResponse.from_error(
                    error, request=request, index=index
                )
                continue
            outcome = next(outcomes)
            if isinstance(outcome, CheckError):
                yield CheckResponse.from_check_error(
                    outcome, request=request, index=index
                )
            else:
                yield CheckResponse.from_result(
                    outcome, request=request, index=index
                )

    # --- job handles ----------------------------------------------------------

    def submit(self, request: CheckRequest) -> JobHandle:
        """Enqueue one request; collect it later with :meth:`result`.

        With ``jobs > 1`` the check starts immediately on the shared
        pool; with ``jobs == 1`` it is deferred and runs inside
        :meth:`result` (same warm sessions either way).  Resolution
        failures are captured in the handle and surface as an ``ERROR``
        response, never as a raise from ``submit``.

        Every ``submit`` also sweeps abandoned handles: jobs older than
        ``job_ttl_seconds`` are dropped, and past ``max_pending_jobs``
        the oldest finished jobs (then the oldest outright) are evicted
        — so a long-lived service whose clients walk away never leaks.
        Collecting an evicted id raises
        :class:`~repro.api.errors.JobNotFoundError`, same as an unknown
        one.
        """
        try:
            # the job id embeds the request's trace id, so access-log
            # lines, poll responses and span traces join on one field
            job_id = f"job-{request.trace_id()}-{next(self._job_ids)}"
        except ReproError:
            # a circuit-backed spec that cannot serialise has no wire
            # identity; fall back to the bare counter
            job_id = f"job-{next(self._job_ids)}"
        try:
            config, ideal, noisy = self._resolve(request)
            if self.jobs > 1:
                from ..parallel.worker import run_check_item

                future = self._ensure_pool().submit(
                    run_check_item,
                    self._worker_config(config),
                    0,
                    ideal,
                    noisy,
                    True,
                    request.mode,
                )
                state = ("future", future)
            else:
                state = ("deferred", (config, ideal, noisy))
        except ReproError as error:
            state = ("error", error)
        with self._lock:
            self._jobs_pending[job_id] = (
                request, state, time.monotonic()
            )
            self._evict_jobs()
        return JobHandle(id=job_id, request=request)

    def _evict_jobs(self) -> None:
        """Drop expired / excess uncollected jobs (caller holds lock)."""

        def finished(state) -> bool:
            kind, payload = state
            # error and deferred states have no running work to lose;
            # a pool future counts once it is done
            return kind != "future" or payload.done()

        if self.job_ttl_seconds is not None:
            deadline = time.monotonic() - self.job_ttl_seconds
            for job_id in [
                job_id
                for job_id, (_, _, submitted) in self._jobs_pending.items()
                if submitted < deadline
            ]:
                self._drop_job(job_id)
        excess = len(self._jobs_pending) - self.max_pending_jobs
        if excess <= 0:
            return
        # oldest finished first (their results are sitting idle); only
        # reap still-running work when finished ones cannot cover it
        victims = [
            job_id
            for job_id, (_, state, _) in self._jobs_pending.items()
            if finished(state)
        ][:excess]
        if len(victims) < excess:
            spared = set(victims)
            victims += [
                job_id
                for job_id in self._jobs_pending
                if job_id not in spared
            ][: excess - len(victims)]
        for job_id in victims:
            self._drop_job(job_id)

    def _drop_job(self, job_id: str) -> None:
        entry = self._jobs_pending.pop(job_id, None)
        if entry is None:
            return
        _, (kind, payload), _ = entry
        if kind == "future":
            payload.cancel()  # a no-op once running; best effort

    def job_state(self, handle: Union[JobHandle, str]) -> str:
        """Lifecycle state of a submitted job, without collecting it.

        One of ``"running"`` (pool-backed, still computing),
        ``"done"`` (pool-backed, result ready), ``"deferred"``
        (``jobs == 1`` — the check runs inside :meth:`result`),
        ``"failed"`` (resolution failed at submit; :meth:`result`
        returns the ``ERROR`` response) or ``"unknown"`` (never
        submitted, already collected, or evicted).
        """
        job_id = handle.id if isinstance(handle, JobHandle) else str(handle)
        with self._lock:
            entry = self._jobs_pending.get(job_id)
        if entry is None:
            return "unknown"
        _, (kind, payload), _ = entry
        if kind == "error":
            return "failed"
        if kind == "deferred":
            return "deferred"
        return "done" if payload.done() else "running"

    def result(
        self,
        handle: Union[JobHandle, str],
        timeout: Optional[float] = None,
    ) -> CheckResponse:
        """Collect one submitted job's response (each job, exactly once).

        Failures come back as ``ERROR`` responses; an unknown or
        already-collected id raises
        :class:`~repro.api.errors.JobNotFoundError`.  ``timeout``
        applies to pool-backed jobs; on expiry the job stays pending
        and ``TimeoutError`` propagates.
        """
        job_id = handle.id if isinstance(handle, JobHandle) else str(handle)
        with self._lock:
            entry = self._jobs_pending.pop(job_id, None)
        if entry is None:
            raise JobNotFoundError(
                f"unknown, already-collected or evicted job {job_id!r}"
            )
        request, (kind, payload), _submitted = entry
        if kind == "error":
            return CheckResponse.from_error(payload, request=request)
        if kind == "future":
            try:
                _, result, error = payload.result(timeout)
            except (TimeoutError, _FuturesTimeout):
                # concurrent.futures.TimeoutError only became an alias
                # of the builtin in 3.11; catch both for the 3.10 CI leg
                with self._lock:  # still collectable
                    self._jobs_pending[job_id] = entry
                raise
            if error is not None:
                error_type, message = error
                return CheckResponse.from_error(
                    CheckFailedError(message, error_type=error_type),
                    request=request,
                )
            return CheckResponse.from_result(result, request=request)
        config, ideal, noisy = payload
        session = self._session(config)
        try:
            with self._session_lock(config):
                result = session.run(ideal, noisy, request.mode)
        except Exception as exc:
            return CheckResponse.from_error(
                CheckFailedError.wrap(exc), request=request
            )
        return CheckResponse.from_result(result, request=request)

    def pending_jobs(self) -> Tuple[str, ...]:
        """Ids of submitted-but-uncollected jobs, oldest first."""
        with self._lock:
            return tuple(self._jobs_pending)

    # --- lifecycle ------------------------------------------------------------

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool

    def reset(self) -> None:
        """Drop warm session/backend state (the cache survives).

        Idempotent: resetting an already-reset (or never-used) engine
        is a no-op, and the engine stays fully usable afterwards.
        """
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._session_locks.clear()
            self._resolved.clear()
            self._circuits.clear()
        for session in sessions:
            session.reset()

    def close(self) -> None:
        """Shut the worker pool down and forget pending jobs.

        Idempotent: closing twice (or closing a never-started engine)
        is a no-op.  A later call that needs the pool lazily recreates
        it, so ``close()`` between bursts is also a safe way to release
        worker processes.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            jobs = list(self._jobs_pending.values())
            self._jobs_pending.clear()
            sessions = list(self._sessions.values())
        for _, (kind, payload), _ in jobs:
            if kind == "future":
                payload.cancel()
        if pool is not None:
            pool.shutdown()
        # release cluster connections (worker fleets, the remote cache
        # tier); sessions stay usable and re-dial lazily if used again
        for session in sessions:
            session.close()
        if self.cache is not None:
            remote = self.cache.remote
            if remote is not None:
                remote.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
