"""Plain-text circuit drawing.

One column per instruction, one row per qubit.  Controlled gates with a
conventional symbol get control dots and target markers; everything else
(including noise channels) is drawn as a labelled box on each qubit it
touches, with vertical connectors across intermediate wires.
"""

from __future__ import annotations

from typing import List

from .circuit import QuantumCircuit

#: Per-qubit symbols for gates with conventional drawings, keyed by name.
_SYMBOLS = {
    "cx": ["●", "X"],
    "cz": ["●", "●"],
    "cs": ["●", "S"],
    "cp": ["●", "P"],
    "swap": ["x", "x"],
    "ccx": ["●", "●", "X"],
    "ccz": ["●", "●", "●"],
    "cswap": ["●", "x", "x"],
}


def _instruction_cells(inst, num_qubits: int) -> List[str]:
    """Cell text per qubit row for one instruction ('' = plain wire)."""
    cells = [""] * num_qubits
    symbols = _SYMBOLS.get(inst.name) if inst.is_unitary else None
    if symbols is not None and len(symbols) == len(inst.qubits):
        for qubit, symbol in zip(inst.qubits, symbols):
            cells[qubit] = symbol
        return cells
    label = f"~{inst.name}~" if inst.is_noise else inst.name
    for index, qubit in enumerate(inst.qubits):
        suffix = f":{index}" if len(inst.qubits) > 1 else ""
        cells[qubit] = f"[{label}{suffix}]"
    return cells


def draw(circuit: QuantumCircuit) -> str:
    """Render the circuit as fixed-width text art."""
    n = circuit.num_qubits
    rows: List[List[str]] = [[] for _ in range(n)]

    for inst in circuit:
        cells = _instruction_cells(inst, n)
        lo, hi = min(inst.qubits), max(inst.qubits)
        width = max(len(cell) for cell in cells if cell)
        for q in range(n):
            if cells[q]:
                text = cells[q]
            elif lo < q < hi:
                text = "│"
            else:
                text = ""
            rows[q].append(text.center(width, "─"))

    label_width = len(f"q{n - 1}")
    lines = []
    for q in range(n):
        prefix = f"q{q}".ljust(label_width) + ": "
        lines.append(prefix + "─" + "──".join(rows[q]) + "─")
    return "\n".join(lines)
