"""The quantum circuit IR.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects
over ``num_qubits`` wires.  It may freely mix unitary gates and noise
channels; the noiseless case is just the sub-case with no channels.

Conventions
-----------
* Big-endian: qubit 0 is the most-significant bit of basis-state indices.
* ``unitary()`` multiplies instruction matrices left-to-right in time, i.e.
  the circuit ``[A, B]`` implements ``B @ A``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Sequence

import numpy as np

from ..gates import Gate, standard
from ..linalg import COMPLEX, embed_operator
from .instruction import Instruction


class QuantumCircuit:
    """An ordered sequence of gates and noise channels on ``num_qubits``."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: List[Instruction] = []

    # --- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    @property
    def instructions(self) -> List[Instruction]:
        """The instruction list (do not mutate directly)."""
        return self._instructions

    # --- building -----------------------------------------------------------

    def append(self, operation, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append an operation on the given qubits; returns ``self``."""
        inst = Instruction(operation, tuple(qubits))
        if any(q >= self.num_qubits for q in inst.qubits):
            raise ValueError(
                f"qubits {inst.qubits} out of range for {self.num_qubits}-qubit circuit"
            )
        self._instructions.append(inst)
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        """Append many prebuilt instructions."""
        for inst in instructions:
            self.append(inst.operation, inst.qubits)
        return self

    # Gate conveniences.  Each returns self so calls chain.
    def i(self, q: int):  # noqa: E743 - matches the gate name
        """Identity on qubit ``q``."""
        return self.append(standard.i_gate(), [q])

    def x(self, q: int):
        """Pauli X."""
        return self.append(standard.x_gate(), [q])

    def y(self, q: int):
        """Pauli Y."""
        return self.append(standard.y_gate(), [q])

    def z(self, q: int):
        """Pauli Z."""
        return self.append(standard.z_gate(), [q])

    def h(self, q: int):
        """Hadamard."""
        return self.append(standard.h_gate(), [q])

    def s(self, q: int):
        """Phase gate S."""
        return self.append(standard.s_gate(), [q])

    def sdg(self, q: int):
        """S dagger."""
        return self.append(standard.sdg_gate(), [q])

    def t(self, q: int):
        """T gate."""
        return self.append(standard.t_gate(), [q])

    def tdg(self, q: int):
        """T dagger."""
        return self.append(standard.tdg_gate(), [q])

    def sx(self, q: int):
        """sqrt(X)."""
        return self.append(standard.sx_gate(), [q])

    def rx(self, theta: float, q: int):
        """X rotation."""
        return self.append(standard.rx_gate(theta), [q])

    def ry(self, theta: float, q: int):
        """Y rotation."""
        return self.append(standard.ry_gate(theta), [q])

    def rz(self, theta: float, q: int):
        """Z rotation."""
        return self.append(standard.rz_gate(theta), [q])

    def p(self, lam: float, q: int):
        """Phase rotation."""
        return self.append(standard.p_gate(lam), [q])

    def u(self, theta: float, phi: float, lam: float, q: int):
        """Generic 1-qubit gate."""
        return self.append(standard.u_gate(theta, phi, lam), [q])

    def cx(self, control: int, target: int):
        """CNOT."""
        return self.append(standard.cx_gate(), [control, target])

    def cz(self, a: int, b: int):
        """Controlled-Z."""
        return self.append(standard.cz_gate(), [a, b])

    def cp(self, lam: float, control: int, target: int):
        """Controlled phase."""
        return self.append(standard.cp_gate(lam), [control, target])

    def cs(self, control: int, target: int):
        """Controlled-S."""
        return self.append(standard.cs_gate(), [control, target])

    def swap(self, a: int, b: int):
        """SWAP."""
        return self.append(standard.swap_gate(), [a, b])

    def ccx(self, c1: int, c2: int, target: int):
        """Toffoli."""
        return self.append(standard.ccx_gate(), [c1, c2, target])

    def cswap(self, control: int, a: int, b: int):
        """Fredkin."""
        return self.append(standard.cswap_gate(), [control, a, b])

    def unitary(self, matrix, qubits: Sequence[int], name: str = "unitary"):
        """Append an arbitrary unitary matrix as a gate."""
        gate = standard.unitary_gate(np.asarray(matrix, dtype=COMPLEX), name)
        return self.append(gate, qubits)

    # --- inspection -----------------------------------------------------------

    @property
    def num_gates(self) -> int:
        """Number of unitary gate instructions (paper's |G|)."""
        return sum(1 for inst in self._instructions if inst.is_unitary)

    @property
    def num_noise_sites(self) -> int:
        """Number of noise-channel instructions (paper's k)."""
        return sum(1 for inst in self._instructions if inst.is_noise)

    @property
    def is_unitary_circuit(self) -> bool:
        """True if the circuit contains no noise channels."""
        return self.num_noise_sites == 0

    @property
    def num_kraus_terms(self) -> int:
        """Product of Kraus counts across noise sites (Alg I term count)."""
        total = 1
        for inst in self._instructions:
            total *= inst.num_kraus
        return total

    def noise_instructions(self) -> List[Instruction]:
        """All channel instructions, in circuit order."""
        return [inst for inst in self._instructions if inst.is_noise]

    def count_ops(self) -> dict:
        """Histogram of instruction names."""
        counts: dict = {}
        for inst in self._instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth counting gates and channels alike."""
        frontier = [0] * self.num_qubits
        for inst in self._instructions:
            level = max(frontier[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    # --- dense semantics --------------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense unitary of a noiseless circuit.

        Raises ``ValueError`` if the circuit contains noise channels; use
        :mod:`repro.noise.superop` for the channel semantics.
        """
        if not self.is_unitary_circuit:
            raise ValueError(
                "circuit contains noise channels; it has no unitary matrix"
            )
        mat = np.eye(2**self.num_qubits, dtype=COMPLEX)
        for inst in self._instructions:
            embedded = embed_operator(
                inst.operation.matrix, inst.qubits, self.num_qubits
            )
            mat = embedded @ mat
        return mat

    def statevector(self, initial: np.ndarray | None = None) -> np.ndarray:
        """Apply a noiseless circuit to a state vector (default |0...0>)."""
        if initial is None:
            initial = np.zeros(2**self.num_qubits, dtype=COMPLEX)
            initial[0] = 1.0
        return self.to_matrix() @ np.asarray(initial, dtype=COMPLEX)

    # --- structural transforms ---------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Shallow copy (instructions are immutable, so this is safe)."""
        out = QuantumCircuit(self.num_qubits, name or self.name)
        out._instructions = list(self._instructions)
        return out

    def inverse(self) -> "QuantumCircuit":
        """The circuit implementing U†: gates daggered, order reversed.

        Only defined for unitary circuits.
        """
        if not self.is_unitary_circuit:
            raise ValueError("cannot invert a circuit containing noise channels")
        out = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for inst in reversed(self._instructions):
            out.append(inst.operation.dagger(), inst.qubits)
        return out

    def conjugate(self) -> "QuantumCircuit":
        """Entry-wise conjugated circuit U* (Algorithm II primed copy)."""
        out = QuantumCircuit(self.num_qubits, f"{self.name}_conj")
        for inst in self._instructions:
            if inst.is_unitary:
                out.append(inst.operation.conjugate(), inst.qubits)
            else:
                out.append(inst.operation.conjugate(), inst.qubits)
        return out

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """``self`` followed by ``other`` (other must have same width)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError(
                f"cannot compose {self.num_qubits}-qubit circuit with "
                f"{other.num_qubits}-qubit circuit"
            )
        out = self.copy(f"{self.name}+{other.name}")
        out._instructions.extend(other._instructions)
        return out

    def power(self, exponent: int) -> "QuantumCircuit":
        """Repeat the circuit ``exponent`` times (inverse for negatives)."""
        if exponent < 0:
            return self.inverse().power(-exponent)
        out = QuantumCircuit(self.num_qubits, f"{self.name}^{exponent}")
        for _ in range(exponent):
            out._instructions.extend(self._instructions)
        return out

    def remap_qubits(self, mapping: Sequence[int]) -> "QuantumCircuit":
        """Relabel qubit ``q`` to ``mapping[q]`` (mapping is a permutation)."""
        if sorted(mapping) != list(range(self.num_qubits)):
            raise ValueError(f"{mapping} is not a permutation of the qubits")
        out = QuantumCircuit(self.num_qubits, self.name)
        for inst in self._instructions:
            out.append(inst.operation, [mapping[q] for q in inst.qubits])
        return out

    def without_noise(self) -> "QuantumCircuit":
        """Drop all channel instructions, keeping the unitary skeleton."""
        out = QuantumCircuit(self.num_qubits, f"{self.name}_ideal")
        for inst in self._instructions:
            if inst.is_unitary:
                out.append(inst.operation, inst.qubits)
        return out

    def map_instructions(
        self, func: Callable[[Instruction], Iterable[Instruction]]
    ) -> "QuantumCircuit":
        """Rebuild the circuit by expanding each instruction through ``func``."""
        out = QuantumCircuit(self.num_qubits, self.name)
        for inst in self._instructions:
            for new in func(inst):
                out.append(new.operation, new.qubits)
        return out

    def draw(self) -> str:
        """Fixed-width text rendering (see :mod:`repro.circuits.draw`)."""
        from .draw import draw

        return draw(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit({self.name!r}, n={self.num_qubits}, "
            f"|G|={self.num_gates}, k={self.num_noise_sites})"
        )


def random_pauli_layer(
    circuit: QuantumCircuit, rng: np.random.Generator
) -> QuantumCircuit:
    """Append a uniformly random Pauli on every qubit (RB helper)."""
    paulis = [standard.i_gate, standard.x_gate, standard.y_gate, standard.z_gate]
    for q in range(circuit.num_qubits):
        circuit.append(paulis[int(rng.integers(4))](), [q])
    return circuit
