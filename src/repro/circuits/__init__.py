"""Circuit IR: instructions, circuits, DAG view, QASM I/O, optimisations."""

from .circuit import QuantumCircuit, random_pauli_layer
from .dag import CircuitDag, DagNode
from .draw import draw
from .instruction import Instruction, is_channel
from .passes import (
    cancel_adjacent_gates,
    eliminate_final_swaps,
    permutation_matrix,
)

__all__ = [
    "CircuitDag",
    "DagNode",
    "Instruction",
    "QuantumCircuit",
    "cancel_adjacent_gates",
    "draw",
    "eliminate_final_swaps",
    "is_channel",
    "permutation_matrix",
    "random_pauli_layer",
]
