"""A light DAG view over a circuit.

Nodes are instruction indices; edges follow each qubit wire from one
instruction to the next one touching that wire.  The optimisation passes in
:mod:`repro.circuits.passes` use this to find adjacent-on-all-wires gate
pairs, and the tensor-network converter uses it for wire bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .circuit import QuantumCircuit


@dataclass
class DagNode:
    """One instruction in the DAG with per-qubit neighbours."""

    index: int
    #: qubit -> index of the previous instruction on that wire (or None)
    predecessors: Dict[int, Optional[int]] = field(default_factory=dict)
    #: qubit -> index of the next instruction on that wire (or None)
    successors: Dict[int, Optional[int]] = field(default_factory=dict)


class CircuitDag:
    """Wire-following DAG of a :class:`QuantumCircuit`."""

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.nodes: List[DagNode] = []
        last_on_wire: Dict[int, int] = {}
        for idx, inst in enumerate(circuit):
            node = DagNode(idx)
            for q in inst.qubits:
                prev = last_on_wire.get(q)
                node.predecessors[q] = prev
                if prev is not None:
                    self.nodes[prev].successors[q] = idx
                last_on_wire[q] = idx
            node.successors = {q: None for q in inst.qubits}
            self.nodes.append(node)
        #: qubit -> last instruction index on that wire (circuit outputs)
        self.last_on_wire = last_on_wire

    def adjacent_pairs(self) -> List[Tuple[int, int]]:
        """Pairs (i, j) where j directly follows i on *every* shared wire.

        These are the candidates for local gate cancellation: if the two
        operations act on identical qubit tuples and multiply to identity,
        both can be removed without changing the circuit's functionality.
        """
        pairs = []
        for node in self.nodes:
            succs = set(node.successors.values())
            if len(succs) == 1:
                (j,) = succs
                if j is None:
                    continue
                inst_i = self.circuit[node.index]
                inst_j = self.circuit[j]
                if inst_i.qubits == inst_j.qubits:
                    pairs.append((node.index, j))
        return pairs

    def topological_layers(self) -> List[List[int]]:
        """Instruction indices grouped into dependency layers (moments)."""
        level: Dict[int, int] = {}
        layers: List[List[int]] = []
        for idx, inst in enumerate(self.circuit):
            node = self.nodes[idx]
            parents = [p for p in node.predecessors.values() if p is not None]
            lvl = 1 + max((level[p] for p in parents), default=-1)
            level[idx] = lvl
            while len(layers) <= lvl:
                layers.append([])
            layers[lvl].append(idx)
        return layers
