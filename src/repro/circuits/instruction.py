"""Circuit instructions: an operation applied to specific qubits.

An instruction's ``operation`` is either a :class:`repro.gates.Gate`
(unitary) or a noise channel from :mod:`repro.noise` (any object exposing
``name``, ``num_qubits`` and ``kraus_operators``).  Keeping both in one
instruction stream is what makes a *noisy circuit* a first-class citizen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..gates import Gate


def is_channel(operation) -> bool:
    """True if ``operation`` is a (possibly non-unitary) Kraus channel."""
    return hasattr(operation, "kraus_operators") and not isinstance(operation, Gate)


@dataclass(frozen=True)
class Instruction:
    """One operation bound to a tuple of qubit indices."""

    operation: object
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        qubits = tuple(int(q) for q in self.qubits)
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in instruction: {qubits}")
        if any(q < 0 for q in qubits):
            raise ValueError(f"negative qubit index in {qubits}")
        expected = getattr(self.operation, "num_qubits", None)
        if expected is not None and expected != len(qubits):
            raise ValueError(
                f"operation {self.name!r} acts on {expected} qubits, "
                f"got {len(qubits)} indices"
            )
        object.__setattr__(self, "qubits", qubits)

    @property
    def name(self) -> str:
        """Name of the underlying operation."""
        return getattr(self.operation, "name", type(self.operation).__name__)

    @property
    def is_unitary(self) -> bool:
        """Whether this instruction is a plain unitary gate."""
        return isinstance(self.operation, Gate)

    @property
    def is_noise(self) -> bool:
        """Whether this instruction is a noise channel."""
        return is_channel(self.operation)

    @property
    def num_kraus(self) -> int:
        """Number of Kraus operators (1 for a unitary gate)."""
        if self.is_noise:
            return len(self.operation.kraus_operators)
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instruction({self.name} @ {self.qubits})"
