"""Local optimisation passes from Sec. IV-C of the paper.

* :func:`cancel_adjacent_gates` removes neighbouring gate pairs whose
  product is the identity (e.g. H·H, S·S†, CX·CX) and merges adjacent
  same-axis rotations (``rz(a)·rz(b) → rz(a+b)``, likewise ``rx``/``ry``
  and the phase gate ``p``), dropping the merged gate outright when its
  angle lands on the identity (``≡ 0 mod 4π`` for the rotations, mod 2π
  for ``p``).  In approximate equivalence checking the miter ``U† E``
  shares most unitary gates between the two halves, so both rules fire a
  lot — and a shorter miter also fingerprints, plans and contracts
  faster.
* :func:`eliminate_final_swaps` removes trailing SWAP gates and returns the
  output permutation they implement; when computing ``tr(...)`` the trace
  closure simply reconnects inputs to the permuted outputs instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..gates import Gate, standard
from ..linalg import ATOL
from .circuit import QuantumCircuit
from .dag import CircuitDag

#: Gate families that compose additively in their single angle
#: parameter: ``g(a) · g(b) = g(a + b)``.  Keyed by the *exact* gate
#: name — derived names ("rz_dg", "rz_conj") are excluded on purpose,
#: since their matrices no longer match their stored parameters.
_ROTATION_FACTORIES = {
    "rx": standard.rx_gate,
    "ry": standard.ry_gate,
    "rz": standard.rz_gate,
    "p": standard.p_gate,
}


def _merge_rotations(inst_i, inst_j, product, atol: float):
    """The merged gate of two adjacent same-family rotations.

    Returns ``(merged, True)`` when the combined angle is the identity
    (drop both gates), ``(merged, False)`` when a single merged gate
    replaces the pair, and ``(None, False)`` when the pair is not a
    mergeable rotation pair at all.

    ``product`` is the pair's actual matrix product: the merged gate is
    only accepted when its matrix reproduces it, so a custom
    :class:`Gate` that *names* itself ``rz`` but carries a different
    convention (or width) can never be rewritten to something it is
    not — in an equivalence checker, an optimisation that trusts
    labels over matrices could flip verdicts.
    """
    factory = _ROTATION_FACTORIES.get(inst_i.name)
    if (
        factory is None
        or inst_j.name != inst_i.name
        or len(inst_i.operation.params) != 1
        or len(inst_j.operation.params) != 1
    ):
        return None, False
    merged = factory(inst_i.operation.params[0] + inst_j.operation.params[0])
    if merged.matrix.shape != product.shape or not np.allclose(
        merged.matrix, product, atol=atol
    ):
        return None, False
    return merged, merged.is_identity(atol=atol)


def cancel_adjacent_gates(
    circuit: QuantumCircuit, atol: float = ATOL, max_rounds: int = 10_000
) -> QuantumCircuit:
    """Iteratively cancel inverse pairs and merge adjacent rotations.

    Two rewrite rules per round, applied to pairs acting on *identical*
    qubit tuples with no interposing operation on any shared wire:

    * **cancellation** — adjacent unitaries whose product is the
      identity are both removed;
    * **rotation merging** — adjacent ``rx``/``ry``/``rz``/``p`` gates
      on the same wire fuse into one gate carrying the summed angle
      (dropped entirely when the sum is the identity — ``0 mod 4π``
      for the rotations, whose period is 4π, and ``0 mod 2π`` for
      ``p``), so chains like ``rz(a)·rz(b)·rz(c)`` collapse over
      successive rounds.

    Both rules are exactly functionality-preserving (no global-phase
    slack; noise channels are never touched and act as barriers).
    """
    current = circuit
    for _ in range(max_rounds):
        dag = CircuitDag(current)
        to_remove: set = set()
        replacements: Dict[int, Gate] = {}
        for i, j in dag.adjacent_pairs():
            if (
                i in to_remove or j in to_remove
                or i in replacements or j in replacements
            ):
                continue
            inst_i, inst_j = current[i], current[j]
            if not (inst_i.is_unitary and inst_j.is_unitary):
                continue
            product = inst_j.operation.matrix @ inst_i.operation.matrix
            if np.allclose(product, np.eye(product.shape[0]), atol=atol):
                to_remove.update((i, j))
                continue
            merged, drops = _merge_rotations(inst_i, inst_j, product, atol)
            if merged is None:
                continue
            if drops:
                to_remove.update((i, j))
            else:
                replacements[i] = merged
                to_remove.add(j)
        if not to_remove and not replacements:
            return current
        out = QuantumCircuit(current.num_qubits, current.name)
        for idx, inst in enumerate(current):
            if idx in to_remove:
                continue
            out.append(replacements.get(idx, inst.operation), inst.qubits)
        current = out
    return current


def eliminate_final_swaps(
    circuit: QuantumCircuit,
) -> Tuple[QuantumCircuit, List[int]]:
    """Strip trailing SWAP gates, returning (circuit', permutation).

    The original circuit equals ``P @ circuit'`` where ``P`` is the
    permutation unitary sending basis state bit ``q`` to bit ``perm[q]``.
    A SWAP is "trailing" when no other operation follows it on either wire.

    The returned ``perm`` satisfies: output wire ``q`` of ``circuit'``
    becomes output wire ``perm[q]`` of the original circuit.
    """
    remaining = list(circuit.instructions)
    perm = list(range(circuit.num_qubits))
    changed = True
    while changed:
        changed = False
        busy = set()
        for idx in range(len(remaining) - 1, -1, -1):
            inst = remaining[idx]
            if inst.name == "swap" and not busy.intersection(inst.qubits):
                a, b = inst.qubits
                # The swap routes wire a's output to position b and vice
                # versa; compose onto the running permutation.
                perm[a], perm[b] = perm[b], perm[a]
                del remaining[idx]
                changed = True
                break
            busy.update(inst.qubits)
    out = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_noswap")
    for inst in remaining:
        out.append(inst.operation, inst.qubits)
    return out, perm


def permutation_matrix(perm: List[int]) -> np.ndarray:
    """Dense unitary of a qubit-wire permutation (for validation/tests).

    ``perm[q]`` is the wire that qubit ``q``'s state is routed to.
    """
    n = len(perm)
    dim = 2**n
    mat = np.zeros((dim, dim))
    for src in range(dim):
        bits = [(src >> (n - 1 - q)) & 1 for q in range(n)]
        dst_bits = [0] * n
        for q in range(n):
            dst_bits[perm[q]] = bits[q]
        dst = 0
        for bit in dst_bits:
            dst = (dst << 1) | bit
        mat[dst, src] = 1.0
    return mat
