"""Local optimisation passes from Sec. IV-C of the paper.

* :func:`cancel_adjacent_gates` removes neighbouring gate pairs whose
  product is the identity (e.g. H·H, S·S†, CX·CX).  In approximate
  equivalence checking the miter ``U† E`` shares most unitary gates between
  the two halves, so this fires a lot.
* :func:`eliminate_final_swaps` removes trailing SWAP gates and returns the
  output permutation they implement; when computing ``tr(...)`` the trace
  closure simply reconnects inputs to the permuted outputs instead.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..linalg import ATOL
from .circuit import QuantumCircuit
from .dag import CircuitDag


def cancel_adjacent_gates(
    circuit: QuantumCircuit, atol: float = ATOL, max_rounds: int = 10_000
) -> QuantumCircuit:
    """Iteratively remove adjacent mutually-inverse unitary gate pairs.

    Only pairs acting on *identical* qubit tuples with no interposing
    operation on any shared wire are candidates, so the transformation is
    exactly functionality-preserving (noise channels are never touched and
    act as barriers).
    """
    current = circuit
    for _ in range(max_rounds):
        dag = CircuitDag(current)
        to_remove: set = set()
        for i, j in dag.adjacent_pairs():
            if i in to_remove or j in to_remove:
                continue
            inst_i, inst_j = current[i], current[j]
            if not (inst_i.is_unitary and inst_j.is_unitary):
                continue
            product = inst_j.operation.matrix @ inst_i.operation.matrix
            if np.allclose(product, np.eye(product.shape[0]), atol=atol):
                to_remove.update((i, j))
        if not to_remove:
            return current
        out = QuantumCircuit(current.num_qubits, current.name)
        for idx, inst in enumerate(current):
            if idx not in to_remove:
                out.append(inst.operation, inst.qubits)
        current = out
    return current


def eliminate_final_swaps(
    circuit: QuantumCircuit,
) -> Tuple[QuantumCircuit, List[int]]:
    """Strip trailing SWAP gates, returning (circuit', permutation).

    The original circuit equals ``P @ circuit'`` where ``P`` is the
    permutation unitary sending basis state bit ``q`` to bit ``perm[q]``.
    A SWAP is "trailing" when no other operation follows it on either wire.

    The returned ``perm`` satisfies: output wire ``q`` of ``circuit'``
    becomes output wire ``perm[q]`` of the original circuit.
    """
    remaining = list(circuit.instructions)
    perm = list(range(circuit.num_qubits))
    changed = True
    while changed:
        changed = False
        busy = set()
        for idx in range(len(remaining) - 1, -1, -1):
            inst = remaining[idx]
            if inst.name == "swap" and not busy.intersection(inst.qubits):
                a, b = inst.qubits
                # The swap routes wire a's output to position b and vice
                # versa; compose onto the running permutation.
                perm[a], perm[b] = perm[b], perm[a]
                del remaining[idx]
                changed = True
                break
            busy.update(inst.qubits)
    out = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_noswap")
    for inst in remaining:
        out.append(inst.operation, inst.qubits)
    return out, perm


def permutation_matrix(perm: List[int]) -> np.ndarray:
    """Dense unitary of a qubit-wire permutation (for validation/tests).

    ``perm[q]`` is the wire that qubit ``q``'s state is routed to.
    """
    n = len(perm)
    dim = 2**n
    mat = np.zeros((dim, dim))
    for src in range(dim):
        bits = [(src >> (n - 1 - q)) & 1 for q in range(n)]
        dst_bits = [0] * n
        for q in range(n):
            dst_bits[perm[q]] = bits[q]
        dst = 0
        for bit in dst_bits:
            dst = (dst << 1) | bit
        mat[dst, src] = 1.0
    return mat
