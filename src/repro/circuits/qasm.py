"""A minimal OpenQASM 2 reader and writer.

Supports the subset needed by the paper's benchmark circuits: a single
quantum register, the fixed and parametric gates from the standard zoo, and
arithmetic parameter expressions involving ``pi``.  Noise channels have no
QASM form; writing a noisy circuit raises.
"""

from __future__ import annotations

import ast
import math
import operator
import re
from typing import List

from ..gates import FIXED_GATES, PARAMETRIC_GATES
from .circuit import QuantumCircuit

_HEADER_RE = re.compile(r"OPENQASM\s+2(\.\d+)?\s*;")
_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;")
_GATE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_]\w*)\s*(\((?P<params>.*)\))?\s+(?P<args>.+)$"
)
_ARG_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")

_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Pow: operator.pow,
}
_UNARYOPS = {ast.UAdd: operator.pos, ast.USub: operator.neg}


def _eval_param(expr: str) -> float:
    """Safely evaluate a QASM parameter expression like ``-pi/4``."""
    try:
        tree = ast.parse(expr.strip(), mode="eval")
    except SyntaxError as exc:
        raise ValueError(f"invalid parameter expression: {expr!r}") from exc

    def walk(node):
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
            return _BINOPS[type(node.op)](walk(node.left), walk(node.right))
        if isinstance(node, ast.UnaryOp) and type(node.op) in _UNARYOPS:
            return _UNARYOPS[type(node.op)](walk(node.operand))
        raise ValueError(f"unsupported parameter expression: {expr!r}")

    return walk(tree)


def loads(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2 source into a :class:`QuantumCircuit`."""
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.split("//", 1)[0].strip()
        if line:
            lines.append(line)
    body = " ".join(lines)
    if not _HEADER_RE.search(body):
        raise ValueError("missing 'OPENQASM 2.0;' header")
    qreg = _QREG_RE.search(body)
    if qreg is None:
        raise ValueError("missing qreg declaration")
    reg_name, size = qreg.group(1), int(qreg.group(2))
    circuit = QuantumCircuit(size, name=reg_name)

    # Strip everything up to and including the qreg declaration; then
    # process statement by statement.
    rest = body[qreg.end():]
    for statement in rest.split(";"):
        statement = statement.strip()
        if not statement:
            continue
        first_word = statement.split()[0].split("(")[0]
        if first_word in ("include", "creg", "barrier", "measure", "qreg"):
            continue
        match = _GATE_RE.match(statement)
        if match is None:
            raise ValueError(f"cannot parse QASM statement: {statement!r}")
        name = match.group("name")
        qubits = [int(m.group(2)) for m in _ARG_RE.finditer(match.group("args"))]
        params_src = match.group("params")
        if name in FIXED_GATES:
            if params_src:
                raise ValueError(f"gate {name!r} takes no parameters")
            circuit.append(FIXED_GATES[name](), qubits)
        elif name in PARAMETRIC_GATES:
            params = [_eval_param(p) for p in (params_src or "").split(",") if p]
            circuit.append(PARAMETRIC_GATES[name](*params), qubits)
        elif name == "u3":
            params = [_eval_param(p) for p in (params_src or "").split(",") if p]
            circuit.append(PARAMETRIC_GATES["u"](*params), qubits)
        else:
            raise ValueError(f"unsupported gate {name!r}")
    return circuit


def dumps(circuit: QuantumCircuit) -> str:
    """Serialise a noiseless circuit to OpenQASM 2."""
    out = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for inst in circuit:
        if inst.is_noise:
            raise ValueError("noise channels cannot be serialised to OpenQASM 2")
        args = ",".join(f"q[{q}]" for q in inst.qubits)
        op = inst.operation
        if op.params:
            params = ",".join(f"{p:.12g}" for p in op.params)
            out.append(f"{op.name}({params}) {args};")
        else:
            out.append(f"{op.name} {args};")
    return "\n".join(out) + "\n"


def load(path) -> QuantumCircuit:
    """Read a circuit from a ``.qasm`` file."""
    with open(path) as handle:
        return loads(handle.read())


def dump(circuit: QuantumCircuit, path) -> None:
    """Write a circuit to a ``.qasm`` file."""
    with open(path, "w") as handle:
        handle.write(dumps(circuit))
