"""Graphviz export of decision diagrams, for debugging and documentation.

``to_dot(tdd)`` renders the diagram in the style of the TDD paper's
figures: internal nodes labelled with their index variable, solid edges
for the high (1) branch, dashed for the low (0) branch, and complex edge
weights printed when they differ from 1.
"""

from __future__ import annotations

from typing import List

from .manager import Tdd
from .node import TddNode


def _format_weight(value: complex) -> str:
    if abs(value.imag) < 1e-12:
        return f"{value.real:.4g}"
    if abs(value.real) < 1e-12:
        return f"{value.imag:.4g}i"
    sign = "+" if value.imag >= 0 else "-"
    return f"{value.real:.4g}{sign}{abs(value.imag):.4g}i"


def to_dot(tdd: Tdd, name: str = "tdd") -> str:
    """Render a TDD as a Graphviz DOT string."""
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=TB;",
        '  root [shape=none, label=""];',
    ]
    order = tdd.manager.var_order
    seen = set()
    stack = [tdd.node]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.is_terminal:
            lines.append(f'  n{id(node)} [shape=box, label="1"];')
            continue
        lines.append(
            f'  n{id(node)} [shape=circle, label="{order[node.var]}"];'
        )
        for child, weight, style in (
            (node.low, node.low_weight, "dashed"),
            (node.high, node.high_weight, "solid"),
        ):
            label = _format_weight(complex(weight))
            attr = f'style={style}'
            if label != "1":
                attr += f', label="{label}"'
            lines.append(f"  n{id(node)} -> n{id(child)} [{attr}];")
            stack.append(child)
    root_label = _format_weight(complex(tdd.weight))
    attr = "" if root_label == "1" else f' [label="{root_label}"]'
    lines.append(f"  root -> n{id(tdd.node)}{attr};")
    lines.append("}")
    return "\n".join(lines)


def node_count_by_level(tdd: Tdd) -> dict:
    """Histogram of reachable internal nodes per variable (profiling aid)."""
    counts: dict = {}
    seen = set()
    stack: List[TddNode] = [tdd.node]
    while stack:
        node = stack.pop()
        if id(node) in seen or node.is_terminal:
            continue
        seen.add(id(node))
        label = tdd.manager.var_order[node.var]
        counts[label] = counts.get(label, 0) + 1
        stack.append(node.low)
        stack.append(node.high)
    return counts
