"""Contract tensor networks with the TDD backend.

Mirrors the dense engine in :mod:`repro.tensornet.network`, but every
tensor lives as a canonical decision diagram under one shared
:class:`TddManager`.  Reusing a manager across multiple contractions keeps
its computed tables warm — the optimisation measured in the paper's
Table II.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence, Set, Tuple

from ..tensornet.network import ContractionStats, TensorNetwork
from ..tensornet.ordering import contraction_order
from .manager import Tdd, TddManager

#: Contraction recursion is bounded by the number of live variables, which
#: can exceed CPython's default limit on wide doubled networks.
_MIN_RECURSION_LIMIT = 100_000


def ensure_recursion_limit() -> None:
    """Raise the interpreter's recursion limit to the contraction floor.

    Shared by every TDD entry point (this engine and
    :class:`repro.backends.TddBackend`) so the threshold cannot drift
    between them.  Only ever raises the limit, never lowers it.
    """
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


def manager_for_network(
    network: TensorNetwork,
    order_method: str = "tree_decomposition",
    order: Optional[Sequence[str]] = None,
) -> Tuple[TddManager, List[str]]:
    """Create a manager whose variable order follows the elimination order.

    Returns the manager and the elimination order used (so callers can pass
    the same order to :func:`contract_network`).  An already-computed
    ``order`` skips the (possibly expensive) heuristic.
    """
    if order is None:
        order = contraction_order(network, order_method)
    else:
        order = list(order)
    seen = set(order)
    full = order + [i for i in network.all_indices() if i not in seen]
    return TddManager(full), full


def contract_network(
    network: TensorNetwork,
    order: Optional[Sequence[str]] = None,
    manager: Optional[TddManager] = None,
    stats: Optional[ContractionStats] = None,
    order_method: str = "tree_decomposition",
    conversion_cache: Optional[dict] = None,
) -> Tdd:
    """Contract a network to a single TDD.

    Parameters
    ----------
    network:
        The network; every label must appear at most twice.
    order:
        Index elimination order (defaults to ``order_method`` heuristic).
    manager:
        Shared manager to reuse (its order is extended with any new
        labels).  A fresh one is created when omitted.
    stats:
        Collects pairwise-contraction count and peak node count
        (``stats.max_nodes``, the paper's 'nodes' column).
    conversion_cache:
        Optional dict mapping ``id(tensor) -> (tensor, Tdd)``.  Tensors
        already present (verified by object identity) skip the dense→TDD
        conversion; new entries are added.  Callers sharing tensors across
        many contractions (Algorithm I's template networks) pass one dict
        for the whole run.
    """
    ensure_recursion_limit()
    network.validate()
    stats = stats if stats is not None else ContractionStats()
    if order is None:
        order = contraction_order(network, order_method)
    if manager is None:
        manager = TddManager(list(order))
    manager.extend_order(network.all_indices())

    degree = network.index_degree()
    open_labels = {lab for lab, deg in degree.items() if deg == 1}

    items: List[Tuple[Tdd, Set[str]]] = []
    for tensor in network.tensors:
        cached = None
        if conversion_cache is not None:
            entry = conversion_cache.get(id(tensor))
            if entry is not None and entry[0] is tensor:
                cached = entry[1]
        if cached is None:
            flat = tensor.self_trace()
            cached = manager.from_array(flat.data, flat.indices)
            if conversion_cache is not None:
                conversion_cache[id(tensor)] = (tensor, cached)
        _observe(stats, cached)
        items.append((cached, _unit_labels(tensor)))

    remaining = [i for i in network.all_indices() if i not in set(order)]
    for label in list(order) + remaining:
        if label in open_labels:
            continue
        holders = [idx for idx, (_, labs) in enumerate(items) if label in labs]
        if len(holders) != 2:
            continue
        i, j = holders
        (tdd_a, labs_a) = items[i]
        (tdd_b, labs_b) = items[j]
        shared = (labs_a & labs_b) - open_labels
        merged = tdd_a.contract(tdd_b, shared)
        _observe(stats, merged)
        new_labels = (labs_a | labs_b) - shared
        items = [it for k, it in enumerate(items) if k not in (i, j)]
        items.append((merged, new_labels))

    result, labels = items[0]
    for tdd, labs in items[1:]:
        result = result.contract(tdd, [])
        labels |= labs
        _observe(stats, result)
    return result


def contract_network_scalar(
    network: TensorNetwork,
    order: Optional[Sequence[str]] = None,
    manager: Optional[TddManager] = None,
    stats: Optional[ContractionStats] = None,
    order_method: str = "tree_decomposition",
    conversion_cache: Optional[dict] = None,
) -> complex:
    """Contract a closed network to its scalar value with the TDD backend."""
    result = contract_network(
        network, order=order, manager=manager, stats=stats,
        order_method=order_method, conversion_cache=conversion_cache,
    )
    return result.scalar()


def _unit_labels(tensor) -> Set[str]:
    """Labels surviving self-trace: those occurring once within the tensor."""
    counts: dict = {}
    for label in tensor.indices:
        counts[label] = counts.get(label, 0) + 1
    return {label for label, count in counts.items() if count == 1}


def _observe(stats: ContractionStats, tdd: Tdd) -> None:
    stats.max_nodes = max(stats.max_nodes, tdd.num_nodes())
