"""The TDD manager: unique table, computed tables, and all operations.

One :class:`TddManager` owns a global variable order (a list of index
labels) and guarantees canonicity of every diagram built under it.  The
*computed tables* cache addition and contraction results; sharing one
manager across many structurally-similar trace computations is exactly the
paper's "computed table" optimisation (Sec. IV-C, evaluated in Table II).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..linalg import COMPLEX
from .node import TERMINAL_VAR, TddNode, count_nodes, round_weight

Edge = Tuple[complex, TddNode]


class TddManager:
    """Owns the unique/computed tables for one global variable order."""

    def __init__(self, var_order: Sequence[str]):
        labels = list(var_order)
        if len(set(labels)) != len(labels):
            raise ValueError("variable order contains duplicate labels")
        self.var_order: List[str] = labels
        self.var_position: Dict[str, int] = {v: i for i, v in enumerate(labels)}
        self.terminal = TddNode(TERMINAL_VAR)
        self._unique: Dict[tuple, TddNode] = {}
        self._add_cache: Dict[tuple, Edge] = {}
        self._cont_cache: Dict[tuple, Edge] = {}
        #: Running statistics (exposed for the Table II experiment).
        self.stats = {
            "makenode_calls": 0,
            "add_cache_hits": 0,
            "cont_cache_hits": 0,
            "unique_hits": 0,
        }

    # --- bookkeeping --------------------------------------------------------

    def num_unique_nodes(self) -> int:
        """Distinct nodes currently hash-consed (terminal excluded)."""
        return len(self._unique)

    def clear_computed_tables(self) -> None:
        """Drop the add/contract caches (the "w/o computed table" ablation).

        The unique table is kept — canonicity must survive.
        """
        self._add_cache.clear()
        self._cont_cache.clear()

    def extend_order(self, labels: Iterable[str]) -> None:
        """Append previously unseen labels to the end of the global order."""
        for label in labels:
            if label not in self.var_position:
                self.var_position[label] = len(self.var_order)
                self.var_order.append(label)

    # --- construction ---------------------------------------------------------

    def make_node(self, var: int, low: Edge, high: Edge) -> Edge:
        """Canonical reduced node with the TDD normalisation rule.

        * zero edges point at the terminal;
        * redundant nodes (equal children and weights) are skipped;
        * out-weights are divided by the larger-magnitude weight, which is
          pushed to the incoming edge.
        """
        self.stats["makenode_calls"] += 1
        (w0, n0), (w1, n1) = low, high
        w0 = complex(w0)
        w1 = complex(w1)
        if abs(w0) == 0.0:
            w0, n0 = 0.0, self.terminal
        if abs(w1) == 0.0:
            w1, n1 = 0.0, self.terminal
        if w0 == 0.0 and w1 == 0.0:
            return (0.0, self.terminal)
        if n0 is n1 and round_weight(w0) == round_weight(w1):
            return (w0, n0)
        norm = w0 if abs(w0) >= abs(w1) else w1
        w0n = round_weight(w0 / norm)
        w1n = round_weight(w1 / norm)
        key = (var, id(n0), w0n, id(n1), w1n)
        node = self._unique.get(key)
        if node is None:
            node = TddNode(var, n0, w0n, n1, w1n)
            self._unique[key] = node
        else:
            self.stats["unique_hits"] += 1
        return (norm, node)

    def from_array(self, data: np.ndarray, labels: Sequence[str]) -> "Tdd":
        """Build a TDD from a dense tensor with the given index labels.

        Axes may be in any label order; each dimension must be 2 and labels
        must be unique within the tensor (self-loops are traced out before
        conversion by the engine).
        """
        data = np.asarray(data, dtype=COMPLEX)
        if data.ndim != len(labels):
            raise ValueError("label count must match tensor rank")
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate labels {labels}; trace self-loops first")
        for label in labels:
            if label not in self.var_position:
                raise KeyError(f"label {label!r} not in the manager's order")
        if any(dim != 2 for dim in data.shape):
            raise ValueError("TDDs require all index dimensions to be 2")
        # Sort axes by global variable position.
        positions = [self.var_position[lab] for lab in labels]
        axis_order = sorted(range(len(labels)), key=lambda ax: positions[ax])
        data = np.transpose(data, axis_order)
        sorted_positions = [positions[ax] for ax in axis_order]
        edge = self._edge_from_array(data, sorted_positions, 0)
        return Tdd(self, edge[0], edge[1])

    def _edge_from_array(
        self, data: np.ndarray, positions: List[int], depth: int
    ) -> Edge:
        if depth == len(positions):
            return (complex(data), self.terminal)
        low = self._edge_from_array(data[0], positions, depth + 1)
        high = self._edge_from_array(data[1], positions, depth + 1)
        return self.make_node(positions[depth], low, high)

    def scalar(self, value: complex) -> "Tdd":
        """A rank-0 TDD."""
        return Tdd(self, complex(value), self.terminal)

    # --- addition ----------------------------------------------------------------

    def add(self, a: Edge, b: Edge) -> Edge:
        """Pointwise sum of two diagrams (over the union of their supports)."""
        wa, na = a
        wb, nb = b
        if abs(wa) == 0.0:
            return b
        if abs(wb) == 0.0:
            return a
        if na is self.terminal and nb is self.terminal:
            return (wa + wb, self.terminal)
        # Factor the first weight out for cache locality.
        ratio = round_weight(wb / wa)
        key = (id(na), id(nb), ratio)
        hit = self._add_cache.get(key)
        if hit is not None:
            self.stats["add_cache_hits"] += 1
            return (hit[0] * wa, hit[1])
        var = min(na.var, nb.var)
        (la_w, la_n), (ha_w, ha_n) = na.cofactors(var)
        (lb_w, lb_n), (hb_w, hb_n) = nb.cofactors(var)
        low = self.add((la_w, la_n), (ratio * lb_w, lb_n))
        high = self.add((ha_w, ha_n), (ratio * hb_w, hb_n))
        result = self.make_node(var, low, high)
        self._add_cache[key] = result
        return (result[0] * wa, result[1])

    # --- contraction -----------------------------------------------------------

    def contract(self, a: Edge, b: Edge, sum_positions: Sequence[int]) -> Edge:
        """Contract two diagrams, summing over the given variable positions.

        Variables present in both operands but *not* summed act as shared
        (diagonal) indices; variables in ``sum_positions`` absent from both
        operands contribute a factor of two each.
        """
        svars = tuple(sorted(sum_positions))
        return self._cont(a, b, svars)

    def _cont(self, a: Edge, b: Edge, svars: Tuple[int, ...]) -> Edge:
        wa, na = a
        wb, nb = b
        if abs(wa) == 0.0 or abs(wb) == 0.0:
            return (0.0, self.terminal)
        if na is self.terminal and nb is self.terminal:
            return (wa * wb * (2 ** len(svars)), self.terminal)
        top = min(na.var, nb.var)
        # Summed variables above the top of both operands appear in neither:
        # each contributes sum_{x in {0,1}} 1 = 2.
        skip = 0
        while skip < len(svars) and svars[skip] < top:
            skip += 1
        factor = complex(2 ** skip)
        rest = svars[skip:]
        key = (id(na), id(nb), rest)
        hit = self._cont_cache.get(key)
        if hit is not None:
            self.stats["cont_cache_hits"] += 1
            return (hit[0] * wa * wb * factor, hit[1])
        sum_here = bool(rest) and rest[0] == top
        svars_next = rest[1:] if sum_here else rest
        (la_w, la_n), (ha_w, ha_n) = na.cofactors(top)
        (lb_w, lb_n), (hb_w, hb_n) = nb.cofactors(top)
        low = self._cont((la_w, la_n), (lb_w, lb_n), svars_next)
        high = self._cont((ha_w, ha_n), (hb_w, hb_n), svars_next)
        if sum_here:
            result = self.add(low, high)
        else:
            result = self.make_node(top, low, high)
        self._cont_cache[key] = result
        return (result[0] * wa * wb * factor, result[1])

    # --- export ---------------------------------------------------------------

    def to_array(self, tdd: "Tdd", labels: Sequence[str]) -> np.ndarray:
        """Expand a TDD back to a dense tensor with axes in ``labels`` order.

        ``labels`` must be a superset of the diagram's support.
        """
        positions = [self.var_position[lab] for lab in labels]
        if len(set(positions)) != len(positions):
            raise ValueError("duplicate labels in to_array")
        support = tdd.support_positions()
        missing = support - set(positions)
        if missing:
            names = [self.var_order[p] for p in sorted(missing)]
            raise ValueError(f"labels missing diagram variables: {names}")
        sorted_pairs = sorted(range(len(labels)), key=lambda i: positions[i])
        sorted_positions = [positions[i] for i in sorted_pairs]
        dense = self._expand(tdd.node, sorted_positions, 0) * tdd.weight
        # Undo the sort to match the requested axis order.
        inverse = np.argsort(sorted_pairs)
        return np.transpose(dense, inverse) if labels else dense

    def _expand(
        self, node: TddNode, positions: List[int], depth: int
    ) -> np.ndarray:
        if depth == len(positions):
            if not node.is_terminal:
                raise ValueError("diagram deeper than the requested labels")
            return np.asarray(1.0, dtype=COMPLEX)
        var = positions[depth]
        if node.is_terminal or node.var > var:
            sub = self._expand(node, positions, depth + 1)
            return np.stack([sub, sub])
        if node.var == var:
            low = self._expand(node.low, positions, depth + 1) * node.low_weight
            high = (
                self._expand(node.high, positions, depth + 1) * node.high_weight
            )
            return np.stack([low, high])
        raise ValueError("diagram variable above the requested labels")


class Tdd:
    """A tensor as (manager, incoming weight, root node)."""

    __slots__ = ("manager", "weight", "node")

    def __init__(self, manager: TddManager, weight: complex, node: TddNode):
        self.manager = manager
        self.weight = complex(weight)
        self.node = node

    @property
    def is_scalar(self) -> bool:
        """Whether the diagram has no variables left."""
        return self.node.is_terminal

    def scalar(self) -> complex:
        """Value of a variable-free diagram."""
        if not self.is_scalar:
            raise ValueError("TDD still depends on variables")
        return self.weight

    def num_nodes(self) -> int:
        """Distinct reachable nodes, terminal included (paper's 'nodes')."""
        return count_nodes(self.node)

    def support_positions(self) -> set:
        """Variable positions the diagram depends on."""
        support = set()
        stack = [self.node]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen or node.is_terminal:
                continue
            seen.add(id(node))
            support.add(node.var)
            stack.append(node.low)
            stack.append(node.high)
        return support

    def support_labels(self) -> set:
        """Index labels the diagram depends on."""
        order = self.manager.var_order
        return {order[p] for p in self.support_positions()}

    def add(self, other: "Tdd") -> "Tdd":
        """Pointwise sum."""
        self._check(other)
        w, n = self.manager.add((self.weight, self.node), (other.weight, other.node))
        return Tdd(self.manager, w, n)

    def contract(self, other: "Tdd", sum_labels: Iterable[str]) -> "Tdd":
        """Contract with ``other`` over the given labels."""
        self._check(other)
        positions = [self.manager.var_position[lab] for lab in sum_labels]
        w, n = self.manager.contract(
            (self.weight, self.node), (other.weight, other.node), positions
        )
        return Tdd(self.manager, w, n)

    def to_array(self, labels: Sequence[str]) -> np.ndarray:
        """Dense tensor with the given axis labels."""
        return self.manager.to_array(self, labels)

    def _check(self, other: "Tdd") -> None:
        if other.manager is not self.manager:
            raise ValueError("TDDs belong to different managers")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tdd(weight={self.weight:.6g}, nodes={self.num_nodes()})"
