"""Tensor Decision Diagrams: canonical DD representation of tensors."""

from .engine import (
    contract_network,
    contract_network_scalar,
    ensure_recursion_limit,
    manager_for_network,
)
from .export import node_count_by_level, to_dot
from .manager import Tdd, TddManager
from .node import TERMINAL_VAR, TddNode, count_nodes, round_weight

__all__ = [
    "TERMINAL_VAR",
    "Tdd",
    "TddManager",
    "TddNode",
    "contract_network",
    "contract_network_scalar",
    "count_nodes",
    "ensure_recursion_limit",
    "manager_for_network",
    "node_count_by_level",
    "round_weight",
    "to_dot",
]
