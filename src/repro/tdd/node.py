"""TDD nodes and weight canonicalisation.

A Tensor Decision Diagram (Hong et al., arXiv:2009.02618) represents a
tensor over Boolean indices as a rooted DAG.  Each internal node tests one
index variable and has two weighted out-edges (low = index 0, high = 1);
the unique terminal represents the constant 1.  Canonicity comes from the
normalisation rule in :mod:`repro.tdd.manager` plus hash-consing of nodes.
"""

from __future__ import annotations

from typing import Tuple

#: Variable position assigned to the terminal node: larger than any real var.
TERMINAL_VAR = 1 << 60

#: Decimal places used when hashing edge weights.  Two weights equal within
#: this precision are identified, which keeps float jitter from breaking
#: canonicity.
WEIGHT_DECIMALS = 12


def round_weight(value: complex) -> complex:
    """Canonical rounded form of an edge weight for hashing."""
    real = round(value.real, WEIGHT_DECIMALS)
    imag = round(value.imag, WEIGHT_DECIMALS)
    # Collapse -0.0 so hash keys match.
    if real == 0.0:
        real = 0.0
    if imag == 0.0:
        imag = 0.0
    return complex(real, imag)


class TddNode:
    """One hash-consed TDD node.

    Attributes
    ----------
    var:
        Position of the tested variable in the manager's global order
        (``TERMINAL_VAR`` for the terminal node).
    low, high:
        Successor nodes for index value 0 / 1.
    low_weight, high_weight:
        Complex weights on the two out-edges.
    """

    __slots__ = ("var", "low", "low_weight", "high", "high_weight")

    def __init__(
        self,
        var: int,
        low: "TddNode | None" = None,
        low_weight: complex = 0.0,
        high: "TddNode | None" = None,
        high_weight: complex = 0.0,
    ):
        self.var = var
        self.low = low
        self.low_weight = low_weight
        self.high = high
        self.high_weight = high_weight

    @property
    def is_terminal(self) -> bool:
        """Whether this is the terminal (constant-1) node."""
        return self.var == TERMINAL_VAR

    def cofactors(self, var: int) -> Tuple[Tuple[complex, "TddNode"],
                                           Tuple[complex, "TddNode"]]:
        """Unit-incoming-weight cofactors of this node w.r.t. ``var``.

        If the node does not test ``var`` (its top variable is below it in
        the order), both cofactors are the node itself.
        """
        if self.var == var:
            return (self.low_weight, self.low), (self.high_weight, self.high)
        return (1.0, self), (1.0, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_terminal:
            return "TddNode(terminal)"
        return f"TddNode(var={self.var}, id={id(self):#x})"


def count_nodes(node: TddNode) -> int:
    """Number of distinct nodes reachable from ``node`` (terminal included)."""
    seen = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if not current.is_terminal:
            stack.append(current.low)
            stack.append(current.high)
    return len(seen)
