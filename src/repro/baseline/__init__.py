"""Dense Qiskit-style baseline: Operator, SuperOp, process_fidelity."""

from .fidelity import (
    average_gate_fidelity,
    process_fidelity,
    process_fidelity_choi,
)
from .operator import Operator
from .superop import (
    PAPER_MEMORY_BYTES,
    MemoryLimitExceeded,
    SuperOp,
    estimate_superop_bytes,
)

__all__ = [
    "MemoryLimitExceeded",
    "Operator",
    "PAPER_MEMORY_BYTES",
    "SuperOp",
    "average_gate_fidelity",
    "estimate_superop_bytes",
    "process_fidelity",
    "process_fidelity_choi",
]
