"""Dense ``SuperOp``: the baseline's explicit super-operator matrix.

A ``SuperOp`` on ``n`` qubits stores the full ``4^n x 4^n`` complex matrix
``M_E`` (row-stacking vectorisation), i.e. ``16^n`` complex128 values.
That is the representation behind Qiskit's ``SuperOp`` class, and it is
why the paper's baseline runs out of memory at 7 qubits on an 8 GB laptop:
the matrix alone is 4.3 GB and evolution needs a working copy.

:class:`MemoryLimitExceeded` reproduces that wall deterministically: the
constructor estimates peak bytes and refuses to allocate past the
configured budget instead of thrashing the machine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits import QuantumCircuit
from ..linalg import COMPLEX, dagger
from ..noise import instruction_kraus

#: The paper's experimental memory envelope.
PAPER_MEMORY_BYTES = 8 * 1024**3


class MemoryLimitExceeded(MemoryError):
    """Raised when a dense super-operator would not fit the memory budget."""

    def __init__(self, required: int, limit: int):
        super().__init__(
            f"dense SuperOp needs ~{required / 1024**3:.2f} GiB, "
            f"budget is {limit / 1024**3:.2f} GiB"
        )
        self.required = required
        self.limit = limit


def estimate_superop_bytes(num_qubits: int) -> int:
    """Peak bytes to build a dense SuperOp.

    Evolution keeps the ``16^n`` tensor, the tensordot result, and the
    internal transposed copy ``tensordot`` makes — three live copies at
    peak.
    """
    return 3 * (16**num_qubits) * 16


class SuperOp:
    """Dense super-operator matrix of a (noisy) circuit."""

    def __init__(
        self,
        data,
        memory_limit_bytes: Optional[int] = None,
    ):
        if isinstance(data, QuantumCircuit):
            if memory_limit_bytes is not None:
                required = estimate_superop_bytes(data.num_qubits)
                if required > memory_limit_bytes:
                    raise MemoryLimitExceeded(required, memory_limit_bytes)
            self.num_qubits = data.num_qubits
            self._tensor = _evolve_circuit(data)
        else:
            matrix = np.asarray(data, dtype=COMPLEX)
            dim = matrix.shape[0]
            num_qubits = 0
            while 4**num_qubits < dim:
                num_qubits += 1
            if matrix.shape != (4**num_qubits, 4**num_qubits):
                raise ValueError(f"SuperOp matrix has bad shape {matrix.shape}")
            if memory_limit_bytes is not None:
                required = estimate_superop_bytes(num_qubits)
                if required > memory_limit_bytes:
                    raise MemoryLimitExceeded(required, memory_limit_bytes)
            self.num_qubits = num_qubits
            self._tensor = matrix.reshape([2] * (4 * num_qubits))

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2^n``."""
        return 2**self.num_qubits

    @property
    def data(self) -> np.ndarray:
        """The ``4^n x 4^n`` matrix (row-stacking convention)."""
        side = 4**self.num_qubits
        return self._tensor.reshape(side, side)

    def to_choi(self, normalised: bool = False) -> np.ndarray:
        """Reshuffle the super-operator matrix into the Choi matrix.

        Row-stacking: ``M[(r, c), (r', c')] = sum_k K[r, r'] K*[c, c']``
        and ``Choi[(r', r), (c', c)] = sum_k K[r, r'] K*[c, c']``, so the
        Choi matrix is a transpose-reshuffle of ``M``.  With
        ``normalised=True`` the result is the Jamiolkowski state
        ``rho_E`` of trace one.
        """
        d = self.dim
        m4 = self.data.reshape(d, d, d, d)  # [r, c, r', c']
        choi = np.transpose(m4, (2, 0, 3, 1)).reshape(d * d, d * d)
        if normalised:
            choi = choi / d
        return choi

    def compose(self, other: "SuperOp") -> "SuperOp":
        """``other`` after ``self``."""
        return SuperOp(other.data @ self.data)

    def adjoint(self) -> "SuperOp":
        """Adjoint super-operator."""
        return SuperOp(dagger(self.data))

    def is_trace_preserving(self, atol: float = 1e-8) -> bool:
        """Check TP via the Choi partial trace over the output system."""
        d = self.dim
        choi = self.to_choi().reshape(d, d, d, d)
        partial = np.einsum("arbr->ab", choi)
        return bool(np.allclose(partial, np.eye(d), atol=atol))


def _evolve_circuit(circuit: QuantumCircuit) -> np.ndarray:
    """Build the circuit's super-operator tensor instruction by instruction.

    The state is a tensor with ``4n`` binary axes ordered
    ``(r_0..r_{n-1}, c_0..c_{n-1}, r'_0..r'_{n-1}, c'_0..c'_{n-1})`` —
    output row/col bits then input row/col bits.  Each instruction's
    ``sum_k K (x) K*`` acts on the output axes of its qubits, costing
    ``O(16^n * 16^k)`` — the same scaling as Qiskit's dense evolution.
    """
    n = circuit.num_qubits
    dim = 4**n
    tensor = np.eye(dim, dtype=COMPLEX).reshape([2] * (4 * n))
    for inst in circuit:
        k = len(inst.qubits)
        step = np.zeros((2,) * (4 * k), dtype=COMPLEX)
        for op in instruction_kraus(inst):
            kraus_t = np.asarray(op, dtype=COMPLEX).reshape([2] * (2 * k))
            step += np.multiply.outer(kraus_t, np.conjugate(kraus_t))
        # step axes: (r_out k, r_in k, c_out k, c_in k); reorder to
        # (r_out, c_out, r_in, c_in).
        perm = (
            list(range(0, k))
            + list(range(2 * k, 3 * k))
            + list(range(k, 2 * k))
            + list(range(3 * k, 4 * k))
        )
        step = np.transpose(step, perm)
        # Contract step's input axes with the tensor's output axes of the
        # instruction's qubits: rows at positions qs, cols at n + qs.
        row_axes = [q for q in inst.qubits]
        col_axes = [n + q for q in inst.qubits]
        tensor = np.tensordot(
            step,
            tensor,
            axes=(list(range(2 * k, 4 * k)), row_axes + col_axes),
        )
        # New axes: (r_out k, c_out k, then remaining axes of tensor).
        remaining = [ax for ax in range(4 * n) if ax not in row_axes + col_axes]
        perm_back = [0] * (4 * n)
        for i, q in enumerate(inst.qubits):
            perm_back[q] = i
            perm_back[n + q] = k + i
        for i, ax in enumerate(remaining):
            perm_back[ax] = 2 * k + i
        tensor = np.transpose(tensor, perm_back)
    return tensor
