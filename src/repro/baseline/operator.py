"""Dense ``Operator``: the Qiskit-style unitary wrapper of the baseline.

The baseline mimics Qiskit's quantum-information module closely enough to
play its role in the paper's Table I: circuits are flattened to explicit
``2^n x 2^n`` (``Operator``) or ``4^n x 4^n`` (``SuperOp``) matrices, and
``process_fidelity`` works on those dense objects.  All the scalability
cliffs the paper reports against come from exactly this representation.
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from ..linalg import COMPLEX, dagger, is_unitary


class Operator:
    """A dense unitary operator on ``n`` qubits."""

    def __init__(self, data):
        if isinstance(data, QuantumCircuit):
            matrix = data.to_matrix()
        else:
            matrix = np.asarray(data, dtype=COMPLEX)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"operator must be square, got {matrix.shape}")
        self.data = matrix

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return self.data.shape[0]

    def is_unitary(self, atol: float = 1e-8) -> bool:
        """Unitarity check."""
        return is_unitary(self.data, atol=atol)

    def adjoint(self) -> "Operator":
        """Hermitian conjugate."""
        return Operator(dagger(self.data))

    def compose(self, other: "Operator") -> "Operator":
        """``other`` after ``self``."""
        return Operator(other.data @ self.data)

    def tensor(self, other: "Operator") -> "Operator":
        """Kronecker product."""
        return Operator(np.kron(self.data, other.data))

    def equiv(self, other: "Operator", atol: float = 1e-8) -> bool:
        """Equality up to global phase."""
        from ..linalg import allclose_up_to_global_phase

        return allclose_up_to_global_phase(self.data, other.data, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operator(dim={self.dim})"
