"""``process_fidelity``: the Qiskit-style dense baseline of Table I.

The baseline path the paper compares against: flatten the ideal circuit
to an :class:`Operator`, the noisy circuit to a dense :class:`SuperOp`,
and compute the fidelity of their (normalised) Choi states.  For a
unitary target this equals the Jamiolkowski fidelity
``F_J = <Phi_U| rho_E |Phi_U>``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits import QuantumCircuit
from ..linalg import COMPLEX, state_fidelity
from .operator import Operator
from .superop import SuperOp


def process_fidelity(
    channel,
    target=None,
    memory_limit_bytes: Optional[int] = None,
) -> float:
    """Fidelity between a channel and a target unitary, densely.

    Parameters
    ----------
    channel:
        A noisy :class:`~repro.circuits.QuantumCircuit` or a
        :class:`SuperOp`.
    target:
        The ideal :class:`~repro.circuits.QuantumCircuit` or
        :class:`Operator`; defaults to the identity.
    memory_limit_bytes:
        Refuse (with :class:`~repro.baseline.superop.MemoryLimitExceeded`)
        instead of allocating past this budget — pass
        ``PAPER_MEMORY_BYTES`` to reproduce the paper's 8 GB envelope.
    """
    if isinstance(channel, QuantumCircuit):
        channel = SuperOp(channel, memory_limit_bytes=memory_limit_bytes)
    if not isinstance(channel, SuperOp):
        raise TypeError("channel must be a QuantumCircuit or SuperOp")
    d = channel.dim

    rho_channel = channel.to_choi(normalised=True)
    if target is None:
        target_matrix = np.eye(d, dtype=COMPLEX)
    elif isinstance(target, QuantumCircuit):
        target_matrix = target.to_matrix()
    elif isinstance(target, Operator):
        target_matrix = target.data
    else:
        target_matrix = np.asarray(target, dtype=COMPLEX)

    # |Phi_U> = (I (x) U)|Psi>: amplitude U[m, i]/sqrt(d) on |i m>.
    phi = np.transpose(target_matrix).reshape(d * d) / np.sqrt(d)
    value = np.real(np.conjugate(phi) @ rho_channel @ phi)
    return float(min(max(value, 0.0), 1.0))


def process_fidelity_choi(channel, target, **kwargs) -> float:
    """General mixed-Choi path (matches Qiskit for non-unitary targets)."""
    if isinstance(channel, QuantumCircuit):
        channel = SuperOp(channel, **kwargs)
    if isinstance(target, QuantumCircuit):
        target = SuperOp(target, **kwargs)
    return state_fidelity(
        channel.to_choi(normalised=True), target.to_choi(normalised=True)
    )


def average_gate_fidelity(
    channel, target=None, memory_limit_bytes: Optional[int] = None
) -> float:
    """Haar-average gate fidelity ``(d F_pro + 1) / (d + 1)``."""
    if isinstance(channel, QuantumCircuit):
        dim = 2**channel.num_qubits
    else:
        dim = channel.dim
    fpro = process_fidelity(
        channel, target, memory_limit_bytes=memory_limit_bytes
    )
    return (dim * fpro + 1.0) / (dim + 1.0)
