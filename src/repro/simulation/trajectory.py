"""Monte-Carlo trajectory simulation of noisy circuits.

The quantum-trajectory method (the simulation substrate of the paper's
related work, Li et al. [24]): evolve a pure state through the circuit,
and at every noise site sample one Kraus operator with its Born
probability ``p_i = ||K_i |psi>||^2``, renormalising afterwards.  The
ensemble average of ``|psi><psi|`` over trajectories converges to the
exact density-matrix evolution, which the test suite checks against
:func:`repro.noise.evolve_density`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..circuits import QuantumCircuit
from ..linalg import COMPLEX, embed_operator
from ..noise import instruction_kraus


@dataclass
class Trajectory:
    """One sampled run: the final pure state and the Kraus choices made."""

    state: np.ndarray
    selections: List[int] = field(default_factory=list)
    probability: float = 1.0


def run_trajectory(
    circuit: QuantumCircuit,
    initial: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> Trajectory:
    """Sample one quantum trajectory through a noisy circuit."""
    rng = rng or np.random.default_rng()
    n = circuit.num_qubits
    if initial is None:
        state = np.zeros(2**n, dtype=COMPLEX)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=COMPLEX).copy()
        norm = np.linalg.norm(state)
        if not np.isclose(norm, 1.0, atol=1e-8):
            raise ValueError("initial state must be normalised")

    selections: List[int] = []
    probability = 1.0
    for inst in circuit:
        ops = instruction_kraus(inst)
        if len(ops) == 1:
            full = embed_operator(ops[0], inst.qubits, n)
            state = full @ state
            continue
        candidates = [
            embed_operator(op, inst.qubits, n) @ state for op in ops
        ]
        weights = np.array(
            [float(np.real(np.vdot(c, c))) for c in candidates]
        )
        weights = np.maximum(weights, 0.0)
        total = weights.sum()
        if total <= 0:
            raise ValueError("state annihilated by every Kraus operator")
        weights = weights / total
        choice = int(rng.choice(len(ops), p=weights))
        selections.append(choice)
        probability *= float(weights[choice])
        state = candidates[choice] / np.linalg.norm(candidates[choice])
    return Trajectory(state=state, selections=selections,
                      probability=probability)


class TrajectorySimulator:
    """Ensemble simulation of a noisy circuit by trajectory sampling."""

    def __init__(self, shots: int = 1000, seed: Optional[int] = None):
        if shots < 1:
            raise ValueError("shots must be positive")
        self.shots = shots
        self.rng = np.random.default_rng(seed)

    def density_matrix(
        self, circuit: QuantumCircuit, initial: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Average ``|psi><psi|`` over trajectories (→ exact as shots→∞)."""
        dim = 2**circuit.num_qubits
        rho = np.zeros((dim, dim), dtype=COMPLEX)
        for _ in range(self.shots):
            traj = run_trajectory(circuit, initial=initial, rng=self.rng)
            rho += np.outer(traj.state, np.conjugate(traj.state))
        return rho / self.shots

    def sample_counts(
        self, circuit: QuantumCircuit, initial: Optional[np.ndarray] = None
    ) -> Dict[str, int]:
        """Measure all qubits at the end of each trajectory."""
        n = circuit.num_qubits
        counts: Dict[str, int] = {}
        for _ in range(self.shots):
            traj = run_trajectory(circuit, initial=initial, rng=self.rng)
            probs = np.abs(traj.state) ** 2
            probs = probs / probs.sum()
            outcome = int(self.rng.choice(len(probs), p=probs))
            key = format(outcome, f"0{n}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def expected_fidelity(
        self,
        circuit: QuantumCircuit,
        ideal: QuantumCircuit,
        initial: Optional[np.ndarray] = None,
    ) -> float:
        """Average ``|<psi_ideal|psi_traj>|^2`` over trajectories.

        For a fixed input this estimates the state fidelity between the
        noisy output ensemble and the ideal output.
        """
        n = circuit.num_qubits
        if initial is None:
            initial = np.zeros(2**n, dtype=COMPLEX)
            initial[0] = 1.0
        target = ideal.to_matrix() @ np.asarray(initial, dtype=COMPLEX)
        total = 0.0
        for _ in range(self.shots):
            traj = run_trajectory(circuit, initial=initial, rng=self.rng)
            total += float(np.abs(np.vdot(target, traj.state)) ** 2)
        return total / self.shots
