"""Monte-Carlo trajectory simulation of noisy circuits."""

from .trajectory import Trajectory, TrajectorySimulator, run_trajectory

__all__ = ["Trajectory", "TrajectorySimulator", "run_trajectory"]
