"""The standard gate zoo.

Matrices follow the big-endian convention used throughout the library:
qubit 0 is the most-significant bit of the computational-basis index, and a
multi-qubit gate's first qubit argument corresponds to the most-significant
factor of the Kronecker product.
"""

from __future__ import annotations

import math

import numpy as np

from ..linalg import COMPLEX
from .base import Gate

_SQRT2 = math.sqrt(2.0)

# --- 1-qubit constants ----------------------------------------------------

I_MATRIX = np.eye(2, dtype=COMPLEX)
X_MATRIX = np.array([[0, 1], [1, 0]], dtype=COMPLEX)
Y_MATRIX = np.array([[0, -1j], [1j, 0]], dtype=COMPLEX)
Z_MATRIX = np.array([[1, 0], [0, -1]], dtype=COMPLEX)
H_MATRIX = np.array([[1, 1], [1, -1]], dtype=COMPLEX) / _SQRT2
S_MATRIX = np.array([[1, 0], [0, 1j]], dtype=COMPLEX)
SDG_MATRIX = np.array([[1, 0], [0, -1j]], dtype=COMPLEX)
T_MATRIX = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=COMPLEX)
TDG_MATRIX = np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=COMPLEX)
SX_MATRIX = np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=COMPLEX) / 2


def i_gate() -> Gate:
    """Identity gate."""
    return Gate("id", I_MATRIX)


def x_gate() -> Gate:
    """Pauli X (NOT)."""
    return Gate("x", X_MATRIX)


def y_gate() -> Gate:
    """Pauli Y."""
    return Gate("y", Y_MATRIX)


def z_gate() -> Gate:
    """Pauli Z."""
    return Gate("z", Z_MATRIX)


def h_gate() -> Gate:
    """Hadamard."""
    return Gate("h", H_MATRIX)


def s_gate() -> Gate:
    """Phase gate S = sqrt(Z)."""
    return Gate("s", S_MATRIX)


def sdg_gate() -> Gate:
    """S dagger."""
    return Gate("sdg", SDG_MATRIX)


def t_gate() -> Gate:
    """T = fourth root of Z."""
    return Gate("t", T_MATRIX)


def tdg_gate() -> Gate:
    """T dagger."""
    return Gate("tdg", TDG_MATRIX)


def sx_gate() -> Gate:
    """Square root of X."""
    return Gate("sx", SX_MATRIX)


def rx_gate(theta: float) -> Gate:
    """Rotation about X by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("rx", np.array([[c, -1j * s], [-1j * s, c]], dtype=COMPLEX), (theta,))


def ry_gate(theta: float) -> Gate:
    """Rotation about Y by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("ry", np.array([[c, -s], [s, c]], dtype=COMPLEX), (theta,))


def rz_gate(theta: float) -> Gate:
    """Rotation about Z by ``theta``."""
    phase = np.exp(1j * theta / 2)
    return Gate(
        "rz", np.array([[1 / phase, 0], [0, phase]], dtype=COMPLEX), (theta,)
    )


def p_gate(lam: float) -> Gate:
    """Phase gate diag(1, e^{i lam})."""
    return Gate(
        "p", np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=COMPLEX), (lam,)
    )


def u_gate(theta: float, phi: float, lam: float) -> Gate:
    """Generic single-qubit gate (OpenQASM ``u3`` convention)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    mat = np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=COMPLEX,
    )
    return Gate("u", mat, (theta, phi, lam))


# --- 2-qubit gates ----------------------------------------------------------

CX_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=COMPLEX
)
CZ_MATRIX = np.diag([1, 1, 1, -1]).astype(COMPLEX)
SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=COMPLEX
)
ISWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=COMPLEX
)


def cx_gate() -> Gate:
    """Controlled-X; first qubit is the control."""
    return Gate("cx", CX_MATRIX)


def cz_gate() -> Gate:
    """Controlled-Z (symmetric)."""
    return Gate("cz", CZ_MATRIX)


def cp_gate(lam: float) -> Gate:
    """Controlled phase diag(1,1,1,e^{i lam}); used heavily by QFT."""
    return Gate("cp", np.diag([1, 1, 1, np.exp(1j * lam)]).astype(COMPLEX), (lam,))


def cs_gate() -> Gate:
    """Controlled-S, the QFT2 entangling gate from the paper's Fig. 1."""
    return Gate("cs", np.diag([1, 1, 1, 1j]).astype(COMPLEX))


def swap_gate() -> Gate:
    """SWAP."""
    return Gate("swap", SWAP_MATRIX)


def iswap_gate() -> Gate:
    """iSWAP."""
    return Gate("iswap", ISWAP_MATRIX)


def rzz_gate(theta: float) -> Gate:
    """Two-qubit ZZ rotation."""
    phase = np.exp(1j * theta / 2)
    return Gate(
        "rzz",
        np.diag([1 / phase, phase, phase, 1 / phase]).astype(COMPLEX),
        (theta,),
    )


# --- 3-qubit gates ----------------------------------------------------------


def ccx_gate() -> Gate:
    """Toffoli; first two qubits are controls."""
    mat = np.eye(8, dtype=COMPLEX)
    mat[6:, 6:] = X_MATRIX
    return Gate("ccx", mat)


def cswap_gate() -> Gate:
    """Fredkin (controlled-SWAP); first qubit is the control."""
    mat = np.eye(8, dtype=COMPLEX)
    mat[4:, 4:] = SWAP_MATRIX
    return Gate("cswap", mat)


def ccz_gate() -> Gate:
    """Doubly-controlled Z."""
    mat = np.eye(8, dtype=COMPLEX)
    mat[7, 7] = -1
    return Gate("ccz", mat)


def unitary_gate(matrix: np.ndarray, name: str = "unitary") -> Gate:
    """Wrap an arbitrary unitary matrix as a gate."""
    gate = Gate(name, matrix)
    if not gate.is_unitary():
        raise ValueError(f"matrix for gate {name!r} is not unitary")
    return gate


#: Fixed (parameter-free) gates by name, used by the QASM reader.
FIXED_GATES = {
    "id": i_gate,
    "x": x_gate,
    "y": y_gate,
    "z": z_gate,
    "h": h_gate,
    "s": s_gate,
    "sdg": sdg_gate,
    "t": t_gate,
    "tdg": tdg_gate,
    "sx": sx_gate,
    "cx": cx_gate,
    "cz": cz_gate,
    "cs": cs_gate,
    "swap": swap_gate,
    "iswap": iswap_gate,
    "ccx": ccx_gate,
    "ccz": ccz_gate,
    "cswap": cswap_gate,
}

#: Parametric gate constructors by name (arity implied by the constructor).
PARAMETRIC_GATES = {
    "rx": rx_gate,
    "ry": ry_gate,
    "rz": rz_gate,
    "p": p_gate,
    "u": u_gate,
    "cp": cp_gate,
    "rzz": rzz_gate,
}
