"""Gate objects: a named unitary with structural operations.

A :class:`Gate` is an immutable value object pairing a name (and optional
parameters) with its unitary matrix.  Circuits store gates plus the qubit
labels they act on; all structural transformations needed by the paper's
miter constructions live here:

* ``dagger()``  — Hermitian conjugate, used to build the reversed circuit U†.
* ``conjugate()`` — entry-wise complex conjugate, used by Algorithm II to
  build the primed copy U*.
* ``transpose()`` — completing the family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..linalg import COMPLEX, dagger as _dagger, is_unitary, num_qubits_of


@dataclass(frozen=True)
class Gate:
    """An immutable quantum gate.

    Parameters
    ----------
    name:
        Human-readable gate name (``"h"``, ``"cx"``, ...).  Derived gates
        get a suffix: ``"h_dg"`` for the dagger, ``"h_conj"`` for the
        conjugate.
    matrix:
        The ``2^k x 2^k`` unitary.  Stored read-only.
    params:
        Optional real parameters (rotation angles), kept for printing and
        QASM round-trips.
    """

    name: str
    matrix: np.ndarray
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        mat = np.asarray(self.matrix, dtype=COMPLEX)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise ValueError(f"gate matrix must be square, got {mat.shape}")
        num_qubits_of(mat)  # validates power-of-two dimension
        mat = mat.copy()
        mat.setflags(write=False)
        object.__setattr__(self, "matrix", mat)
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return num_qubits_of(self.matrix)

    @property
    def dim(self) -> int:
        """Hilbert-space dimension 2^k."""
        return self.matrix.shape[0]

    def is_unitary(self, atol: float = 1e-10) -> bool:
        """Whether the stored matrix is unitary (always true for std gates)."""
        return is_unitary(self.matrix, atol=atol)

    def dagger(self) -> "Gate":
        """Hermitian conjugate gate."""
        return Gate(_strip_suffix(self.name, "_dg"), _dagger(self.matrix), self.params)

    def conjugate(self) -> "Gate":
        """Entry-wise complex conjugate gate (Algorithm II primed copy)."""
        return Gate(
            _strip_suffix(self.name, "_conj"), np.conjugate(self.matrix), self.params
        )

    def transpose(self) -> "Gate":
        """Transposed gate; equals ``dagger().conjugate()``."""
        return Gate(
            _strip_suffix(self.name, "_t"), np.transpose(self.matrix), self.params
        )

    def tensor(self, other: "Gate") -> "Gate":
        """Kronecker product ``self (x) other`` as a single gate."""
        return Gate(
            f"{self.name}(x){other.name}", np.kron(self.matrix, other.matrix)
        )

    def controlled(self) -> "Gate":
        """Add one control qubit (control is the new most-significant qubit)."""
        dim = self.dim
        mat = np.eye(2 * dim, dtype=COMPLEX)
        mat[dim:, dim:] = self.matrix
        return Gate(f"c{self.name}", mat)

    def power(self, exponent: int) -> "Gate":
        """Integer matrix power of the gate."""
        return Gate(
            f"{self.name}^{exponent}", np.linalg.matrix_power(self.matrix, exponent)
        )

    def equals(self, other: "Gate", atol: float = 1e-10) -> bool:
        """Exact matrix equality within tolerance (no global-phase slack)."""
        return self.matrix.shape == other.matrix.shape and bool(
            np.allclose(self.matrix, other.matrix, atol=atol)
        )

    def is_identity(self, atol: float = 1e-10) -> bool:
        """Whether the matrix is exactly the identity (used by cancellation)."""
        return bool(np.allclose(self.matrix, np.eye(self.dim), atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"Gate({self.name}({args}), {self.num_qubits}q)"
        return f"Gate({self.name}, {self.num_qubits}q)"


def _strip_suffix(name: str, suffix: str) -> str:
    """Toggle a derived-gate suffix so dagger(dagger(g)) keeps a clean name."""
    if name.endswith(suffix):
        return name[: -len(suffix)]
    return name + suffix
