"""Dense linear-algebra substrate used by every other subpackage."""

from .matrices import (
    ATOL,
    COMPLEX,
    allclose_up_to_global_phase,
    as_matrix,
    dagger,
    embed_operator,
    is_density_matrix,
    is_hermitian,
    is_positive_semidefinite,
    is_unitary,
    kron_all,
    num_qubits_of,
    projector,
    trace_distance,
)
from .random import (
    random_density_matrix,
    random_kraus_set,
    random_statevector,
    random_unitary,
)
from .states import (
    basis_state,
    maximally_entangled_state,
    plus_state,
    purity,
    state_fidelity,
    zero_state,
)

__all__ = [
    "ATOL",
    "COMPLEX",
    "allclose_up_to_global_phase",
    "as_matrix",
    "basis_state",
    "dagger",
    "embed_operator",
    "is_density_matrix",
    "is_hermitian",
    "is_positive_semidefinite",
    "is_unitary",
    "kron_all",
    "maximally_entangled_state",
    "num_qubits_of",
    "plus_state",
    "projector",
    "purity",
    "random_density_matrix",
    "random_kraus_set",
    "random_statevector",
    "random_unitary",
    "state_fidelity",
    "trace_distance",
    "zero_state",
]
