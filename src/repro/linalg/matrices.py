"""Small dense linear-algebra helpers shared across the library.

Everything in this module operates on plain ``numpy.ndarray`` objects with
``complex128`` dtype.  These are the primitives underneath the gate zoo, the
noise channels, the dense baseline and the reference paths of the tensor
network / TDD backends.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

#: Absolute tolerance used throughout for floating-point comparisons.
ATOL = 1e-10

COMPLEX = np.complex128


def as_matrix(data, dim: int | None = None) -> np.ndarray:
    """Coerce ``data`` into a square complex matrix.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.
    dim:
        If given, the required dimension; a mismatch raises ``ValueError``.
    """
    mat = np.asarray(data, dtype=COMPLEX)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {mat.shape}")
    if dim is not None and mat.shape[0] != dim:
        raise ValueError(f"expected dimension {dim}, got {mat.shape[0]}")
    return mat


def dagger(mat: np.ndarray) -> np.ndarray:
    """Hermitian conjugate (conjugate transpose)."""
    return np.conjugate(np.transpose(mat))


def kron_all(mats: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right.

    ``kron_all([])`` returns the 1x1 identity so it composes cleanly.
    """
    result = np.eye(1, dtype=COMPLEX)
    for mat in mats:
        result = np.kron(result, mat)
    return result


def num_qubits_of(mat: np.ndarray) -> int:
    """Number of qubits an operator of this dimension acts on.

    Raises ``ValueError`` if the dimension is not a power of two.
    """
    dim = mat.shape[0]
    n = int(round(math.log2(dim)))
    if 2**n != dim:
        raise ValueError(f"dimension {dim} is not a power of two")
    return n


def is_unitary(mat: np.ndarray, atol: float = ATOL) -> bool:
    """Check ``mat @ mat† == I`` within tolerance."""
    mat = np.asarray(mat, dtype=COMPLEX)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    eye = np.eye(mat.shape[0], dtype=COMPLEX)
    return bool(np.allclose(mat @ dagger(mat), eye, atol=atol))


def is_hermitian(mat: np.ndarray, atol: float = ATOL) -> bool:
    """Check ``mat == mat†`` within tolerance."""
    return bool(np.allclose(mat, dagger(mat), atol=atol))


def is_positive_semidefinite(mat: np.ndarray, atol: float = ATOL) -> bool:
    """Check Hermitian positive semi-definiteness via eigenvalues."""
    if not is_hermitian(mat, atol=atol):
        return False
    eigs = np.linalg.eigvalsh((mat + dagger(mat)) / 2)
    return bool(np.all(eigs >= -atol))


def is_density_matrix(mat: np.ndarray, atol: float = ATOL) -> bool:
    """Check positive semi-definite with unit trace."""
    return is_positive_semidefinite(mat, atol=atol) and bool(
        abs(np.trace(mat) - 1) <= atol
    )


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """True if ``a == exp(i t) * b`` for some real ``t``.

    Used for unitary-circuit equivalence where a global phase is physically
    irrelevant.
    """
    a = np.asarray(a, dtype=COMPLEX)
    b = np.asarray(b, dtype=COMPLEX)
    if a.shape != b.shape:
        return False
    # Find the largest-magnitude entry of b to fix the phase against.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) <= atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def embed_operator(
    mat: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a k-qubit operator acting on ``qubits`` into an n-qubit space.

    Qubit 0 is the most significant bit of the computational-basis index,
    matching the big-endian convention used by :mod:`repro.circuits`.
    """
    k = num_qubits_of(mat)
    if len(qubits) != k:
        raise ValueError(f"operator acts on {k} qubits, got {len(qubits)} labels")
    if len(set(qubits)) != len(qubits):
        raise ValueError(f"duplicate qubit labels in {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise ValueError(f"qubit labels {qubits} out of range for n={num_qubits}")

    # Reshape to a rank-2n tensor, with axes (out_0..out_{n-1}, in_0..in_{n-1}).
    tensor = mat.reshape([2] * (2 * k))
    full = np.eye(2**num_qubits, dtype=COMPLEX).reshape([2] * (2 * num_qubits))
    # Contract identity's output legs on `qubits` with mat's input legs.
    in_axes = [num_qubits + q for q in qubits]  # not used directly; see einsum below
    del in_axes

    # Build via tensordot: full_out = tensor applied to identity's out axes.
    result = np.tensordot(tensor, full, axes=(list(range(k, 2 * k)), list(qubits)))
    # Axes of `result`: (mat_out_0..mat_out_{k-1}, remaining axes of full).
    # The remaining axes of full are its original axes minus `qubits`, in order.
    remaining = [ax for ax in range(2 * num_qubits) if ax not in qubits]
    perm = [0] * (2 * num_qubits)
    for i, q in enumerate(qubits):
        perm[q] = i
    for i, ax in enumerate(remaining):
        perm[ax] = k + i
    result = np.transpose(result, perm)
    return result.reshape(2**num_qubits, 2**num_qubits)


def projector(vec: np.ndarray) -> np.ndarray:
    """Outer product |v><v| of a state vector."""
    vec = np.asarray(vec, dtype=COMPLEX).reshape(-1)
    return np.outer(vec, np.conjugate(vec))


def trace_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Trace distance ``0.5 * ||rho - sigma||_1`` between density matrices."""
    diff = np.asarray(rho, dtype=COMPLEX) - np.asarray(sigma, dtype=COMPLEX)
    eigs = np.linalg.eigvalsh((diff + dagger(diff)) / 2)
    return float(0.5 * np.sum(np.abs(eigs)))
