"""Random objects: Haar unitaries, random states, random Kraus channels.

Used by the randomised-benchmarking workload, the quantum-volume generator
and the property-based tests.
"""

from __future__ import annotations

import numpy as np

from .matrices import COMPLEX, dagger


def random_unitary(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Haar-random unitary via QR decomposition of a Ginibre matrix."""
    rng = rng or np.random.default_rng()
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    # Fix the phase ambiguity of QR so the distribution is Haar.
    phases = np.diagonal(r) / np.abs(np.diagonal(r))
    return (q * phases).astype(COMPLEX)


def random_statevector(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Haar-random pure state."""
    rng = rng or np.random.default_rng()
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return (vec / np.linalg.norm(vec)).astype(COMPLEX)


def random_density_matrix(
    dim: int, rank: int | None = None, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Random density matrix from a normalised Wishart sample."""
    rng = rng or np.random.default_rng()
    rank = rank or dim
    z = rng.normal(size=(dim, rank)) + 1j * rng.normal(size=(dim, rank))
    rho = z @ dagger(z)
    return (rho / np.trace(rho)).astype(COMPLEX)


def random_kraus_set(
    dim: int, num_ops: int, rng: np.random.Generator | None = None
) -> list[np.ndarray]:
    """A random CPTP channel in Kraus form with ``num_ops`` operators.

    Built by slicing a Haar unitary on the dilated space, which guarantees
    the completeness relation ``sum_i K_i† K_i = I`` exactly (up to float
    rounding).
    """
    rng = rng or np.random.default_rng()
    big = random_unitary(dim * num_ops, rng)
    # The first block-column of the dilation unitary yields valid Kraus ops.
    kraus = [big[i * dim : (i + 1) * dim, :dim].astype(COMPLEX) for i in range(num_ops)]
    return kraus
