"""State-level helpers: basis states, fidelities, the maximally entangled state.

The density-matrix fidelity here is the one the paper builds on:

``F(rho, sigma) = (tr sqrt(sqrt(rho) sigma sqrt(rho)))^2``

and for a pure state ``psi``: ``F(psi, sigma) = <psi| sigma |psi>``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import sqrtm

from .matrices import COMPLEX, dagger, projector


def basis_state(index: int, num_qubits: int) -> np.ndarray:
    """Computational-basis state |index> on ``num_qubits`` qubits."""
    dim = 2**num_qubits
    if not 0 <= index < dim:
        raise ValueError(f"basis index {index} out of range for n={num_qubits}")
    vec = np.zeros(dim, dtype=COMPLEX)
    vec[index] = 1.0
    return vec


def zero_state(num_qubits: int) -> np.ndarray:
    """|0...0> on ``num_qubits`` qubits."""
    return basis_state(0, num_qubits)


def plus_state(num_qubits: int) -> np.ndarray:
    """|+>^n: the uniform superposition."""
    dim = 2**num_qubits
    return np.full(dim, 1 / np.sqrt(dim), dtype=COMPLEX)


def maximally_entangled_state(num_qubits: int) -> np.ndarray:
    """|Psi> = (1/sqrt d) sum_i |ii> on 2*num_qubits qubits.

    The two halves are ordered (system, copy); the Jamiolkowski isomorphism
    in :mod:`repro.core.jamiolkowski` applies the channel to the second half.
    """
    d = 2**num_qubits
    vec = np.zeros(d * d, dtype=COMPLEX)
    for i in range(d):
        vec[i * d + i] = 1.0
    return vec / np.sqrt(d)


def state_fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Fidelity between two density matrices (Nielsen–Chuang convention).

    Accepts state vectors too (they are promoted to projectors).
    """
    rho = _to_density(rho)
    sigma = _to_density(sigma)
    # Pure-state fast paths keep this numerically clean.
    if _is_pure(rho):
        vec = _principal_vector(rho)
        return float(np.real(np.conjugate(vec) @ sigma @ vec))
    if _is_pure(sigma):
        vec = _principal_vector(sigma)
        return float(np.real(np.conjugate(vec) @ rho @ vec))
    sqrt_rho = sqrtm(rho)
    inner = sqrtm(sqrt_rho @ sigma @ sqrt_rho)
    val = np.real(np.trace(inner)) ** 2
    return float(min(max(val, 0.0), 1.0 + 1e-9))


def purity(rho: np.ndarray) -> float:
    """tr(rho^2)."""
    rho = _to_density(rho)
    return float(np.real(np.trace(rho @ rho)))


def _to_density(state: np.ndarray) -> np.ndarray:
    state = np.asarray(state, dtype=COMPLEX)
    if state.ndim == 1:
        return projector(state)
    return state


def _is_pure(rho: np.ndarray) -> bool:
    return abs(np.real(np.trace(rho @ rho)) - 1.0) < 1e-9


def _principal_vector(rho: np.ndarray) -> np.ndarray:
    """Unit eigenvector of the dominant eigenvalue (the pure state)."""
    _, eigvecs = np.linalg.eigh((rho + dagger(rho)) / 2)
    return eigvecs[:, -1]
