"""The TDD contraction backend (the paper's engine of choice).

Wraps :mod:`repro.tdd` behind the :class:`ContractionBackend` protocol.
One :class:`~repro.tdd.TddManager` lives for the lifetime of the backend
instance, so its computed tables stay warm across trace terms *and*
across circuit pairs in a batch session — the Sec. IV-C optimisation
generalised from one run to one session.
"""

from __future__ import annotations

from typing import Optional, Set

from ..tdd import TddManager, contract_network_scalar, manager_for_network
from ..tensornet import ContractionStats, TensorNetwork
from .base import ContractionBackend


class TddBackend(ContractionBackend):
    """Contraction on Tensor Decision Diagrams.

    With ``share_intermediates`` (the default) one manager — and hence one
    set of computed tables — serves every contraction; switching it off
    reproduces the paper's Table II 'Ori.' column by giving each
    contraction a cold manager.
    """

    name = "tdd"

    def __init__(
        self,
        order_method: str = "tree_decomposition",
        share_intermediates: bool = True,
    ):
        super().__init__(order_method, share_intermediates)
        self._manager: Optional[TddManager] = None
        #: id(tensor) -> (tensor, Tdd); entries survive only for tensors
        #: the caller declared shareable (Algorithm I template slots).
        self._conversion_cache: dict = {}

    @property
    def manager(self) -> Optional[TddManager]:
        """The shared manager (None until the first contraction)."""
        return self._manager

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
    ) -> complex:
        order = self.order_for(network)
        if self._manager is None:
            self._manager, order = manager_for_network(
                network, self.order_method, order=order
            )
            self._order_cache[network.structure_key()] = order
        manager = self._manager
        if not self.share_intermediates:
            manager = TddManager(list(order))
        cache = None
        if self.share_intermediates and cacheable_tensor_ids is not None:
            cache = self._conversion_cache
        elif self._conversion_cache:
            # No tensor sharing this call: release the previous run's
            # template entries instead of pinning them for the session.
            self._conversion_cache.clear()
        value = contract_network_scalar(
            network, order=order, manager=manager, stats=stats,
            conversion_cache=cache,
        )
        if cache is not None:
            # Per-term tensors die with the term; only tensors shared by
            # identity with future calls may pin memory.
            for key in list(cache):
                if key not in cacheable_tensor_ids:
                    del cache[key]
        return value

    def reset(self) -> None:
        super().reset()
        self._manager = None
        self._conversion_cache.clear()
