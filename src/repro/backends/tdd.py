"""The TDD contraction backend (the paper's engine of choice).

Wraps :mod:`repro.tdd` behind the :class:`ContractionBackend` protocol and
executes the shared :class:`~repro.tensornet.planner.ContractionPlan`
step-by-step on decision diagrams: the plan's elimination order seeds the
manager's variable order, each pairwise step becomes one ``Tdd.contract``
over the step's eliminated labels, and sliced plans contract index-fixed
subnetworks whose decision diagrams are correspondingly narrower.

One :class:`~repro.tdd.TddManager` lives for the lifetime of the backend
instance, so its computed tables stay warm across trace terms *and*
across circuit pairs in a batch session — the Sec. IV-C optimisation
generalised from one run to one session.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..tdd import Tdd, TddManager, ensure_recursion_limit
from ..tensornet import ContractionStats, TensorNetwork
from ..tensornet.planner import ContractionPlan, execute_plan
from .base import ContractionBackend


class TddBackend(ContractionBackend):
    """Contraction on Tensor Decision Diagrams.

    With ``share_intermediates`` (the default) one manager — and hence one
    set of computed tables — serves every contraction; switching it off
    reproduces the paper's Table II 'Ori.' column by giving each
    contraction a cold manager.
    """

    name = "tdd"

    def __init__(
        self,
        order_method: str = "tree_decomposition",
        share_intermediates: bool = True,
        planner: str = "order",
        max_intermediate_size: Optional[int] = None,
        executor=None,
        plan_cache=None,
        device: Optional[str] = None,
        slice_batch: Optional[int] = None,
        plan_budget_seconds: Optional[float] = None,
        plan_seed: int = 0,
    ):
        if device not in (None, "cpu"):
            raise ValueError(
                f"the tdd backend runs on the host CPU only, got "
                f"device={device!r}; use 'einsum-torch'/'einsum-cupy' "
                "for accelerator devices"
            )
        # slice_batch is accepted-but-inert: decision diagrams contract
        # one index-fixed subnetwork at a time (supports_batched_slices
        # stays False), mirroring how order_method rides along unused
        # under the greedy planner.
        super().__init__(
            order_method, share_intermediates, planner,
            max_intermediate_size, executor, plan_cache,
            device, slice_batch, plan_budget_seconds, plan_seed,
        )
        self._manager: Optional[TddManager] = None
        #: id(tensor) -> (tensor, Tdd); entries survive only for tensors
        #: the caller declared shareable (Algorithm I template slots).
        self._conversion_cache: dict = {}

    @property
    def manager(self) -> Optional[TddManager]:
        """The shared manager (None until the first contraction)."""
        return self._manager

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
        plan: Optional[ContractionPlan] = None,
        assignments: Optional[Sequence[Dict[str, int]]] = None,
    ) -> complex:
        ensure_recursion_limit()
        plan = self._resolve_plan(network, stats, plan, assignments)
        dispatched = self._dispatch_slices(network, plan, stats, assignments)
        if dispatched is not None:
            return dispatched
        if self.share_intermediates:
            if self._manager is None:
                self._manager = TddManager(list(plan.order))
            self._manager.extend_order(network.all_indices())
            manager = self._manager
        else:
            # The ablation ('Ori.') mode gives every contraction a cold
            # manager ordered by *its own* plan — a shared manager's
            # accumulated order would skew node counts on later networks.
            manager = TddManager(list(plan.order))
            manager.extend_order(network.all_indices())
        # Conversion caching keys on tensor identity, which a slice
        # assignment would silently violate — sliced runs always convert.
        cache = None
        if (
            self.share_intermediates
            and cacheable_tensor_ids is not None
            and not plan.slices
        ):
            cache = self._conversion_cache
        elif self._conversion_cache:
            # No tensor sharing this call: release the previous run's
            # template entries instead of pinning them for the session.
            self._conversion_cache.clear()
        def load(operands) -> List[Tdd]:
            ops: List[Tdd] = []
            # execute_plan loads operands in network.tensors order, so
            # zip against the source tensors for identity-keyed
            # conversion caching.
            for source, operand in zip(network.tensors, operands):
                converted = None
                if cache is not None:
                    entry = cache.get(id(source))
                    if entry is not None and entry[0] is source:
                        converted = entry[1]
                if converted is None:
                    converted = manager.from_array(
                        operand.data, operand.indices
                    )
                    if cache is not None:
                        cache[id(source)] = (source, converted)
                _observe(stats, converted)
                ops.append(converted)
            return ops

        def merge(a: Tdd, b: Tdd, step) -> Tdd:
            merged = a.contract(b, step.eliminated)
            _observe(stats, merged)
            return merged

        total = execute_plan(
            plan, network, load=load, merge=merge, scalar=Tdd.scalar,
            assignments=assignments,
        )
        if cache is not None:
            # Per-term tensors die with the term; only tensors shared by
            # identity with future calls may pin memory.
            for key in list(cache):
                if key not in cacheable_tensor_ids:
                    del cache[key]
        return total

    def reset(self) -> None:
        super().reset()
        self._manager = None
        self._conversion_cache.clear()


def _observe(stats: Optional[ContractionStats], tdd: Tdd) -> None:
    """Track the peak node count (the paper's 'nodes' column)."""
    if stats is not None:
        stats.max_nodes = max(stats.max_nodes, tdd.num_nodes())
