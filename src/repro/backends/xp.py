"""The array-namespace portability layer: one contraction kernel, any array library.

The dense and einsum backends bottom out in ``einsum`` calls over ndarrays.
Nothing about those calls is numpy-specific — torch and cupy implement the
same interleaved integer-sublist ``einsum`` signature, the same advanced
indexing and the same reductions — so this module abstracts the handful of
array operations the execution path needs behind an
:class:`ArrayNamespace`, and the einsum backend becomes generic over it:
the *same* :class:`~repro.tensornet.planner.ContractionPlan` executes on
numpy arrays, torch tensors (CPU or CUDA) or cupy arrays.

Design rules:

* **Lazy imports.**  torch and cupy are optional dependencies; importing
  :mod:`repro.backends` must never import them.  :func:`namespace_available`
  probes installability without importing, :func:`resolve_namespace`
  imports on first use and raises a :class:`MissingDependencyError` with
  the ``pip install repro[torch]`` / ``repro[cupy]`` hint when absent.
* **One host↔device transfer per plan-execution boundary.**  Input tensors
  move to the device once (:meth:`ArrayNamespace.from_host`), every
  intermediate stays on-device, and only the final scalar comes back
  (:meth:`ArrayNamespace.sum_scalar`).  Slice gathering happens on-device
  via advanced indexing, so an 8192-slice contraction is still two
  transfers, not 8192.

The module also owns the **compiled-plan + batched execution kernels**
shared by the einsum and dense backends:

* :func:`compile_plan` precomputes, once per plan, the dense integer
  einsum subscripts of every step (the per-call label remap the old
  einsum backend rebuilt for every step of every slice), in both an
  unbatched and a batch-labelled variant;
* :func:`contract_slices_looped` executes one slice at a time with the
  compiled subscripts (the reference slice loop);
* :func:`contract_slices_batched` stacks a *batch* of slice assignments
  along a leading batch axis and contracts them with one einsum call per
  plan step — replacing thousands of per-slice Python-loop contractions
  with a handful of batched kernels, chunked so
  ``slice_batch × max_intermediate_size`` still bounds peak memory.
"""

from __future__ import annotations

import abc
import importlib.util
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import trace as _trace
from ..tensornet import ContractionStats
from ..tensornet.planner import BatchedSliceApplier, ContractionPlan

#: Names :func:`resolve_namespace` understands, in documentation order.
NAMESPACES = ("numpy", "torch", "cupy")

#: Element budget the automatic ``slice_batch`` sizes against: with
#: ``slice_batch=None`` a backend picks the largest batch whose
#: ``batch × peak per-slice intermediate`` stays under this many
#: elements (2M complex128 elements ≈ 32 MiB of batched intermediate).
AUTO_SLICE_BATCH_BUDGET = 1 << 21

#: pip extras installing each optional namespace (the error-message hint).
_INSTALL_HINTS = {
    "torch": "pip install repro[torch]",
    "cupy": "pip install repro[cupy]",
}


class MissingDependencyError(ImportError):
    """An optional array library is not installed.

    Subclasses :class:`ImportError` so generic import handling applies,
    and carries the human-facing install hint in its message.  Raised at
    *backend construction* (``get_backend("einsum-torch")``), never at
    :mod:`repro.backends` import time — the registry entries for optional
    backends always exist and report their unavailability truthfully.
    """


def namespace_available(name: str) -> Optional[str]:
    """Why ``name`` is unavailable, or ``None`` when it is usable.

    The probe is ``importlib.util.find_spec`` — it checks installability
    without paying the (potentially seconds-long) import, so registry
    listings stay cheap.  ``resolve_namespace`` still performs the real
    import and reports genuine import failures.
    """
    if name == "numpy":
        return None
    if name not in NAMESPACES:
        return f"unknown array namespace {name!r}"
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        spec = None
    if spec is None:
        return (
            f"optional dependency {name!r} is not installed "
            f"({_INSTALL_HINTS[name]})"
        )
    return None


class ArrayNamespace(abc.ABC):
    """The array operations the contraction kernels need, on one device.

    Operands are opaque to callers: :meth:`from_host` turns a host
    ndarray into whatever the namespace contracts (numpy ndarray, torch
    tensor, cupy array), :meth:`einsum`/advanced indexing combine them,
    and :meth:`sum_scalar` is the single device→host exit.
    """

    #: namespace name ("numpy" / "torch" / "cupy")
    name: str = ""

    def __init__(self, device: Optional[str] = None):
        self.device = self._resolve_device(device)

    @abc.abstractmethod
    def _resolve_device(self, device: Optional[str]) -> str:
        """Validate and normalise the requested device string."""

    @abc.abstractmethod
    def from_host(self, array: np.ndarray):
        """Place a host ndarray on the namespace's device (one transfer)."""

    @abc.abstractmethod
    def index_array(self, values: Sequence[int]):
        """Integer gather-index array on the device."""

    @abc.abstractmethod
    def einsum(self, *operands_and_subscripts):
        """Interleaved integer-sublist einsum (the numpy calling form)."""

    @abc.abstractmethod
    def sum_scalar(self, operand) -> complex:
        """Sum every element and return it as a host complex."""

    @staticmethod
    def size_of(operand) -> int:
        """Element count of an operand (works on ndarray/tensor alike)."""
        return int(math.prod(operand.shape)) if operand.shape else 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(device={self.device!r})"


class NumpyNamespace(ArrayNamespace):
    """The reference namespace: host numpy, no transfers."""

    name = "numpy"

    def _resolve_device(self, device: Optional[str]) -> str:
        if device not in (None, "cpu"):
            raise ValueError(
                f"the numpy namespace runs on 'cpu' only, got "
                f"device={device!r}; use backend 'einsum-torch' or "
                "'einsum-cupy' for accelerator devices"
            )
        return "cpu"

    def from_host(self, array: np.ndarray):
        return array

    def index_array(self, values: Sequence[int]):
        return np.asarray(values, dtype=np.intp)

    def einsum(self, *operands_and_subscripts):
        return np.asarray(np.einsum(*operands_and_subscripts))

    def sum_scalar(self, operand) -> complex:
        return complex(np.sum(operand))


class TorchNamespace(ArrayNamespace):
    """torch tensors on ``cpu`` (default) or any torch device string."""

    name = "torch"

    def __init__(self, device: Optional[str] = None):
        self._torch = _import_module("torch")
        super().__init__(device)

    def _resolve_device(self, device: Optional[str]) -> str:
        device = device or "cpu"
        try:
            resolved = self._torch.device(device)
        except (RuntimeError, ValueError) as exc:
            raise ValueError(
                f"torch rejected device {device!r}: {exc}"
            ) from None
        if resolved.type == "cuda" and not self._torch.cuda.is_available():
            raise ValueError(
                f"device {device!r} requested but torch reports CUDA "
                "unavailable on this host"
            )
        return str(resolved)

    def from_host(self, array: np.ndarray):
        return self._torch.as_tensor(array, device=self.device)

    def index_array(self, values: Sequence[int]):
        return self._torch.as_tensor(
            np.asarray(values, dtype=np.int64), device=self.device
        )

    def einsum(self, *operands_and_subscripts):
        return self._torch.einsum(*operands_and_subscripts)

    def sum_scalar(self, operand) -> complex:
        return complex(operand.sum().item())


class CupyNamespace(ArrayNamespace):
    """cupy arrays on the current (or an explicit ``cuda:N``) GPU."""

    name = "cupy"

    def __init__(self, device: Optional[str] = None):
        self._cupy = _import_module("cupy")
        super().__init__(device)

    def _resolve_device(self, device: Optional[str]) -> str:
        if device in (None, "cuda"):
            return "cuda"
        if device.startswith("cuda:"):
            try:
                int(device.split(":", 1)[1])
            except ValueError:
                raise ValueError(
                    f"bad cupy device {device!r}; use 'cuda' or 'cuda:N'"
                ) from None
            return device
        raise ValueError(
            f"the cupy namespace runs on CUDA devices only, got "
            f"device={device!r}"
        )

    def _device_id(self) -> int:
        return int(self.device.split(":")[1]) if ":" in self.device else (
            self._cupy.cuda.runtime.getDevice()
        )

    def from_host(self, array: np.ndarray):
        with self._cupy.cuda.Device(self._device_id()):
            return self._cupy.asarray(array)

    def index_array(self, values: Sequence[int]):
        with self._cupy.cuda.Device(self._device_id()):
            return self._cupy.asarray(np.asarray(values, dtype=np.intp))

    def einsum(self, *operands_and_subscripts):
        return self._cupy.einsum(*operands_and_subscripts)

    def sum_scalar(self, operand) -> complex:
        return complex(operand.sum().item())


def _import_module(name: str):
    """Import an optional dependency, raising the typed error when absent."""
    try:
        return __import__(name)
    except ImportError as exc:
        raise MissingDependencyError(
            f"optional dependency {name!r} is not installed "
            f"({_INSTALL_HINTS[name]}): {exc}"
        ) from exc


_NAMESPACE_CLASSES = {
    "numpy": NumpyNamespace,
    "torch": TorchNamespace,
    "cupy": CupyNamespace,
}


def resolve_namespace(
    name: str, device: Optional[str] = None
) -> ArrayNamespace:
    """An :class:`ArrayNamespace` for ``name`` placed on ``device``.

    Raises :class:`MissingDependencyError` when the library is not
    installed and ``ValueError`` for unknown names or devices the
    namespace cannot honour (e.g. ``cuda`` without a visible GPU) — so a
    misconfigured backend fails at construction with the real reason,
    never deep inside a contraction.
    """
    try:
        cls = _NAMESPACE_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown array namespace {name!r}; "
            f"choose from {list(NAMESPACES)}"
        ) from None
    return cls(device)


# --- compiled plans ---------------------------------------------------------


@dataclass(frozen=True)
class CompiledStep:
    """One plan step lowered to ready-made einsum integer subscripts.

    ``subscripts`` is the ``(lhs, rhs, out)`` sublist triple for the
    per-slice (unbatched) call; ``batched_subscripts`` is the same triple
    with the reserved batch label ``0`` prepended wherever the operand —
    or the output — varies across slices.  Both are computed once per
    plan, replacing the per-call label remap the einsum backend used to
    rebuild for every step of every slice.
    """

    lhs: int
    rhs: int
    subscripts: Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]
    batched_subscripts: Tuple[
        Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]
    ]
    out_batched: bool
    #: per-slice element count of the merged operand (the plan estimate)
    output_size: int


@dataclass(frozen=True)
class CompiledPlan:
    """A :class:`ContractionPlan` lowered for the array-API kernels."""

    steps: Tuple[CompiledStep, ...]
    #: whether each input tensor carries a sliced label (varies per slice)
    input_batched: Tuple[bool, ...]


def compile_plan(plan: ContractionPlan) -> CompiledPlan:
    """Lower a plan's steps to integer einsum subscripts, once.

    Labels are remapped to a dense integer range *per step* (so the
    global index count never hits the 52-symbol einsum alphabet), with
    ``0`` reserved for the batch axis of
    :func:`contract_slices_batched`.  Backends memoise the result by
    :meth:`ContractionPlan.digest`, so Algorithm I's thousands of
    structurally identical contractions — and all 8192 slices of a
    sliced plan — pay the lowering exactly once.
    """
    sliced = set(plan.slices)
    ops: List[Tuple[str, ...]] = [
        tuple(lab for lab in labs if lab not in sliced)
        for labs in plan.inputs
    ]
    batched: List[bool] = [
        any(lab in sliced for lab in labs) for labs in plan.inputs
    ]
    input_batched = tuple(batched)
    steps: List[CompiledStep] = []
    for step in plan.steps:
        a, b = ops[step.lhs], ops[step.rhs]
        a_batched, b_batched = batched[step.lhs], batched[step.rhs]
        mapping: Dict[str, int] = {}
        for label in a + b:
            mapping.setdefault(label, len(mapping) + 1)  # 0 = batch axis
        lhs_subs = tuple(mapping[lab] for lab in a)
        rhs_subs = tuple(mapping[lab] for lab in b)
        out_subs = tuple(mapping[lab] for lab in step.output)
        out_batched = a_batched or b_batched
        steps.append(CompiledStep(
            lhs=step.lhs,
            rhs=step.rhs,
            subscripts=(lhs_subs, rhs_subs, out_subs),
            batched_subscripts=(
                (0,) + lhs_subs if a_batched else lhs_subs,
                (0,) + rhs_subs if b_batched else rhs_subs,
                (0,) + out_subs if out_batched else out_subs,
            ),
            out_batched=out_batched,
            output_size=step.output_size,
        ))
        for seq in (ops, batched):
            del seq[step.rhs]
            del seq[step.lhs]
        ops.append(step.output)
        batched.append(out_batched)
    return CompiledPlan(steps=tuple(steps), input_batched=input_batched)


#: Process-wide compiled-plan memo, keyed by
#: :meth:`ContractionPlan.digest` — shared across backend instances and
#: warm inside worker processes.  Bounded defensively; real workloads
#: hold a handful of plans.
_COMPILED_MEMO: Dict[str, CompiledPlan] = {}
_COMPILED_MEMO_CAP = 512


def compiled_for(plan: ContractionPlan) -> CompiledPlan:
    """The lowered form of ``plan``, computed once per digest."""
    digest = plan.digest()
    compiled = _COMPILED_MEMO.get(digest)
    if compiled is None:
        if len(_COMPILED_MEMO) >= _COMPILED_MEMO_CAP:
            _COMPILED_MEMO.clear()
        with _trace.span("plan.compile") as compile_span:
            compiled = compile_plan(plan)
            compile_span.set(steps=len(compiled.steps))
        _COMPILED_MEMO[digest] = compiled
    return compiled


# --- execution kernels ------------------------------------------------------


def _observe(
    stats: Optional[ContractionStats], rank: int, size: int
) -> None:
    if stats is None:
        return
    stats.num_pairwise_contractions += 1
    stats.max_intermediate_rank = max(stats.max_intermediate_rank, rank)
    stats.max_intermediate_size = max(stats.max_intermediate_size, size)


def contract_slices_looped(
    xp: ArrayNamespace,
    plan: ContractionPlan,
    compiled: CompiledPlan,
    applier,
    assignments,
    stats: Optional[ContractionStats] = None,
) -> complex:
    """Reference slice loop over precompiled subscripts.

    ``applier`` is a :class:`~repro.tensornet.planner.SliceApplier`; each
    assignment fixes the sliced axes on the host, the operands move to
    the device, and one einsum per step contracts them.
    """
    total = 0j
    # One span for the whole loop, not one per assignment: Algorithm I
    # calls this once per trace term, thousands of times per check.
    with _trace.span("slices.loop") as loop_span:
        loop_span.set(slices=len(assignments), device=str(xp.device))
        for assignment in assignments:
            ops = [xp.from_host(t.data) for t in applier(assignment)]
            for cstep in compiled.steps:
                a, b = ops[cstep.lhs], ops[cstep.rhs]
                del ops[cstep.rhs]
                del ops[cstep.lhs]
                lhs_subs, rhs_subs, out_subs = cstep.subscripts
                merged = xp.einsum(
                    a, list(lhs_subs), b, list(rhs_subs), list(out_subs)
                )
                _observe(stats, len(out_subs), xp.size_of(merged))
                ops.append(merged)
            total += xp.sum_scalar(ops[0])
    return total


def contract_slices_batched(
    xp: ArrayNamespace,
    plan: ContractionPlan,
    compiled: CompiledPlan,
    applier: BatchedSliceApplier,
    assignments: Sequence[Dict[str, int]],
    slice_batch: int,
    stats: Optional[ContractionStats] = None,
) -> complex:
    """Contract slice assignments in batches of ``slice_batch``.

    Each batch gathers every slice-varying tensor along a leading batch
    axis (one advanced-indexing gather per tensor, on-device) and runs
    one einsum per plan step with the shared batch label — so a chunk of
    B slices costs ``len(plan.steps)`` kernels instead of
    ``B × len(plan.steps)`` Python-level contractions.  Partial sums
    accumulate in assignment order (ragged final batches included), so
    the result agrees with the looped reference to float association.

    Peak memory is ``slice_batch × max`` per-slice intermediate — the
    bound callers pick ``slice_batch`` against.
    """
    if slice_batch < 1:
        raise ValueError("slice_batch must be at least 1")
    total = 0j
    n = len(assignments)
    for start in range(0, n, slice_batch):
        chunk = assignments[start:start + slice_batch]
        with _trace.span("slices.chunk") as chunk_span:
            chunk_span.set(slices=len(chunk), device=str(xp.device))
            with _trace.span("slices.transfer"):
                ops = applier.gather(xp, chunk)
            for cstep in compiled.steps:
                a, b = ops[cstep.lhs], ops[cstep.rhs]
                del ops[cstep.rhs]
                del ops[cstep.lhs]
                lhs_subs, rhs_subs, out_subs = cstep.batched_subscripts
                merged = xp.einsum(
                    a, list(lhs_subs), b, list(rhs_subs), list(out_subs)
                )
                # Stats keep their established *per-slice* semantics (the
                # slicing bound and plan.peak_size() are per-slice figures):
                # divide the batch axis back out and drop its rank.  The
                # batch memory multiplier is visible via slice_batch and
                # batched_slice_calls.
                size = xp.size_of(merged)
                if cstep.out_batched:
                    size //= len(chunk)
                _observe(stats, len(cstep.subscripts[2]), size)
                ops.append(merged)
            value = xp.sum_scalar(ops[0])
            if compiled.steps and not compiled.steps[-1].out_batched:
                # Unreachable for circuit networks (a sliced label always
                # reaches the final merge), kept for plan generality: an
                # unbatched final operand contributes once per slice.
                value *= len(chunk)
            total += value
        if stats is not None:
            stats.batched_slice_calls += 1
    return total
