"""The pluggable contraction-backend protocol and its registry.

A :class:`ContractionBackend` turns closed tensor networks into scalar
values.  The checking algorithms (:mod:`repro.core.algorithm1`,
:mod:`repro.core.algorithm2`) are written against this protocol only, so
a new engine — sparse, sliced, multi-process, GPU — plugs in by
subclassing and calling :func:`register_backend`, with no changes to the
algorithm layer.

Planning and execution are separate layers: every backend *executes* a
shared :class:`~repro.tensornet.planner.ContractionPlan` (built once per
network structure by :meth:`ContractionBackend.plan_for` and cached), so
the same plan object — same pairwise steps, same predicted cost, same
slicing — drives the TDD, dense and einsum engines alike.

Backends are *stateful*: an instance may keep contraction plans,
decision-diagram managers or conversion caches warm across calls.  That is
how a :class:`~repro.core.session.CheckSession` amortises setup work over
many circuit pairs, and how Algorithm I amortises it over many trace
terms.
"""

from __future__ import annotations

import abc
import math
import os
import time
import warnings
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from .. import trace as _trace
from ..cache import PlanCache, open_cache
from ..tensornet import ContractionStats, TensorNetwork
from ..tensornet.ordering import ORDER_HEURISTICS
from ..tensornet.planner import PLANNERS, ContractionPlan, build_plan
from .xp import AUTO_SLICE_BATCH_BUDGET, namespace_available

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel.executors import SliceExecutor


def _coerce_plan_cache(
    plan_cache: Union[None, PlanCache, str, os.PathLike, tuple]
) -> Optional[PlanCache]:
    """Accept a ready :class:`PlanCache` or its rebuild recipe.

    The recipe forms are what travel inside :meth:`describe` specs to
    worker processes: a bare directory re-opens the standard two-tier
    cache there; a ``(directory, cache_url)`` pair additionally appends
    the remote tier (see :attr:`repro.cache.PlanCache.spec`), so a
    worker fleet shares the same cache server as its dispatcher.
    """
    if plan_cache is None or isinstance(plan_cache, PlanCache):
        return plan_cache
    if isinstance(plan_cache, (str, os.PathLike)):
        return open_cache(plan_cache).plans
    if isinstance(plan_cache, (tuple, list)) and len(plan_cache) == 2:
        directory, cache_url = plan_cache
        return open_cache(directory, cache_url=cache_url).plans
    raise TypeError(
        "plan_cache must be a PlanCache, a cache directory path, a "
        "(directory, cache_url) pair or None, "
        f"got {type(plan_cache)!r}"
    )


def validate_plan_budget_seconds(value: Optional[float]) -> None:
    """Validate a ``plan_budget_seconds`` knob (shared with CheckConfig).

    Valid values: ``None`` (use the search default) or a finite number
    of seconds >= 0 (``0`` = baseline only, no search trials).
    """
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(
            f"plan_budget_seconds must be a number of seconds >= 0 or "
            f"None (the search default), got {type(value).__name__} "
            f"{value!r}"
        )
    if not math.isfinite(value) or value < 0:
        raise ValueError(
            f"plan_budget_seconds must be a finite number of seconds "
            f">= 0 or None (the search default), got {value!r}"
        )


def validate_plan_seed(value: int) -> None:
    """Validate a ``plan_seed`` knob (shared with CheckConfig).

    Valid values: any integer >= 0 (seeds the per-trial RNG streams of
    the search planners).
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"plan_seed must be an integer >= 0, got "
            f"{type(value).__name__} {value!r}"
        )
    if value < 0:
        raise ValueError(f"plan_seed must be an integer >= 0, got {value!r}")


class ContractionBackend(abc.ABC):
    """Contracts closed tensor networks to scalars.

    Parameters
    ----------
    order_method:
        Named ordering heuristic (see
        :data:`repro.tensornet.ordering.ORDER_HEURISTICS`) behind the
        ``"order"`` planner.
    share_intermediates:
        Allow the backend to reuse internal *numeric* state — computed
        tables, dense→TDD conversion caches — across calls.  The paper's
        Table II 'Ori.' ablation runs with this off.  Plans are pure
        structure and stay cached either way.
    planner:
        Plan construction strategy: ``"order"`` (derive pairwise steps
        from the ``order_method`` elimination order), ``"greedy"``
        (cost-greedy pairwise planner), or one of the budgeted search
        planners ``"anneal"``/``"hyper"`` (randomized restarts under
        ``plan_budget_seconds``, never worse than the heuristic
        baseline).  See :data:`repro.tensornet.planner.PLANNERS`.
    plan_budget_seconds:
        Wall-clock budget for the search planners (ignored by
        ``order``/``greedy``).  ``None`` (the default) uses
        :data:`repro.planning.DEFAULT_PLAN_BUDGET_SECONDS`; ``0``
        returns the heuristic baseline without searching.
    plan_seed:
        Seed for the search planners' randomized trials (ignored by
        ``order``/``greedy``); identical seeds replay identical trial
        sequences.
    max_intermediate_size:
        When set, plans are sliced so no intermediate tensor exceeds this
        many elements (:func:`repro.tensornet.planner.slice_plan`);
        contraction becomes a sum over index-fixed subplans.
    executor:
        Optional :class:`~repro.parallel.SliceExecutor` the backend
        delegates sliced plans to — the slice-level parallelism hook.
        ``None`` (the default) runs the slice-summation loop inline.
    plan_cache:
        Optional shared :class:`~repro.cache.PlanCache` (or a cache
        directory path, which opens the standard two-tier cache there)
        consulted by :meth:`plan_for` before planning and fed after.
        ``None`` (the default) keeps planning per-instance, exactly as
        before the caching subsystem.  The ``plan_cache_hits`` /
        ``plan_cache_misses`` instance counters track how often
        :meth:`plan_for` was served without running a planner; they
        only move while a cache is attached.
    device:
        Device the backend's numerics run on (``None`` = the backend's
        default, usually ``"cpu"``).  Array-API backends resolve it
        through their namespace (``"cpu"``, ``"cuda"``, ``"cuda:1"``);
        backends whose engine is device-less (TDD) accept only the CPU.
        Validated at construction — a device the backend cannot honour
        fails immediately with the real reason.
    slice_batch:
        How many index-fixed subplans of a sliced plan to contract per
        batched kernel sweep.  ``None`` (the default) auto-sizes against
        :data:`AUTO_SLICE_BATCH_BUDGET` so ``slice_batch × peak
        intermediate`` stays memory-bounded; ``1`` forces the one-slice-
        at-a-time reference loop; explicit ``N`` pins the batch (peak
        memory scales as ``N × max_intermediate_size``).  Only array
        backends batch (see :attr:`supports_batched_slices`); the TDD
        engine contracts diagrams per slice and documents the knob as
        inert, like ``order_method`` under the greedy planner.
    """

    #: Registry name of the backend; concrete subclasses must override.
    name: ClassVar[str] = ""

    #: Whether the backend can fuse a sliced plan's subplans into batched
    #: kernels.  Engines that cannot (TDD) run the per-slice loop no
    #: matter what ``slice_batch`` says.
    supports_batched_slices: ClassVar[bool] = False

    def __init__(
        self,
        order_method: str = "tree_decomposition",
        share_intermediates: bool = True,
        planner: str = "order",
        max_intermediate_size: Optional[int] = None,
        executor: Optional["SliceExecutor"] = None,
        plan_cache: Union[None, PlanCache, str, os.PathLike] = None,
        device: Optional[str] = None,
        slice_batch: Optional[int] = None,
        plan_budget_seconds: Optional[float] = None,
        plan_seed: int = 0,
    ):
        if order_method not in ORDER_HEURISTICS:
            raise ValueError(
                f"unknown ordering method {order_method!r}; "
                f"choose from {sorted(ORDER_HEURISTICS)}"
            )
        if planner not in PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; "
                f"choose from {sorted(PLANNERS)}"
            )
        if max_intermediate_size is not None and max_intermediate_size < 1:
            raise ValueError("max_intermediate_size must be at least 1")
        if slice_batch is not None and slice_batch < 1:
            raise ValueError("slice_batch must be at least 1")
        validate_plan_budget_seconds(plan_budget_seconds)
        validate_plan_seed(plan_seed)
        self.device = device
        self.slice_batch = slice_batch
        self.order_method = order_method
        self.share_intermediates = share_intermediates
        self.planner = planner
        self.max_intermediate_size = max_intermediate_size
        self.plan_budget_seconds = plan_budget_seconds
        self.plan_seed = plan_seed
        self.executor = executor
        self.plan_cache = _coerce_plan_cache(plan_cache)
        #: plan_for calls served without running a planner (any tier:
        #: the instance's structural map, the shared memory LRU, disk).
        #: Only counted while a plan cache is attached, so uncached
        #: runs keep today's all-zero stats.
        self.plan_cache_hits = 0
        #: plan_for calls that had to run a planner despite the cache.
        self.plan_cache_misses = 0
        #: cumulative wall-clock seconds spent inside :meth:`plan_for`
        #: (cache lookups, heuristics and search trials alike) — the
        #: session turns deltas of this into ``RunStats.planning_seconds``.
        self.planning_seconds_total = 0.0
        #: cumulative search trials run by fresh plan builds; cache hits
        #: add nothing (the whole point of persisting searched plans).
        self.plan_trials_total = 0
        self._plan_cache: Dict[tuple, ContractionPlan] = {}

    @abc.abstractmethod
    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
        plan: Optional[ContractionPlan] = None,
        assignments: Optional[Sequence[Dict[str, int]]] = None,
    ) -> complex:
        """Contract a closed ``network`` to its scalar value.

        Parameters
        ----------
        network:
            A closed tensor network (no open indices).
        stats:
            Optional collector; backends fill the fields they can
            (``max_nodes`` for decision diagrams,
            ``max_intermediate_size`` for dense engines, plus the
            plan-derived ``predicted_cost``/``predicted_peak_size``/
            ``slice_count`` predictions).
        cacheable_tensor_ids:
            ``id()``\\ s of tensors that are shared *by object identity*
            with future calls (Algorithm I's template tensors).  Backends
            may cache per-tensor conversions for exactly these ids and
            must drop cached conversions of any other tensor after the
            call.  ``None`` means no cross-call tensor sharing.
        plan:
            Execute this :class:`ContractionPlan` instead of planning —
            the "plan once, execute anywhere" entry point.  Must have
            been built for a network of identical structure and shapes.
            ``None`` (the default) uses :meth:`plan_for`.
        assignments:
            Execute only these slice assignments of a sliced plan and
            return their *partial* sum (the worker-side entry point of
            :mod:`repro.parallel`).  ``None`` executes every slice.  A
            call carrying explicit assignments never re-dispatches to
            the backend's executor, and does not re-record the plan's
            predictions into ``stats``.
        """

    def plan_for(self, network: TensorNetwork) -> ContractionPlan:
        """The contraction plan for ``network``, cached per structure.

        Algorithm I contracts thousands of structurally identical
        networks; the (possibly expensive) planning pass — ordering
        heuristic, pairwise simulation, slicing — runs once per
        structure+shape and the resulting plan is replayed.

        With a :attr:`plan_cache` attached the lookup additionally
        consults the shared content-addressed cache, so the planning
        pass runs once per structure *per fleet* rather than per
        backend instance, and feeds fresh plans back for every other
        process to reuse.
        """
        started = time.perf_counter()
        try:
            key = (
                network.structure_key(),
                tuple(t.data.shape for t in network.tensors),
            )
            plan = self._plan_cache.get(key)
            if plan is not None:
                if self.plan_cache is not None:
                    self.plan_cache_hits += 1
                return plan
            if self.plan_cache is not None:
                with _trace.span("plan.cache.get") as lookup_span:
                    plan = self.plan_cache.get(
                        network,
                        planner=self.planner,
                        order_method=self.order_method,
                        max_intermediate_size=self.max_intermediate_size,
                        plan_budget_seconds=self.plan_budget_seconds,
                        plan_seed=self.plan_seed,
                    )
                    lookup_span.set(hit=plan is not None)
                if plan is not None:
                    self.plan_cache_hits += 1
                    self._plan_cache[key] = plan
                    return plan
            with _trace.span("plan.build", planner=self.planner) as build_span:
                plan = build_plan(
                    network,
                    planner=self.planner,
                    order_method=self.order_method,
                    max_intermediate_size=self.max_intermediate_size,
                    plan_budget_seconds=self.plan_budget_seconds,
                    plan_seed=self.plan_seed,
                )
                build_span.set(
                    cost=plan.total_cost(), slices=plan.num_slices()
                )
            report = getattr(plan, "search_report", None)
            if report is not None:
                self.plan_trials_total += report.trials
            self._plan_cache[key] = plan
            if self.plan_cache is not None:
                self.plan_cache_misses += 1
                with _trace.span("plan.cache.put"):
                    self.plan_cache.put(
                        network,
                        plan,
                        planner=self.planner,
                        order_method=self.order_method,
                        max_intermediate_size=self.max_intermediate_size,
                        plan_budget_seconds=self.plan_budget_seconds,
                        plan_seed=self.plan_seed,
                    )
            return plan
        finally:
            self.planning_seconds_total += time.perf_counter() - started

    def order_for(self, network: TensorNetwork) -> List[str]:
        """Index elimination order behind the cached plan.

        .. deprecated::
            Use :meth:`plan_for`; the plan carries the order plus the
            full pairwise schedule and cost model.
        """
        warnings.warn(
            "ContractionBackend.order_for is deprecated; use plan_for "
            "(the plan's .order attribute carries the elimination order)",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.plan_for(network).order)

    def _record_plan(
        self, stats: Optional[ContractionStats], plan: ContractionPlan
    ) -> None:
        """Fold the plan's predictions into a stats collector."""
        if stats is None:
            return
        stats.predicted_cost += plan.total_cost()
        stats.predicted_peak_size = max(
            stats.predicted_peak_size, plan.peak_size()
        )
        stats.slice_count = max(stats.slice_count, plan.num_slices())

    def _resolve_plan(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats],
        plan: Optional[ContractionPlan],
        assignments: Optional[Sequence[Dict[str, int]]],
    ) -> ContractionPlan:
        """Shared ``contract_scalar`` preamble: plan lookup + recording.

        Partial executions (explicit ``assignments``) skip the prediction
        recording — the dispatching call recorded the full plan already,
        and a chunk must not double-count it.
        """
        if plan is None:
            plan = self.plan_for(network)
        if assignments is None:
            self._record_plan(stats, plan)
        return plan

    def _dispatch_slices(
        self,
        network: TensorNetwork,
        plan: ContractionPlan,
        stats: Optional[ContractionStats],
        assignments: Optional[Sequence[Dict[str, int]]],
    ) -> Optional[complex]:
        """Hand a sliced plan to the backend's executor, if any.

        Returns the contracted scalar, or ``None`` when the call should
        run inline: no executor configured, nothing sliced, or the call
        *is* an executor-issued partial (explicit ``assignments``) —
        the guard that makes dispatch non-recursive.
        """
        if (
            assignments is not None
            or self.executor is None
            or not plan.slices
            or plan.num_slices() < 2
        ):
            return None
        return self.executor.contract(self, network, plan, stats)

    @property
    def resolved_device(self) -> str:
        """Device the backend actually runs on (host CPU by default).

        Array-namespace backends override this with the namespace's
        normalised device string.
        """
        return self.device or "cpu"

    def effective_slice_batch(self, plan: ContractionPlan) -> int:
        """How many slices of ``plan`` to contract per batched sweep.

        ``1`` means the per-slice reference loop: unsliced plans,
        backends without batched kernels, and an explicit
        ``slice_batch=1`` all land there.  With ``slice_batch=None``
        the batch auto-sizes so ``batch × peak intermediate`` stays
        under :data:`~repro.backends.xp.AUTO_SLICE_BATCH_BUDGET`
        elements (clamped to the slice count — batching never
        allocates past the work that exists).
        """
        if not plan.slices or not self.supports_batched_slices:
            return 1
        if self.slice_batch is not None:
            return self.slice_batch
        peak = max(1, plan.peak_size())
        return max(
            1, min(plan.num_slices(), AUTO_SLICE_BATCH_BUDGET // peak)
        )

    def reset(self) -> None:
        """Drop all cached state (plans, managers, conversions)."""
        self._plan_cache.clear()

    def describe(self) -> Dict[str, object]:
        """Lightweight description for logs and serialised results.

        Deliberately excludes ``executor``: the spec doubles as the
        picklable recipe worker processes rebuild backends from, and a
        worker-side backend must run its slices inline.  The plan cache
        travels as its rebuild recipe — the *directory* (``None`` for
        uncached or memory-only backends), or a ``(directory,
        cache_url)`` pair when a remote tier is attached — so every
        worker re-opens the shared tiers and the pool warms itself.
        """
        plan_cache = (
            None if self.plan_cache is None
            else getattr(
                self.plan_cache, "spec", self.plan_cache.directory
            )
        )
        return {
            "name": self.name,
            "order_method": self.order_method,
            "share_intermediates": self.share_intermediates,
            "planner": self.planner,
            "max_intermediate_size": self.max_intermediate_size,
            "plan_budget_seconds": self.plan_budget_seconds,
            "plan_seed": self.plan_seed,
            "plan_cache": plan_cache,
            "device": self.device,
            "slice_batch": self.slice_batch,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(order_method={self.order_method!r}, "
            f"planner={self.planner!r})"
        )


#: Factories must accept the protocol keywords ``order_method``,
#: ``share_intermediates``, ``planner``, ``max_intermediate_size``,
#: ``executor``, ``plan_cache``, ``device``, ``slice_batch``,
#: ``plan_budget_seconds`` and ``plan_seed`` (extra keywords are
#: backend-specific).
BackendFactory = Callable[..., ContractionBackend]

_REGISTRY: Dict[str, BackendFactory] = {}
#: optional-dependency module each registered backend needs (absent =
#: always available); probed without importing by :func:`backend_availability`.
_REQUIRES: Dict[str, str] = {}


def register_backend(
    name: str,
    factory: BackendFactory,
    overwrite: bool = False,
    requires: Optional[str] = None,
) -> None:
    """Register a backend factory (usually the class itself) under ``name``.

    ``requires`` names the optional array library the backend needs
    (``"torch"``, ``"cupy"``); registration always succeeds — the
    registry entry exists whether or not the library is installed, and
    :func:`backend_availability` reports the truth.  Raises
    ``ValueError`` when the name is taken, unless ``overwrite``.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[name] = factory
    if requires is None:
        _REQUIRES.pop(name, None)
    else:
        _REQUIRES[name] = requires


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)
    _REQUIRES.pop(name, None)


def registered_backends() -> List[str]:
    """Sorted names of *all* registered backends, installable or not."""
    return sorted(_REGISTRY)


def backend_availability() -> Dict[str, Optional[str]]:
    """Why each registered backend is unavailable (``None`` = usable).

    The probe is an ``importlib.util.find_spec`` check on the backend's
    optional dependency — cheap (no import), truthful (``einsum-torch``
    without torch maps to the install hint instead of raising), and the
    single source for the CLI's available/missing markers.
    """
    return {
        name: (
            namespace_available(_REQUIRES[name])
            if name in _REQUIRES
            else None
        )
        for name in sorted(_REGISTRY)
    }


def available_backends() -> List[str]:
    """Sorted names of the registered backends that can be instantiated.

    Optional-dependency backends whose library is missing are excluded —
    callers may construct every listed name without an import error.
    Use :func:`registered_backends` / :func:`backend_availability` for
    the full truth table.
    """
    return [
        name
        for name, missing in backend_availability().items()
        if missing is None
    ]


def get_backend(name: str, **options) -> ContractionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; "
            f"registered: {', '.join(registered_backends()) or '(none)'}"
        ) from None
    return factory(**options)


def resolve_backend(
    backend: Union[str, ContractionBackend], **options
) -> ContractionBackend:
    """Accept either a registry name or a ready backend instance.

    Algorithms call this on their ``backend`` argument: strings go through
    :func:`get_backend` with ``options``; instances are returned as-is
    (the caller's configuration wins).
    """
    if isinstance(backend, ContractionBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend, **options)
    raise TypeError(
        f"backend must be a registered name or a ContractionBackend "
        f"instance, got {type(backend)!r}; registered names: "
        f"{', '.join(available_backends()) or '(none)'}"
    )
