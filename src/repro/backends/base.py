"""The pluggable contraction-backend protocol and its registry.

A :class:`ContractionBackend` turns closed tensor networks into scalar
values.  The checking algorithms (:mod:`repro.core.algorithm1`,
:mod:`repro.core.algorithm2`) are written against this protocol only, so
a new engine — sparse, sliced, multi-process, GPU — plugs in by
subclassing and calling :func:`register_backend`, with no changes to the
algorithm layer.

Backends are *stateful*: an instance may keep contraction orders,
decision-diagram managers or einsum paths warm across calls.  That is how
a :class:`~repro.core.session.CheckSession` amortises setup work over many
circuit pairs, and how Algorithm I amortises it over many trace terms.
"""

from __future__ import annotations

import abc
from typing import Callable, ClassVar, Dict, List, Optional, Set, Union

from ..tensornet import ContractionStats, TensorNetwork, contraction_order
from ..tensornet.ordering import ORDER_HEURISTICS


class ContractionBackend(abc.ABC):
    """Contracts closed tensor networks to scalars.

    Parameters
    ----------
    order_method:
        Named ordering heuristic (see
        :data:`repro.tensornet.ordering.ORDER_HEURISTICS`) used to derive
        index elimination orders.
    share_intermediates:
        Allow the backend to reuse internal state — computed tables,
        dense→TDD conversion caches, einsum paths — across calls.  The
        paper's Table II 'Ori.' ablation runs with this off.
    """

    #: Registry name of the backend; concrete subclasses must override.
    name: ClassVar[str] = ""

    def __init__(
        self,
        order_method: str = "tree_decomposition",
        share_intermediates: bool = True,
    ):
        if order_method not in ORDER_HEURISTICS:
            raise ValueError(
                f"unknown ordering method {order_method!r}; "
                f"choose from {sorted(ORDER_HEURISTICS)}"
            )
        self.order_method = order_method
        self.share_intermediates = share_intermediates
        self._order_cache: Dict[tuple, List[str]] = {}

    @abc.abstractmethod
    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
    ) -> complex:
        """Contract a closed ``network`` to its scalar value.

        Parameters
        ----------
        network:
            A closed tensor network (no open indices).
        stats:
            Optional collector; backends fill the fields they can
            (``max_nodes`` for decision diagrams,
            ``max_intermediate_size`` for dense engines, …).
        cacheable_tensor_ids:
            ``id()``\\ s of tensors that are shared *by object identity*
            with future calls (Algorithm I's template tensors).  Backends
            may cache per-tensor conversions for exactly these ids and
            must drop cached conversions of any other tensor after the
            call.  ``None`` means no cross-call tensor sharing.
        """

    def order_for(self, network: TensorNetwork) -> List[str]:
        """Index elimination order, cached per network structure.

        Algorithm I contracts thousands of structurally identical
        networks; the (possibly expensive) tree-decomposition order is
        computed once per structure and reused.
        """
        key = network.structure_key()
        order = self._order_cache.get(key)
        if order is None:
            order = contraction_order(network, self.order_method)
            self._order_cache[key] = order
        return order

    def reset(self) -> None:
        """Drop all cached state (orders, managers, paths)."""
        self._order_cache.clear()

    def describe(self) -> Dict[str, object]:
        """Lightweight description for logs and serialised results."""
        return {
            "name": self.name,
            "order_method": self.order_method,
            "share_intermediates": self.share_intermediates,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order_method={self.order_method!r})"


#: Factories must accept the protocol keywords ``order_method`` and
#: ``share_intermediates`` (extra keywords are backend-specific).
BackendFactory = Callable[..., ContractionBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, overwrite: bool = False
) -> None:
    """Register a backend factory (usually the class itself) under ``name``.

    Raises ``ValueError`` when the name is taken, unless ``overwrite``.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_REGISTRY)


def get_backend(name: str, **options) -> ContractionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; "
            f"available: {', '.join(available_backends()) or '(none)'}"
        ) from None
    return factory(**options)


def resolve_backend(
    backend: Union[str, ContractionBackend], **options
) -> ContractionBackend:
    """Accept either a registry name or a ready backend instance.

    Algorithms call this on their ``backend`` argument: strings go through
    :func:`get_backend` with ``options``; instances are returned as-is
    (the caller's configuration wins).
    """
    if isinstance(backend, ContractionBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend, **options)
    raise TypeError(
        f"backend must be a name or a ContractionBackend, got {type(backend)!r}"
    )
