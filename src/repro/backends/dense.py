"""The dense ndarray contraction backend.

Pairwise ``np.tensordot`` contraction following the elimination order —
the engine of :meth:`repro.tensornet.TensorNetwork.contract`, behind the
:class:`ContractionBackend` protocol.  Memory scales with the largest
intermediate tensor, so this backend suits small/medium networks and
serves as the reference implementation for cross-backend tests.
"""

from __future__ import annotations

from typing import Optional, Set

from ..tensornet import ContractionStats, TensorNetwork
from .base import ContractionBackend


class DenseBackend(ContractionBackend):
    """Dense pairwise tensordot contraction."""

    name = "dense"

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
    ) -> complex:
        order = self.order_for(network)
        return network.contract_scalar(order=order, stats=stats)
