"""The dense ndarray contraction backend.

Pairwise ``np.tensordot`` contraction of :class:`Tensor` operands along a
shared :class:`~repro.tensornet.planner.ContractionPlan`.  Memory scales
with the largest intermediate tensor — bounded via the backend's
``max_intermediate_size`` slicing knob — and this engine serves as the
reference implementation for cross-backend tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from ..tensornet import ContractionStats, Tensor, TensorNetwork
from ..tensornet.planner import ContractionPlan, execute_plan
from .base import ContractionBackend


class DenseBackend(ContractionBackend):
    """Dense pairwise tensordot contraction along a plan."""

    name = "dense"

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
        plan: Optional[ContractionPlan] = None,
        assignments: Optional[Sequence[Dict[str, int]]] = None,
    ) -> complex:
        plan = self._resolve_plan(network, stats, plan, assignments)
        dispatched = self._dispatch_slices(network, plan, stats, assignments)
        if dispatched is not None:
            return dispatched

        def merge(a: Tensor, b: Tensor, step) -> Tensor:
            merged = a.contract(b)
            if stats is not None:
                stats.observe(merged)
            return merged

        return execute_plan(
            plan, network,
            load=list,
            merge=merge,
            scalar=Tensor.scalar,
            assignments=assignments,
        )
