"""The dense ndarray contraction backend.

Pairwise ``np.tensordot`` contraction of :class:`Tensor` operands along a
shared :class:`~repro.tensornet.planner.ContractionPlan`.  Memory scales
with the largest intermediate tensor — bounded via the backend's
``max_intermediate_size`` slicing knob — and this engine serves as the
reference implementation for cross-backend tests.

Sliced plans batch by default: slice assignments are chunked and each
chunk contracts through the shared batched einsum kernels of
:mod:`repro.backends.xp` (identical numerics, a leading batch axis).
``slice_batch=1`` restores the per-slice tensordot loop — the reference
the property tests pin the batched path against.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from ..tensornet import ContractionStats, Tensor, TensorNetwork
from ..tensornet.planner import (
    BatchedSliceApplier,
    ContractionPlan,
    execute_plan,
    iter_slice_assignments,
)
from .base import ContractionBackend
from .xp import compiled_for, contract_slices_batched, resolve_namespace


class DenseBackend(ContractionBackend):
    """Dense pairwise tensordot contraction along a plan."""

    name = "dense"
    supports_batched_slices = True

    def __init__(self, **options):
        super().__init__(**options)
        # Dense is host-numpy by construction; the namespace both
        # validates the device knob (cpu only) and powers the batched
        # sliced path.
        self.xp = resolve_namespace("numpy", self.device)

    @property
    def resolved_device(self) -> str:
        return self.xp.device

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
        plan: Optional[ContractionPlan] = None,
        assignments: Optional[Sequence[Dict[str, int]]] = None,
    ) -> complex:
        plan = self._resolve_plan(network, stats, plan, assignments)
        dispatched = self._dispatch_slices(network, plan, stats, assignments)
        if dispatched is not None:
            return dispatched
        batch = self.effective_slice_batch(plan)
        if batch > 1:
            if assignments is None:
                assignments = list(iter_slice_assignments(plan))
            else:
                assignments = list(assignments)
            if len(assignments) > 1:
                applier = BatchedSliceApplier(network.tensors, plan.slices)
                return contract_slices_batched(
                    self.xp, plan, compiled_for(plan), applier,
                    assignments, batch, stats,
                )

        def merge(a: Tensor, b: Tensor, step) -> Tensor:
            merged = a.contract(b)
            if stats is not None:
                stats.observe(merged)
            return merged

        return execute_plan(
            plan, network,
            load=list,
            merge=merge,
            scalar=Tensor.scalar,
            assignments=assignments,
        )
