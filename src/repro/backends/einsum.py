"""A third engine: contraction via ``numpy.einsum``.

Each pairwise contraction of the network is executed by ``np.einsum``
along an explicit pre-planned path.  By default the path is *derived
from the repo's own elimination-order heuristics* (tree decomposition,
following Markov–Shi): numpy's built-in ``greedy`` planner produces
catastrophically wide paths on the doubled alg2 networks (scaling ~34
vs ~10 on a 3-qubit QFT miter), and ``np.einsum_path`` itself cannot
parse expressions with more than 52 distinct indices — the per-step
execution here remaps labels per call, so network size is unbounded.
The numpy planners remain available via ``optimize="greedy"`` /
``"optimal"`` for networks small enough to parse.

Plans are cached per network structure: Algorithm I replays the same
path for every trace term, and a batch session replays it for every
structurally identical circuit pair.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..tensornet import ContractionStats, TensorNetwork
from .base import ContractionBackend

_LARGEST_INTERMEDIATE = re.compile(
    r"Largest intermediate:\s*([0-9.eE+\-]+)\s+elements"
)

#: Plan einsum paths from the backend's elimination-order heuristic.
ORDER_PLANNER = "order"

#: ``np.einsum_path`` spells int subscripts with a 52-letter alphabet, so
#: the numpy planners only parse networks up to this many distinct indices.
_NUMPY_PLANNER_MAX_INDICES = 52


class NumpyEinsumBackend(ContractionBackend):
    """Pairwise ``np.einsum`` execution along a pre-planned path.

    Parameters
    ----------
    optimize:
        Path planner: ``"order"`` (default) derives the path from the
        ``order_method`` elimination order; ``"greedy"``, ``"optimal"``
        (or anything else ``np.einsum_path`` accepts) use numpy's
        planner, falling back to ``"order"`` when the network has too
        many indices for numpy to parse.
    """

    name = "einsum"

    def __init__(
        self,
        order_method: str = "tree_decomposition",
        share_intermediates: bool = True,
        optimize: str = ORDER_PLANNER,
    ):
        super().__init__(order_method, share_intermediates)
        self.optimize = optimize
        #: structure/shape key -> (path steps, largest intermediate size)
        self._path_cache: Dict[tuple, Tuple[List[tuple], int]] = {}

    # --- planning -------------------------------------------------------------

    def _plan_from_order(
        self, network: TensorNetwork
    ) -> Tuple[List[tuple], int]:
        """Pairwise path following the elimination order.

        Simulates the dense engine's merge sequence over label sets only
        (no numerics) and records it in einsum-path step format: each
        step names positions in the current operand list; those operands
        are removed and the merged operand is appended at the end.
        """
        dims: Dict[str, int] = {}
        ops: List[Set[str]] = []
        for tensor in network.tensors:
            for label, dim in zip(tensor.indices, tensor.data.shape):
                dims[label] = dim
            ops.append(set(tensor.indices))
        steps: List[tuple] = []
        largest = 0

        def merge(i: int, j: int) -> None:
            nonlocal largest
            a, b = ops[i], ops[j]
            new = (a | b) - (a & b)
            size = 1
            for label in new:
                size *= dims[label]
            largest = max(largest, size)
            steps.append((i, j))
            del ops[j]
            del ops[i]
            ops.append(new)

        for label in self.order_for(network) + network.all_indices():
            holders = [idx for idx, labs in enumerate(ops) if label in labs]
            if len(holders) == 2:
                merge(*holders)
        while len(ops) > 1:  # outer-product disconnected components
            merge(0, 1)
        if not steps:
            steps.append((0,))
        return steps, largest

    def _plan_with_numpy(
        self, network: TensorNetwork
    ) -> Tuple[List[tuple], int]:
        """Path from ``np.einsum_path`` (small networks only)."""
        label_ids: Dict[str, int] = {}
        for label in network.all_indices():
            label_ids[label] = len(label_ids)
        args: List[object] = []
        for tensor in network.tensors:
            args.append(tensor.data)
            args.append([label_ids[i] for i in tensor.indices])
        path, info = np.einsum_path(*args, [], optimize=self.optimize)
        match = _LARGEST_INTERMEDIATE.search(info)
        largest = int(float(match.group(1))) if match else 0
        return [step for step in path if not isinstance(step, str)], largest

    def _plan(self, network: TensorNetwork) -> Tuple[List[tuple], int]:
        if (
            self.optimize == ORDER_PLANNER
            or len(network.all_indices()) > _NUMPY_PLANNER_MAX_INDICES
        ):
            return self._plan_from_order(network)
        return self._plan_with_numpy(network)

    # --- execution ------------------------------------------------------------

    @staticmethod
    def _contract_step(
        ops: List[Tuple[np.ndarray, List[str]]], positions: Sequence[int]
    ) -> None:
        """Merge the operands at ``positions`` with one ``np.einsum`` call.

        Labels are remapped to a dense 0..k range per call, so the global
        index count never hits numpy's 52-symbol alphabet.
        """
        parts = [ops[p] for p in positions]
        for p in sorted(positions, reverse=True):
            del ops[p]
        surviving: Set[str] = set()
        for _, subs in ops:
            surviving.update(subs)
        out: List[str] = []
        seen: Set[str] = set()
        for _, subs in parts:
            for label in subs:
                if label in surviving and label not in seen:
                    seen.add(label)
                    out.append(label)
        mapping: Dict[str, int] = {}
        args: List[object] = []
        for data, subs in parts:
            args.append(data)
            args.append(
                [mapping.setdefault(label, len(mapping)) for label in subs]
            )
        result = np.einsum(*args, [mapping[label] for label in out])
        ops.append((np.asarray(result), out))

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
    ) -> complex:
        network.validate()
        open_labels = network.open_indices()
        if open_labels:
            raise ValueError(
                f"network still has open indices {open_labels}; "
                "einsum backend contracts closed networks only"
            )
        shapes = tuple(t.data.shape for t in network.tensors)
        key = (network.structure_key(), shapes)
        cached = self._path_cache.get(key) if self.share_intermediates else None
        if cached is None:
            cached = self._plan(network)
            if self.share_intermediates:
                self._path_cache[key] = cached
        steps, largest = cached

        ops: List[Tuple[np.ndarray, List[str]]] = [
            (t.data, list(t.indices)) for t in network.tensors
        ]
        for step in steps:
            self._contract_step(ops, step)
        data, subs = ops[0]
        if subs:  # pragma: no cover - guarded by the open-indices check
            raise ValueError(f"contraction left open indices {subs}")
        if stats is not None:
            stats.num_pairwise_contractions += len(steps)
            stats.max_intermediate_size = max(
                stats.max_intermediate_size, largest
            )
            stats.extra.setdefault("einsum_path_steps", len(steps))
        return complex(data)

    def reset(self) -> None:
        super().reset()
        self._path_cache.clear()
