"""A third engine: contraction via ``numpy.einsum``.

Each pairwise step of the shared
:class:`~repro.tensornet.planner.ContractionPlan` is executed by one
``np.einsum`` call.  Labels are remapped to a dense ``0..k`` integer range
per call, so the global index count never hits numpy's 52-symbol subscript
alphabet and network size is unbounded.  (The backend's former private
path planner is gone — planning now lives in
:mod:`repro.tensornet.planner`, where the ``"order"`` planner derives the
path from the repo's elimination-order heuristics exactly as this backend
used to, and the ``"greedy"`` planner is shared with every other engine.)

Plans are cached per network structure by the base class: Algorithm I
replays the same plan for every trace term, and a batch session replays it
for every structurally identical circuit pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..tensornet import ContractionStats, TensorNetwork
from ..tensornet.planner import ContractionPlan, execute_plan
from .base import ContractionBackend


class NumpyEinsumBackend(ContractionBackend):
    """Pairwise ``np.einsum`` execution of a shared contraction plan."""

    name = "einsum"

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
        plan: Optional[ContractionPlan] = None,
        assignments: Optional[Sequence[Dict[str, int]]] = None,
    ) -> complex:
        plan = self._resolve_plan(network, stats, plan, assignments)
        if stats is not None:
            stats.extra.setdefault("einsum_path_steps", len(plan.steps))
        dispatched = self._dispatch_slices(network, plan, stats, assignments)
        if dispatched is not None:
            return dispatched

        def merge(a, b, step):
            mapping: Dict[str, int] = {}
            args: List[object] = []
            for data, labels in (a, b):
                args.append(data)
                args.append(
                    [mapping.setdefault(lab, len(mapping)) for lab in labels]
                )
            merged = np.asarray(
                np.einsum(*args, [mapping[lab] for lab in step.output])
            )
            if stats is not None:
                stats.num_pairwise_contractions += 1
                stats.max_intermediate_rank = max(
                    stats.max_intermediate_rank, merged.ndim
                )
                stats.max_intermediate_size = max(
                    stats.max_intermediate_size, int(merged.size)
                )
            return merged, step.output

        def scalar(operand) -> complex:
            data, labels = operand
            if labels:  # pragma: no cover - plans cover closed networks
                raise ValueError(f"contraction left open indices {labels}")
            return complex(data)

        total = execute_plan(
            plan, network,
            load=lambda tensors: [(t.data, t.indices) for t in tensors],
            merge=merge,
            scalar=scalar,
            assignments=assignments,
        )
        return total
