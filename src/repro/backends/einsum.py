"""The array-API einsum engine: one contraction kernel, any array library.

Each pairwise step of the shared
:class:`~repro.tensornet.planner.ContractionPlan` is executed by one
``einsum`` call against an :class:`~repro.backends.xp.ArrayNamespace` —
numpy by default, torch or cupy through the ``einsum-torch`` /
``einsum-cupy`` registry entries.  Subscripts are integer sublists
compiled once per plan (:func:`repro.backends.xp.compile_plan`, memoised
by plan digest), so neither the 52-symbol subscript alphabet nor
per-call label remapping costs apply.

Sliced plans run in one of two modes:

* **looped** (``slice_batch=1``): the reference loop, one subplan per
  slice assignment;
* **batched** (the default for sliced plans): assignments are chunked,
  slice-varying tensors gain a leading batch axis, and each plan step
  becomes a single batched einsum over the whole chunk — thousands of
  Python-level contractions collapse into a handful of kernels, with
  ``slice_batch × peak intermediate`` bounding memory.

The optional-dependency subclasses resolve their namespace at
*construction*: ``get_backend("einsum-torch")`` without torch raises
:class:`~repro.backends.xp.MissingDependencyError` with the install
hint, while the registry entry itself always imports and lists.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Optional, Sequence, Set

from ..tensornet import ContractionStats, TensorNetwork
from ..tensornet.planner import (
    BatchedSliceApplier,
    ContractionPlan,
    SliceApplier,
    iter_slice_assignments,
)
from .base import ContractionBackend
from .xp import (
    compiled_for,
    contract_slices_batched,
    contract_slices_looped,
    resolve_namespace,
)


class NumpyEinsumBackend(ContractionBackend):
    """Compiled-subscript einsum execution of a shared contraction plan."""

    name = "einsum"
    #: array namespace the backend contracts with; subclasses override.
    namespace: ClassVar[str] = "numpy"
    supports_batched_slices = True

    def __init__(self, **options):
        super().__init__(**options)
        # Resolves eagerly: a missing optional library or an impossible
        # device fails here, at construction, with the real reason.
        self.xp = resolve_namespace(self.namespace, self.device)

    @property
    def resolved_device(self) -> str:
        """The device the namespace actually placed the backend on."""
        return self.xp.device

    def contract_scalar(
        self,
        network: TensorNetwork,
        stats: Optional[ContractionStats] = None,
        cacheable_tensor_ids: Optional[Set[int]] = None,
        plan: Optional[ContractionPlan] = None,
        assignments: Optional[Sequence[Dict[str, int]]] = None,
    ) -> complex:
        plan = self._resolve_plan(network, stats, plan, assignments)
        if stats is not None:
            stats.extra.setdefault("einsum_path_steps", len(plan.steps))
        dispatched = self._dispatch_slices(network, plan, stats, assignments)
        if dispatched is not None:
            return dispatched
        compiled = compiled_for(plan)
        if assignments is None:
            assignments = list(iter_slice_assignments(plan))
        else:
            assignments = list(assignments)
        batch = self.effective_slice_batch(plan)
        if batch > 1 and len(assignments) > 1:
            applier = BatchedSliceApplier(network.tensors, plan.slices)
            return contract_slices_batched(
                self.xp, plan, compiled, applier, assignments, batch, stats
            )
        looped_applier = SliceApplier(network.tensors, plan.slices)
        return contract_slices_looped(
            self.xp, plan, compiled, looped_applier, assignments, stats
        )


class TorchEinsumBackend(NumpyEinsumBackend):
    """The same compiled einsum kernels on torch tensors (CPU or CUDA)."""

    name = "einsum-torch"
    namespace = "torch"


class CupyEinsumBackend(NumpyEinsumBackend):
    """The same compiled einsum kernels on cupy arrays (CUDA)."""

    name = "einsum-cupy"
    namespace = "cupy"
