"""Pluggable contraction backends.

The protocol lives in :mod:`repro.backends.base`; five engines ship
built in and pre-registered:

* ``"tdd"`` — Tensor Decision Diagrams (the paper's engine);
* ``"dense"`` — pairwise ``np.tensordot`` along the contraction plan,
  with batched sliced execution;
* ``"einsum"`` — compiled integer-subscript einsum per plan step on
  numpy, batched sliced execution by default;
* ``"einsum-torch"`` / ``"einsum-cupy"`` — the same einsum kernels on
  torch tensors (CPU or CUDA) / cupy arrays.  These registry entries
  always exist; when the optional library is missing they are excluded
  from :func:`available_backends`, reported by
  :func:`backend_availability` with the install hint, and constructing
  one raises :class:`~repro.backends.xp.MissingDependencyError` — never
  an import-time failure.

All engines execute the same
:class:`~repro.tensornet.planner.ContractionPlan`.  Register your own
with::

    from repro.backends import ContractionBackend, register_backend

    class MyBackend(ContractionBackend):
        name = "mine"
        def contract_scalar(self, network, stats=None,
                            cacheable_tensor_ids=None, plan=None):
            plan = plan or self.plan_for(network)
            ...

    register_backend("mine", MyBackend)
"""

from .base import (
    ContractionBackend,
    available_backends,
    backend_availability,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from .dense import DenseBackend
from .einsum import CupyEinsumBackend, NumpyEinsumBackend, TorchEinsumBackend
from .tdd import TddBackend
from .xp import (
    AUTO_SLICE_BATCH_BUDGET,
    NAMESPACES,
    ArrayNamespace,
    MissingDependencyError,
    namespace_available,
    resolve_namespace,
)

register_backend(TddBackend.name, TddBackend, overwrite=True)
register_backend(DenseBackend.name, DenseBackend, overwrite=True)
register_backend(NumpyEinsumBackend.name, NumpyEinsumBackend, overwrite=True)
register_backend(
    TorchEinsumBackend.name, TorchEinsumBackend,
    overwrite=True, requires="torch",
)
register_backend(
    CupyEinsumBackend.name, CupyEinsumBackend,
    overwrite=True, requires="cupy",
)

__all__ = [
    "AUTO_SLICE_BATCH_BUDGET",
    "ArrayNamespace",
    "ContractionBackend",
    "CupyEinsumBackend",
    "DenseBackend",
    "MissingDependencyError",
    "NAMESPACES",
    "NumpyEinsumBackend",
    "TddBackend",
    "TorchEinsumBackend",
    "available_backends",
    "backend_availability",
    "get_backend",
    "namespace_available",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "resolve_namespace",
    "unregister_backend",
]
