"""Pluggable contraction backends.

The protocol lives in :mod:`repro.backends.base`; three engines ship
built in and pre-registered:

* ``"tdd"`` — Tensor Decision Diagrams (the paper's engine);
* ``"dense"`` — pairwise ``np.tensordot`` along the contraction plan;
* ``"einsum"`` — one ``np.einsum`` call per plan step, labels remapped
  per call.

All three execute the same
:class:`~repro.tensornet.planner.ContractionPlan`.  Register your own
with::

    from repro.backends import ContractionBackend, register_backend

    class MyBackend(ContractionBackend):
        name = "mine"
        def contract_scalar(self, network, stats=None,
                            cacheable_tensor_ids=None, plan=None):
            plan = plan or self.plan_for(network)
            ...

    register_backend("mine", MyBackend)
"""

from .base import (
    ContractionBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from .dense import DenseBackend
from .einsum import NumpyEinsumBackend
from .tdd import TddBackend

register_backend(TddBackend.name, TddBackend, overwrite=True)
register_backend(DenseBackend.name, DenseBackend, overwrite=True)
register_backend(NumpyEinsumBackend.name, NumpyEinsumBackend, overwrite=True)

__all__ = [
    "ContractionBackend",
    "DenseBackend",
    "NumpyEinsumBackend",
    "TddBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
]
