"""The anytime search driver: budgeted restarts over one searcher.

:func:`search_plan` owns everything strategy-independent — the heuristic
baseline floor, the wall-clock budget / exact-trial-count loop, per-trial
deterministic seeding, best-so-far tracking, and the
:class:`PlanSearchReport` provenance record.  Strategies implement the
:class:`PlanSearcher` protocol: one randomized ``trial`` that returns a
candidate contraction as ``(cost, merge pairs)`` over *stable operand
ids* (see below), or ``None`` when the trial pruned itself against the
best cost so far.

Stable-id convention
--------------------
Plan steps address operands by *position* in a shrinking list (the
einsum-path convention), which is awkward to produce incrementally.
Searchers instead name operands by stable integer ids: input ``k`` is id
``k``, and every merge allocates the next id in sequence (``len(inputs)``,
``len(inputs) + 1``, ...) in the order the merges appear in the returned
pair list.  The driver converts the winning trial's id pairs into
positional :class:`~repro.tensornet.planner.ContractionStep`\\ s once, at
the end — losing trials never pay the conversion.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from .. import trace as _trace
from ..tensornet.network import TensorNetwork
from ..tensornet.planner import (
    SEARCH_PLANNERS,
    ContractionPlan,
    ContractionStep,
    _make_step,
    _plan_inputs,
    greedy_plan,
    plan_from_order,
    slice_plan,
)

#: Wall-clock budget used when a search planner is selected but neither
#: ``budget_seconds`` nor ``trials`` is given.  One second buys hundreds
#: of restarts on library-sized networks and amortises across the fleet
#: through the plan cache.
DEFAULT_PLAN_BUDGET_SECONDS = 1.0

#: Merge pairs over stable operand ids (the searcher output format).
MergePairs = List[Tuple[int, int]]

#: Trials grouped under one ``plan.search.trials`` span.  Small enough
#: that a trace shows cost progress over the budget, large enough that
#: span bookkeeping stays negligible next to the trials themselves.
TRIAL_SPAN_BATCH = 25


@dataclass(frozen=True)
class PlanSearchReport:
    """Provenance of one budgeted plan search (rides along on the plan).

    ``trajectory`` holds one ``(trial, cost)`` entry per strict
    improvement over the baseline, in discovery order; an empty
    trajectory means the heuristic baseline was never beaten and the
    returned plan *is* the baseline (re-labelled with the search
    planner's name).
    """

    planner: str
    seed: int
    budget_seconds: Optional[float]
    #: trials actually run (0 under ``budget=0``)
    trials: int
    #: which heuristic produced the anytime floor ("greedy" or "min_fill")
    baseline_planner: str
    baseline_cost: int
    best_cost: int
    #: trial index that produced the winning plan; None = baseline won
    best_trial: Optional[int]
    #: wall-clock seconds spent searching (baselines included)
    search_seconds: float
    trajectory: Tuple[Tuple[int, int], ...] = ()

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        record = asdict(self)
        record["trajectory"] = [list(point) for point in self.trajectory]
        return record


class PlanSearcher(ABC):
    """One randomized plan-search strategy (see module docstring).

    Subclasses are constructed once per search with the self-traced
    input label tuples and label dimensions, may precompute whatever
    structure they like, and must implement :meth:`trial`.
    """

    #: registry key; must appear in
    #: :data:`repro.tensornet.planner.SEARCH_PLANNERS`
    name: str = ""

    def __init__(
        self,
        inputs: Sequence[Tuple[str, ...]],
        dims: Dict[str, int],
    ):
        self.inputs: Tuple[Tuple[str, ...], ...] = tuple(inputs)
        self.dims: Dict[str, int] = dict(dims)

    @abstractmethod
    def trial(
        self, rng: np.random.Generator, best_cost: int
    ) -> Optional[Tuple[int, MergePairs]]:
        """Run one randomized trial.

        Returns ``(cost, pairs)`` — the predicted flop total and the
        merge sequence over stable ids — or ``None`` when the trial
        aborted early because its running cost already reached
        ``best_cost`` (pruning keeps hopeless restarts cheap).
        """


#: Registered searcher strategies, keyed by planner name.
SEARCHERS: Dict[str, Type[PlanSearcher]] = {}


def register_searcher(cls: Type[PlanSearcher]) -> Type[PlanSearcher]:
    """Class decorator adding a strategy to :data:`SEARCHERS`."""
    if not cls.name:
        raise ValueError(f"searcher {cls!r} must set a non-empty name")
    if cls.name not in SEARCH_PLANNERS:
        raise ValueError(
            f"searcher name {cls.name!r} is not a registered search "
            f"planner; add it to SEARCH_PLANNERS "
            f"({sorted(SEARCH_PLANNERS)})"
        )
    SEARCHERS[cls.name] = cls
    return cls


def _steps_from_pairs(
    inputs: Sequence[Tuple[str, ...]],
    dims: Dict[str, int],
    pairs: Sequence[Tuple[int, int]],
) -> List[ContractionStep]:
    """Convert stable-id merge pairs into positional plan steps."""
    ops: List[Tuple[str, ...]] = list(inputs)
    ids: List[int] = list(range(len(inputs)))
    next_id = len(inputs)
    steps: List[ContractionStep] = []
    for a, b in pairs:
        i, j = ids.index(a), ids.index(b)
        if i > j:
            i, j = j, i
        steps.append(_make_step(ops, i, j, dims))
        del ids[j]
        del ids[i]
        ids.append(next_id)
        next_id += 1
    return steps


def merge_cost(
    a: Tuple[str, ...], b: Tuple[str, ...], dims: Dict[str, int]
) -> Tuple[Tuple[str, ...], int, int]:
    """Output labels, output size and flops of merging two operands.

    The shared cost model of every searcher, kept identical to
    :func:`~repro.tensornet.planner._make_step` so trial costs compare
    exactly against baseline ``total_cost()`` values.
    """
    shared = frozenset(a) & frozenset(b)
    output = tuple(lab for lab in a if lab not in shared) + tuple(
        lab for lab in b if lab not in shared
    )
    size = 1
    for label in output:
        size *= dims[label]
    flops = size
    for label in shared:
        flops *= dims[label]
    return output, size, flops


def _baseline_plans(
    network: TensorNetwork,
) -> List[Tuple[str, ContractionPlan]]:
    """The heuristic floor every search starts from."""
    return [
        ("greedy", greedy_plan(network)),
        ("min_fill", plan_from_order(network, method="min_fill")),
    ]


def search_plan(
    network: TensorNetwork,
    planner: str,
    *,
    budget_seconds: Optional[float] = None,
    seed: int = 0,
    trials: Optional[int] = None,
    max_intermediate_size: Optional[int] = None,
    max_slices: Optional[int] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> ContractionPlan:
    """Budgeted anytime plan search (the ``anneal``/``hyper`` planners).

    Computes the greedy and min_fill baselines, then runs randomized
    trials of the named strategy until the wall-clock ``budget_seconds``
    is spent — or, when ``trials`` is given, for exactly that many
    trials regardless of the clock (the deterministic mode: identical
    ``(network, planner, seed, trials)`` inputs yield identical plans on
    any machine).  With neither given the budget defaults to
    :data:`DEFAULT_PLAN_BUDGET_SECONDS`; ``budget_seconds=0`` runs no
    trials and returns the best baseline unchanged (anytime floor).

    Trial ``t`` draws every random choice from
    ``np.random.default_rng([seed, t])``, so results are reproducible
    under a fixed seed and independent of trial scheduling.

    The returned plan carries a :class:`PlanSearchReport` in its
    ``search_report`` field and is sliced to ``max_intermediate_size``
    (after the search — searchers optimise the unsliced contraction,
    matching :func:`~repro.tensornet.planner.build_plan` semantics).
    """
    if planner not in SEARCHERS:
        raise ValueError(
            f"unknown search planner {planner!r}; choose from "
            f"{sorted(SEARCHERS)}"
        )
    if budget_seconds is not None and (
        not isinstance(budget_seconds, (int, float))
        or isinstance(budget_seconds, bool)
        or not math.isfinite(budget_seconds)
        or budget_seconds < 0
    ):
        raise ValueError(
            f"budget_seconds must be a finite number >= 0 or None, "
            f"got {budget_seconds!r}"
        )
    if trials is not None and (
        not isinstance(trials, int)
        or isinstance(trials, bool)
        or trials < 0
    ):
        raise ValueError(
            f"trials must be an integer >= 0 or None, got {trials!r}"
        )
    if trials is None and budget_seconds is None:
        budget_seconds = DEFAULT_PLAN_BUDGET_SECONDS

    with _trace.span("plan.search", planner=planner) as search_span:
        start = clock()
        baselines = _baseline_plans(network)
        base_name, base_plan = min(
            baselines,
            key=lambda pair: (
                pair[1].total_cost(), pair[1].peak_size(), pair[0]
            ),
        )
        inputs, dims = _plan_inputs(network)
        searcher = SEARCHERS[planner](inputs, dims)

        best_cost = base_plan.total_cost()
        best_pairs: Optional[MergePairs] = None
        best_trial: Optional[int] = None
        trajectory: List[Tuple[int, int]] = []
        trial = 0

        def more() -> bool:
            if trials is not None:
                return trial < trials
            return clock() - start < budget_seconds

        # ``more()`` runs exactly once per trial (the budget clock ticks
        # once per loop check, and injected test clocks rely on that);
        # the batch grouping below only decides span boundaries.
        run_more = more()
        while run_more:
            # one span per batch of trials, so a trace shows search
            # progress without a span per restart
            with _trace.span("plan.search.trials") as batch_span:
                ran = 0
                while True:
                    rng = np.random.default_rng([seed, trial])
                    outcome = searcher.trial(rng, best_cost)
                    if outcome is not None:
                        cost, pairs = outcome
                        if cost < best_cost:
                            best_cost, best_pairs, best_trial = (
                                cost, pairs, trial
                            )
                            trajectory.append((trial, cost))
                    trial += 1
                    ran += 1
                    run_more = more()
                    if not run_more or ran >= TRIAL_SPAN_BATCH:
                        break
                batch_span.set(trials=ran, best_cost=best_cost)
        search_seconds = clock() - start
        search_span.set(trials=trial, best_cost=best_cost)

    if best_pairs is None:
        plan = replace(base_plan, planner=planner)
    else:
        steps = _steps_from_pairs(inputs, dims, best_pairs)
        order: List[str] = []
        for step in steps:
            order.extend(sorted(step.eliminated))
        seen = set(order)
        remaining = [i for i in network.all_indices() if i not in seen]
        plan = ContractionPlan(
            inputs=inputs, dims=dims, steps=tuple(steps),
            order=tuple(order + remaining), planner=planner,
        )
    report = PlanSearchReport(
        planner=planner,
        seed=seed,
        budget_seconds=budget_seconds,
        trials=trial,
        baseline_planner=base_name,
        baseline_cost=base_plan.total_cost(),
        best_cost=plan.total_cost(),
        best_trial=best_trial,
        search_seconds=search_seconds,
        trajectory=tuple(trajectory),
    )
    plan = replace(plan, search_report=report)
    if max_intermediate_size is not None:
        plan = slice_plan(plan, max_intermediate_size, max_slices=max_slices)
    return plan
