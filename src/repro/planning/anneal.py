"""Annealed random-greedy restarts (``planner="anneal"``).

Each trial rebuilds a full pairwise contraction from scratch, choosing
among the *connected* candidate pairs with Boltzmann weights over a
local cost score — at temperature → 0 this reproduces the deterministic
cost-greedy planner, at higher temperatures it explores merge orders the
greedy heuristic never considers.  Temperature and the score's
input-size discount ``alpha`` are resampled per restart (the
hyper-parameter sweep rides inside the restart loop, cotengra-style).

The candidate set is maintained incrementally through a label-adjacency
map — after a merge only pairs touching the merged operand are rescored
— which keeps one trial near O(edges · steps) instead of the naive
O(n^3) rescan and buys hundreds of restarts per second on library-sized
networks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .driver import MergePairs, PlanSearcher, merge_cost, register_searcher

#: Per-restart temperature is drawn log-uniformly from this range (log10).
TEMPERATURE_LOG10_RANGE = (-2.0, 1.0)

#: Per-restart choices for the input-size discount of the local score
#: ``log2(size(out)) - alpha * (log2(size(a)) + log2(size(b)))``.
ALPHA_CHOICES = (0.0, 0.5, 1.0)


@register_searcher
class AnnealSearcher(PlanSearcher):
    """Temperature-weighted cost-greedy restarts over connected pairs."""

    name = "anneal"

    def __init__(self, inputs, dims):
        super().__init__(inputs, dims)
        self._log2dim: Dict[str, float] = {
            label: math.log2(dim) for label, dim in self.dims.items()
        }
        self._log2size: Dict[int, float] = {}

    def _score(
        self, a: Tuple[str, ...], b: Tuple[str, ...], alpha: float
    ) -> float:
        shared = frozenset(a) & frozenset(b)
        log2dim = self._log2dim
        out = sum(log2dim[lab] for lab in a + b if lab not in shared)
        if not alpha:
            return out
        size_a = sum(log2dim[lab] for lab in a)
        size_b = sum(log2dim[lab] for lab in b)
        return out - alpha * (size_a + size_b)

    def trial(
        self, rng: np.random.Generator, best_cost: int
    ) -> Optional[Tuple[int, MergePairs]]:
        low, high = TEMPERATURE_LOG10_RANGE
        temperature = 10.0 ** rng.uniform(low, high)
        alpha = float(ALPHA_CHOICES[rng.integers(len(ALPHA_CHOICES))])

        ops: Dict[int, Tuple[str, ...]] = {
            i: labs for i, labs in enumerate(self.inputs)
        }
        next_id = len(self.inputs)
        label_holders: Dict[str, Set[int]] = {}
        for i, labs in ops.items():
            for lab in set(labs):
                label_holders.setdefault(lab, set()).add(i)

        def neighbors(i: int) -> Set[int]:
            near: Set[int] = set()
            for lab in set(ops[i]):
                near |= label_holders[lab]
            near.discard(i)
            return near

        candidates: Dict[Tuple[int, int], float] = {}
        for i in ops:
            for j in neighbors(i):
                if i < j:
                    candidates[(i, j)] = self._score(ops[i], ops[j], alpha)

        pairs: MergePairs = []
        total = 0
        while candidates:
            keys = sorted(candidates)
            scores = np.array([candidates[key] for key in keys])
            weights = np.exp(-(scores - scores.min()) / temperature)
            picked = keys[
                int(rng.choice(len(keys), p=weights / weights.sum()))
            ]
            a, b = picked
            output, _, flops = merge_cost(ops[a], ops[b], self.dims)
            total += flops
            if total >= best_cost:
                return None  # prune: cannot beat the best plan so far
            pairs.append(picked)
            for key in [k for k in candidates if a in k or b in k]:
                del candidates[key]
            for lab in set(ops[a]) | set(ops[b]):
                label_holders[lab].discard(a)
                label_holders[lab].discard(b)
            del ops[a]
            del ops[b]
            merged = next_id
            next_id += 1
            ops[merged] = output
            for lab in set(output):
                label_holders.setdefault(lab, set()).add(merged)
            for other in neighbors(merged):
                key = (other, merged) if other < merged else (merged, other)
                candidates[key] = self._score(ops[key[0]], ops[key[1]], alpha)

        # outer-product any disconnected remainders, lowest ids first
        while len(ops) > 1:
            live = sorted(ops)
            a, b = live[0], live[1]
            output, _, flops = merge_cost(ops[a], ops[b], self.dims)
            total += flops
            if total >= best_cost:
                return None
            pairs.append((a, b))
            del ops[a]
            del ops[b]
            ops[next_id] = output
            next_id += 1
        return total, pairs
