"""Recursive hypergraph bisection (``planner="hyper"``).

Views the network as a graph whose vertices are tensors and whose edges
are shared index labels weighted ``log2(dim)`` (after self-tracing, a
closed network's labels join exactly two tensors, so the index
hypergraph degenerates to a weighted multigraph).  Each trial draws a
random balanced bisection, refines it with Kernighan–Lin-style locked
pair swaps (keep the best prefix of a swap pass, revert the rest), and
recurses into both halves; communities at or below ``leaf_size`` are
contracted cost-greedily and the two halves of every split are stitched
by one final merge.  The recursion tree *is* the contraction tree —
small cuts become small stitch intermediates.

Randomness enters through the initial partitions and the per-trial
``leaf_size``, so restarts explore genuinely different recursion trees;
the driver's anytime floor guarantees the result never falls below the
greedy/min_fill baseline even on networks (like shallow circuits) where
bisection has no edge to find.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .driver import MergePairs, PlanSearcher, merge_cost, register_searcher

#: Per-trial leaf community size is drawn uniformly from this range
#: (inclusive low, exclusive high).
LEAF_SIZE_RANGE = (3, 10)

#: Kernighan–Lin refinement passes per bisection.
KL_PASSES = 4


class _Pruned(Exception):
    """Raised inside a trial once its cost reaches the best so far."""


@register_searcher
class HyperSearcher(PlanSearcher):
    """Balanced min-cut bisection, leaves contracted greedily."""

    name = "hyper"

    def __init__(self, inputs, dims):
        super().__init__(inputs, dims)
        holders: Dict[str, List[int]] = {}
        for i, labs in enumerate(self.inputs):
            for lab in set(labs):
                holders.setdefault(lab, []).append(i)
        #: input-vertex adjacency: weight = sum of log2(dim) over shared
        #: labels (only two-holder labels form edges; see module docstring)
        self._adjacency: Dict[int, Dict[int, float]] = {
            i: {} for i in range(len(self.inputs))
        }
        for lab, ids in holders.items():
            if len(ids) != 2:
                continue
            a, b = ids
            weight = math.log2(self.dims[lab])
            self._adjacency[a][b] = self._adjacency[a].get(b, 0.0) + weight
            self._adjacency[b][a] = self._adjacency[b].get(a, 0.0) + weight

    # --- Kernighan–Lin bisection -----------------------------------------

    def _bisect(
        self, vertices: List[int], rng: np.random.Generator
    ) -> Tuple[List[int], List[int]]:
        """Balanced two-way split of ``vertices`` minimising cut weight."""
        verts = sorted(vertices)
        count = len(verts)
        half = count // 2
        perm = [verts[k] for k in rng.permutation(count)]
        side = {v: (0 if k < half else 1) for k, v in enumerate(perm)}
        vset = set(verts)
        adjacency = {
            v: {
                u: w for u, w in self._adjacency[v].items() if u in vset
            }
            for v in verts
        }

        def gain(v: int) -> float:
            moved = 0.0
            for u, w in adjacency[v].items():
                moved += w if side[u] != side[v] else -w
            return moved

        for _ in range(KL_PASSES):
            locked: Set[int] = set()
            moves: List[Tuple[float, int, int]] = []
            gains = {v: gain(v) for v in verts}
            cumulative = 0.0
            while True:
                zeros = [
                    v for v in verts if side[v] == 0 and v not in locked
                ]
                ones = [
                    v for v in verts if side[v] == 1 and v not in locked
                ]
                if not zeros or not ones:
                    break
                a = max(zeros, key=lambda v: (gains[v], -v))
                b = max(ones, key=lambda v: (gains[v], -v))
                cumulative += (
                    gains[a] + gains[b] - 2.0 * adjacency[a].get(b, 0.0)
                )
                side[a], side[b] = 1, 0
                locked.add(a)
                locked.add(b)
                moves.append((cumulative, a, b))
                for v in (set(adjacency[a]) | set(adjacency[b])) - locked:
                    gains[v] = gain(v)
            if not moves:
                break
            best = max(
                range(len(moves)), key=lambda k: (moves[k][0], -k)
            )
            if moves[best][0] <= 1e-12:
                for _, a, b in moves:  # no improving prefix: revert all
                    side[a], side[b] = 0, 1
                break
            for _, a, b in moves[best + 1:]:
                side[a], side[b] = 0, 1
        left = [v for v in verts if side[v] == 0]
        right = [v for v in verts if side[v] == 1]
        return left, right

    # --- contraction ------------------------------------------------------

    def trial(
        self, rng: np.random.Generator, best_cost: int
    ) -> Optional[Tuple[int, MergePairs]]:
        if not self.inputs:
            return 0, []
        low, high = LEAF_SIZE_RANGE
        leaf_size = int(rng.integers(low, high))
        ops: Dict[int, Tuple[str, ...]] = {
            i: labs for i, labs in enumerate(self.inputs)
        }
        state = {"next_id": len(self.inputs), "total": 0}
        pairs: MergePairs = []

        def merge(a: int, b: int) -> int:
            output, _, flops = merge_cost(ops[a], ops[b], self.dims)
            state["total"] += flops
            if state["total"] >= best_cost:
                raise _Pruned
            pairs.append((a, b))
            del ops[a]
            del ops[b]
            merged = state["next_id"]
            state["next_id"] += 1
            ops[merged] = output
            return merged

        def contract_leaf(ids: List[int]) -> int:
            live = sorted(ids)
            while len(live) > 1:
                best: Optional[Tuple[int, int, int]] = None
                for x in range(len(live)):
                    for y in range(x + 1, len(live)):
                        a, b = live[x], live[y]
                        shared = frozenset(ops[a]) & frozenset(ops[b])
                        if not shared:
                            continue
                        size = 1
                        for lab in ops[a] + ops[b]:
                            if lab not in shared:
                                size *= self.dims[lab]
                        if best is None or (size, a, b) < best:
                            best = (size, a, b)
                if best is None:
                    a, b = live[0], live[1]
                else:
                    _, a, b = best
                merged = merge(a, b)
                live = sorted(v for v in live if v not in (a, b))
                live.append(merged)
            return live[0]

        def contract(ids: List[int]) -> int:
            if len(ids) <= leaf_size:
                return contract_leaf(ids)
            left, right = self._bisect(ids, rng)
            if not left or not right:
                return contract_leaf(ids)
            return merge(contract(left), contract(right))

        try:
            contract(list(range(len(self.inputs))))
        except _Pruned:
            return None
        return state["total"], pairs
