"""Budgeted anytime contraction-plan search.

The planning subsystem turns extra time into cheaper contraction plans:
:func:`search_plan` runs randomized restarts of a
:class:`PlanSearcher` strategy under a strict wall-clock budget (or an
exact trial count), always seeded with the best heuristic baseline —
``budget=0`` therefore degrades to today's greedy/min_fill quality, and
any positive budget can only improve on it ("anytime" semantics).  Every
search records a :class:`PlanSearchReport` (trials, best-cost
trajectory, seed, time spent) that rides along on the returned plan and
into the plan cache, so one expensive search amortises across a fleet of
replicas.

Two strategies ship behind the one protocol:

* :class:`~repro.planning.anneal.AnnealSearcher` (``planner="anneal"``)
  — annealed random-greedy restarts: each trial rebuilds the plan with
  temperature-weighted cost-greedy pair choices, resampling temperature
  and cost model per restart;
* :class:`~repro.planning.hyper.HyperSearcher` (``planner="hyper"``) —
  recursive hypergraph bisection: Kernighan–Lin-style balanced min-cut
  over the index graph, leaf communities contracted greedily, partitions
  stitched bottom-up.

Both are registered in :data:`SEARCHERS` and reachable end-to-end
through the existing ``planner=`` knob (``CheckConfig``, backends, the
wire schema, the CLI).
"""

from .driver import (
    DEFAULT_PLAN_BUDGET_SECONDS,
    SEARCHERS,
    PlanSearcher,
    PlanSearchReport,
    register_searcher,
    search_plan,
)
from .anneal import AnnealSearcher
from .hyper import HyperSearcher

__all__ = [
    "DEFAULT_PLAN_BUDGET_SECONDS",
    "SEARCHERS",
    "PlanSearcher",
    "PlanSearchReport",
    "register_searcher",
    "search_plan",
    "AnnealSearcher",
    "HyperSearcher",
]
