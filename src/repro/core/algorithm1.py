"""Algorithm I: calculate the trace terms individually.

For every choice of one Kraus operator per noise site, contract the miter
network of ``tr(U† E_i)`` and accumulate ``|tr|^2 / d^2``.  The number of
terms is the product of per-site Kraus counts — exponential in the number
of noises — so the implementation supports:

* **early termination**: with an ``epsilon``, stop as soon as the partial
  sum certifies ``F_J > 1 - epsilon`` (every term is non-negative, so the
  partial sum is a valid lower bound);
* **dominant-first enumeration**: visit selections in decreasing product
  of Kraus Frobenius norms, so the near-identity term comes first and
  early termination fires after one contraction in the common case;
* **shared computed table**: one :class:`~repro.tdd.TddManager` serves all
  the (structurally identical) networks, maximising cache reuse across
  terms — the optimisation the paper evaluates in Table II.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from .. import trace as _trace
from ..backends import ContractionBackend, resolve_backend
from ..circuits import QuantumCircuit
from ..tensornet import ContractionStats
from .miter import alg1_template, alg1_trace_network, lower_kraus_selection
from .stats import FidelityResult, RunStats


def enumerate_selections(
    noisy: QuantumCircuit, dominant_first: bool = True
) -> Iterator[Tuple[int, ...]]:
    """Yield Kraus selections, optionally largest-norm-first per site.

    With ``dominant_first`` the per-site Kraus indices are sorted by
    decreasing Frobenius norm before taking the Cartesian product, so the
    lexicographically first selection is the dominant (near-identity) one.
    """
    per_site: List[List[int]] = []
    for inst in noisy.noise_instructions():
        ops = inst.operation.kraus_operators
        indices = list(range(len(ops)))
        if dominant_first:
            indices.sort(key=lambda j: -float(np.linalg.norm(ops[j])))
        per_site.append(indices)
    return itertools.product(*per_site)


def fidelity_individual(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    epsilon: Optional[float] = None,
    backend: Union[str, ContractionBackend] = "tdd",
    order_method: str = "tree_decomposition",
    share_computed_table: bool = True,
    use_local_optimisations: bool = False,
    dominant_first: bool = True,
    max_terms: Optional[int] = None,
    time_budget_seconds: Optional[float] = None,
    planner: str = "order",
    max_intermediate_size: Optional[int] = None,
) -> FidelityResult:
    """Jamiolkowski fidelity by individual trace terms (Algorithm I).

    Parameters
    ----------
    noisy:
        The noisy implementation (circuit with channels).
    ideal:
        The unitary specification.
    epsilon:
        When given, stop as soon as the partial sum exceeds ``1 - epsilon``
        (the result is then flagged as a lower bound unless all terms were
        computed anyway).
    backend:
        A registered backend name (``"tdd"``, ``"dense"``, ``"einsum"``,
        …) or a ready :class:`~repro.backends.ContractionBackend`
        instance, e.g. the shared engine of a
        :class:`~repro.core.session.CheckSession`.
    share_computed_table:
        Reuse one TDD manager — and hence its computed tables — across all
        trace terms.  Switch off to reproduce Table II's 'Ori.' column.
        Only consulted when ``backend`` is a name; an instance keeps its
        own ``share_intermediates`` setting.
    use_local_optimisations:
        Apply adjacent-gate cancellation and SWAP elimination to each
        miter (excluded from the paper's headline tables for baseline
        parity, but a strict win in practice).
    dominant_first:
        Enumerate Kraus selections largest-norm-first.
    max_terms:
        Hard cap on the number of terms contracted; if reached before the
        sum completes (and no early stop fired), the result is a lower
        bound.
    time_budget_seconds:
        Wall-clock budget; enumeration stops once exceeded and the result
        is flagged ``timed_out`` (used by the Table I harness's 'TO'
        rows).
    planner:
        Contraction-plan strategy (``"order"`` or ``"greedy"``; see
        :data:`repro.tensornet.planner.PLANNERS`).  Only consulted when
        ``backend`` is a name.
    max_intermediate_size:
        Slice contraction plans so no intermediate exceeds this many
        elements.  Only consulted when ``backend`` is a name.
    """
    if epsilon is not None and not 0.0 <= epsilon <= 1.0:
        raise ValueError("epsilon must lie in [0, 1]")
    engine = resolve_backend(
        backend,
        order_method=order_method,
        share_intermediates=share_computed_table,
        planner=planner,
        max_intermediate_size=max_intermediate_size,
    )
    dim = 2**ideal.num_qubits
    target = None if epsilon is None else (1.0 - epsilon) * dim * dim

    stats = RunStats(
        algorithm="alg1",
        backend=engine.name,
        device=getattr(engine, "resolved_device", None) or "cpu",
        terms_total=noisy.num_kraus_terms,
    )
    start = time.perf_counter()

    total = 0.0
    completed = True

    # Template reuse: all trace networks share every tensor except the
    # noise slots, so we build the closed network once and swap tensors
    # per term (disabled under local optimisations, which reshape the
    # network per selection).
    template = None
    template_ids: Optional[set] = None
    if not use_local_optimisations:
        template = alg1_template(noisy, ideal)
        if template is not None:
            template_ids = {id(t) for t in template.network.tensors}

    # One aggregate span for the whole term loop — per-term spans would
    # add thousands of records and real overhead to exactly the loop
    # this tracer exists to keep honest.
    with _trace.span(
        "alg1.terms", terms_total=stats.terms_total
    ) as terms_span:
        for selection in enumerate_selections(
            noisy, dominant_first=dominant_first
        ):
            if max_terms is not None and stats.terms_computed >= max_terms:
                completed = False
                break
            if (
                time_budget_seconds is not None
                and time.perf_counter() - start > time_budget_seconds
            ):
                stats.timed_out = True
                completed = False
                break
            term_start = time.perf_counter()
            if template is not None:
                network = template.instantiate(selection)
            else:
                lowered = lower_kraus_selection(noisy, selection)
                network = alg1_trace_network(
                    lowered, ideal,
                    use_local_optimisations=use_local_optimisations,
                )
            cstats = ContractionStats()
            trace = engine.contract_scalar(
                network, stats=cstats, cacheable_tensor_ids=template_ids
            )
            stats.max_nodes = max(stats.max_nodes, cstats.max_nodes)
            stats.max_intermediate_size = max(
                stats.max_intermediate_size, cstats.max_intermediate_size
            )
            stats.predicted_cost += cstats.predicted_cost
            stats.predicted_peak_size = max(
                stats.predicted_peak_size, cstats.predicted_peak_size
            )
            stats.slice_count = max(stats.slice_count, cstats.slice_count)
            stats.batched_slice_calls += cstats.batched_slice_calls
            total += abs(trace) ** 2
            stats.terms_computed += 1
            stats.term_times.append(time.perf_counter() - term_start)
            if target is not None and total > target:
                stats.early_stopped = True
                completed = stats.terms_computed == stats.terms_total
                break
        terms_span.set(
            terms_computed=stats.terms_computed,
            early_stopped=stats.early_stopped,
        )

    stats.time_seconds = time.perf_counter() - start
    fidelity = min(total / (dim * dim), 1.0)
    return FidelityResult(
        fidelity=fidelity,
        is_lower_bound=not completed or (
            stats.early_stopped and stats.terms_computed < stats.terms_total
        ),
        stats=stats,
    )
