"""Jamiolkowski fidelity: definitions and dense reference paths.

``F_J(E, U) = F(rho_E, rho_U) = (1/d^2) sum_i |tr(U† E_i)|^2``

The dense routines here are the ground truth used by the test suite and
the worked paper examples; the scalable computations live in
:mod:`repro.core.algorithm1` and :mod:`repro.core.algorithm2`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..circuits import QuantumCircuit
from ..linalg import COMPLEX, dagger, state_fidelity
from ..noise import KrausChannel, circuit_kraus_operators


def fidelity_from_traces(traces: Iterable[complex], dim: int) -> float:
    """``(1/d^2) sum_i |t_i|^2`` for precomputed traces ``t_i = tr(U† E_i)``."""
    total = sum(abs(t) ** 2 for t in traces)
    return float(total / dim**2)


def jamiolkowski_fidelity_kraus(
    kraus_operators: Sequence[np.ndarray], unitary: np.ndarray
) -> float:
    """Fidelity of a channel (as Kraus operators) against a unitary."""
    unitary = np.asarray(unitary, dtype=COMPLEX)
    dim = unitary.shape[0]
    udg = dagger(unitary)
    return fidelity_from_traces(
        (np.trace(udg @ np.asarray(op, dtype=COMPLEX)) for op in kraus_operators),
        dim,
    )


def jamiolkowski_fidelity_choi(
    channel: KrausChannel, unitary: np.ndarray
) -> float:
    """Fidelity via the Choi states ``F(rho_E, rho_U)`` (definitional path).

    Exponentially expensive; used to validate the trace formula.
    """
    unitary_channel = KrausChannel([np.asarray(unitary, dtype=COMPLEX)],
                                   "u", validate=False)
    return state_fidelity(channel.choi_matrix(), unitary_channel.choi_matrix())


def jamiolkowski_fidelity_dense(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    max_terms: int | None = 4096,
) -> float:
    """Dense reference fidelity between a noisy circuit and an ideal one.

    Enumerates the global Kraus operators of ``noisy`` (bounded by
    ``max_terms``) and applies the trace formula.
    """
    unitary = ideal.to_matrix()
    operators = circuit_kraus_operators(noisy, max_terms=max_terms)
    return jamiolkowski_fidelity_kraus(operators, unitary)


def jamiolkowski_fidelity_circuits(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
) -> float:
    """Definition 1 in full generality: F_J between two *noisy* circuits.

    Computes ``F(rho_E1, rho_E2)`` via dense Choi states — exponential,
    meant for small widths (the scalable algorithms cover the
    noisy-vs-unitary case the paper evaluates).
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise ValueError("circuits must have the same width")
    chan_a = KrausChannel(
        circuit_kraus_operators(circuit_a), "a", validate=False
    )
    chan_b = KrausChannel(
        circuit_kraus_operators(circuit_b), "b", validate=False
    )
    return state_fidelity(chan_a.choi_matrix(), chan_b.choi_matrix())


def average_fidelity_from_jamiolkowski(fidelity_j: float, dim: int) -> float:
    """Haar-average output fidelity ``(d F_J + 1) / (d + 1)``.

    This is the physical interpretation the paper gives: the expected
    fidelity between ``E(psi)`` and ``U|psi>`` over random pure inputs.
    """
    return (dim * fidelity_j + 1.0) / (dim + 1.0)


def jamiolkowski_distance(fidelity_j: float) -> float:
    """The metric ``C_J = sqrt(1 - F_J)`` with the chaining property."""
    return math.sqrt(max(0.0, 1.0 - fidelity_j))
