"""Miter constructions for trace computation.

The reversible-miter idea (Yamashita & Markov) specialised to the paper's
two algorithms:

* Algorithm I contracts the miter ``U† E_i`` for every Kraus selection
  ``E_i``; :func:`lower_kraus_selection` materialises one selection as a
  plain matrix-gate circuit and :func:`miter_circuit` appends the reversed
  ideal circuit.
* Algorithm II contracts a single *doubled* miter where each unitary ``V``
  is accompanied by ``V*`` on a primed qubit copy and each noise ``N``
  becomes its matrix representation ``M_N = sum_k N_k (x) N_k*`` spanning
  both copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..circuits import QuantumCircuit, cancel_adjacent_gates, eliminate_final_swaps
from ..gates import Gate
from ..tensornet import TensorNetwork, circuit_to_network, close_trace


def lower_kraus_selection(
    circuit: QuantumCircuit, selection: Sequence[int]
) -> QuantumCircuit:
    """Replace each noise channel with one of its Kraus operators.

    ``selection[k]`` picks the Kraus operator of the k-th noise site (in
    circuit order).  The result contains only matrix gates, so it can be
    converted to a tensor network directly.
    """
    sites = [i for i, inst in enumerate(circuit) if inst.is_noise]
    if len(selection) != len(sites):
        raise ValueError(
            f"selection length {len(selection)} != {len(sites)} noise sites"
        )
    lowered = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_sel")
    site = 0
    for inst in circuit:
        if inst.is_noise:
            ops = inst.operation.kraus_operators
            j = selection[site]
            if not 0 <= j < len(ops):
                raise ValueError(
                    f"Kraus index {j} out of range at site {site} "
                    f"({len(ops)} operators)"
                )
            lowered.append(Gate(f"kraus{site}.{j}", ops[j]), inst.qubits)
            site += 1
        else:
            lowered.append(inst.operation, inst.qubits)
    return lowered


def miter_circuit(
    noisy: QuantumCircuit, ideal: QuantumCircuit
) -> QuantumCircuit:
    """The circuit ``U† . E`` whose trace Algorithm I needs.

    ``noisy`` may contain channels (they survive into the miter); ``ideal``
    must be unitary.
    """
    if ideal.num_qubits != noisy.num_qubits:
        raise ValueError("ideal and noisy circuits must have the same width")
    return noisy.compose(ideal.inverse())


def double_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Algorithm II's doubled circuit on ``2n`` qubits.

    Qubit ``q`` keeps its label; its primed copy is ``q + n``.  Unitary
    gates get a conjugated twin on the primed copy; each noise channel
    ``N`` is replaced by the (generally non-unitary) gate ``M_N`` acting on
    the original qubits followed by their primed copies.
    """
    n = circuit.num_qubits
    doubled = QuantumCircuit(2 * n, f"{circuit.name}_doubled")
    for inst in circuit:
        primed = [q + n for q in inst.qubits]
        if inst.is_noise:
            channel = inst.operation
            doubled.append(
                Gate(f"M[{channel.name}]", channel.matrix_rep()),
                list(inst.qubits) + primed,
            )
        else:
            gate = inst.operation
            doubled.append(gate, inst.qubits)
            doubled.append(gate.conjugate(), primed)
    return doubled


def alg1_trace_network(
    noisy_selected: QuantumCircuit,
    ideal: QuantumCircuit,
    use_local_optimisations: bool = False,
) -> TensorNetwork:
    """Closed network whose scalar is ``tr(U† E_i)``.

    With ``use_local_optimisations`` the miter is first simplified by
    adjacent-gate cancellation and trailing-SWAP elimination (Sec. IV-C);
    the SWAP permutation is folded into the trace closure.
    """
    miter = miter_circuit(noisy_selected, ideal)
    permutation = None
    if use_local_optimisations:
        miter, permutation = eliminate_final_swaps(miter)
        miter = cancel_adjacent_gates(miter)
    return close_trace(circuit_to_network(miter), permutation=permutation)


@dataclass
class Alg1Template:
    """Reusable miter network for Algorithm I.

    All trace-term networks of Algorithm I share every tensor except the
    one at each noise site.  The template holds the closed network built
    from the first Kraus selection together with the tensor slot of every
    noise site, so each further term only swaps ``k`` small tensors
    instead of rebuilding the whole network — the structure-reuse idea the
    paper borrows from Li et al. [24].
    """

    network: TensorNetwork
    #: tensor index in ``network.tensors`` for each noise site
    site_slots: List[int]
    #: Kraus operator list per noise site
    site_kraus: List[List]

    def instantiate(self, selection: Sequence[int]) -> TensorNetwork:
        """The trace network for one Kraus selection.

        Unchanged tensors are shared by object identity with the template
        (enabling TDD conversion caching); only noise-site tensors are
        fresh.
        """
        from ..tensornet import gate_tensor

        tensors = list(self.network.tensors)
        for site, j in enumerate(selection):
            slot = self.site_slots[site]
            old = tensors[slot]
            op = self.site_kraus[site][j]
            half = old.rank // 2
            tensors[slot] = gate_tensor(
                op, old.indices[:half], old.indices[half:]
            )
        return TensorNetwork(tensors)


def alg1_template(
    noisy: QuantumCircuit, ideal: QuantumCircuit
) -> Optional[Alg1Template]:
    """Build the shared Algorithm I network template.

    Returns None when the template construction is unsafe — currently
    only when the trace closure traced a noise tensor onto itself (a
    noise on an otherwise untouched wire), in which case Algorithm I
    falls back to per-term network construction.
    """
    sites = noisy.noise_instructions()
    lowered = lower_kraus_selection(noisy, tuple(0 for _ in sites))
    miter = miter_circuit(lowered, ideal)
    closed = close_trace(circuit_to_network(miter))
    # close_trace preserves tensor order = instruction order (identity
    # patches for untouched wires are appended at the end).
    slots = [i for i, inst in enumerate(noisy) if inst.is_noise]
    kraus = [inst.operation.kraus_operators for inst in sites]
    for slot, ops in zip(slots, kraus):
        expected_rank = 2 * int(np.log2(ops[0].shape[0]) + 0.5)
        if closed.tensors[slot].rank != expected_rank:
            return None
    return Alg1Template(closed, slots, kraus)


def alg2_trace_network(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    use_local_optimisations: bool = False,
) -> TensorNetwork:
    """Closed doubled network whose scalar is ``sum_i |tr(U† E_i)|^2``.

    This is ``tr((U† (x) U^T) M_E)`` contracted as one network of width
    ``2n``.
    """
    if ideal.num_qubits != noisy.num_qubits:
        raise ValueError("ideal and noisy circuits must have the same width")
    doubled_miter = double_circuit(noisy).compose(double_circuit(ideal.inverse()))
    permutation = None
    if use_local_optimisations:
        doubled_miter, permutation = eliminate_final_swaps(doubled_miter)
        doubled_miter = cancel_adjacent_gates(doubled_miter)
    return close_trace(circuit_to_network(doubled_miter), permutation=permutation)


def algorithm_network(
    noisy: QuantumCircuit, ideal: QuantumCircuit, algorithm: str
) -> TensorNetwork:
    """The network the chosen algorithm contracts.

    ``"alg2"`` gives the doubled network of the single collective
    contraction; ``"alg1"`` gives one representative trace-term network
    (the all-zeros Kraus selection — every term shares its structure, so
    one term stands for planning/reporting purposes).  Shared by the CLI
    ``plan`` command and the backends micro-benchmark.
    """
    if algorithm == "alg1":
        selection = tuple(0 for _ in noisy.noise_instructions())
        return alg1_trace_network(lower_kraus_selection(noisy, selection), ideal)
    if algorithm == "alg2":
        return alg2_trace_network(noisy, ideal)
    raise ValueError(f"unknown algorithm {algorithm!r}; choose alg1 or alg2")
