"""Exact equivalence checking of noiseless circuits.

The classical (pre-noise) problem the paper's related work addresses
[9-14]: are two unitary circuits equal up to a global phase?  With the
machinery already here this is one miter contraction: for n-qubit
unitaries ``|tr(U† V)| = 2^n`` iff ``V = e^{i t} U`` (Cauchy–Schwarz with
equality iff ``U† V`` is a scalar multiple of the identity).

The same trace also yields the *process fidelity between two unitaries*,
``F = |tr(U† V)|^2 / d^2`` — the noiseless specialisation of the
Jamiolkowski fidelity — so near-misses are quantified, not just
rejected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..circuits import QuantumCircuit, cancel_adjacent_gates, eliminate_final_swaps
from ..tdd import contract_network_scalar, manager_for_network
from ..tensornet import ContractionStats, circuit_to_network, close_trace
from .stats import RunStats


@dataclass
class UnitaryCheckResult:
    """Outcome of an exact unitary-equivalence check."""

    equivalent: bool
    #: |tr(U† V)| / d in [0, 1]; equals 1 iff equivalent up to phase.
    trace_ratio: float
    #: process fidelity |tr(U† V)|^2 / d^2 between the two unitaries
    fidelity: float
    stats: RunStats = field(default_factory=RunStats)


def check_unitary_equivalence(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    atol: float = 1e-9,
    use_local_optimisations: bool = True,
    order_method: str = "tree_decomposition",
) -> UnitaryCheckResult:
    """Decide whether two noiseless circuits implement the same unitary.

    Builds the reversible miter ``B† A``, closes the trace, contracts it
    with the TDD backend and tests ``|tr| == d``.  Local optimisations
    (gate cancellation across the miter seam, trailing-SWAP elimination)
    are on by default — for equal circuits the miter typically cancels to
    nothing before any contraction happens.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise ValueError("circuits must have the same number of qubits")
    if not (circuit_a.is_unitary_circuit and circuit_b.is_unitary_circuit):
        raise ValueError(
            "exact checking needs noiseless circuits; use "
            "EquivalenceChecker for noisy ones"
        )
    stats = RunStats(algorithm="unitary_miter")
    start = time.perf_counter()

    miter = circuit_a.compose(circuit_b.inverse())
    permutation = None
    if use_local_optimisations:
        miter, permutation = eliminate_final_swaps(miter)
        miter = cancel_adjacent_gates(miter)
    network = close_trace(
        circuit_to_network(miter), permutation=permutation
    )
    cstats = ContractionStats()
    manager, order = manager_for_network(network, order_method)
    trace = contract_network_scalar(
        network, order=order, manager=manager, stats=cstats
    )
    stats.max_nodes = cstats.max_nodes
    stats.terms_computed = 1
    stats.time_seconds = time.perf_counter() - start

    dim = 2**circuit_a.num_qubits
    ratio = min(abs(trace) / dim, 1.0)
    return UnitaryCheckResult(
        equivalent=bool(abs(trace) >= dim * (1.0 - atol)),
        trace_ratio=float(ratio),
        fidelity=float(ratio * ratio),
        stats=stats,
    )


def unitary_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    atol: float = 1e-9,
    **kwargs,
) -> bool:
    """Boolean convenience wrapper around the exact check."""
    return check_unitary_equivalence(
        circuit_a, circuit_b, atol=atol, **kwargs
    ).equivalent
