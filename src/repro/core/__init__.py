"""The paper's contribution: approximate equivalence checking algorithms."""

from .algorithm1 import enumerate_selections, fidelity_individual
from .algorithm2 import fidelity_collective
from .checker import (
    AUTO_ALG1_MAX_NOISES,
    EquivalenceChecker,
    approx_equivalent,
    jamiolkowski_fidelity,
)
from .session import CheckConfig, CheckSession
from .jamiolkowski import (
    average_fidelity_from_jamiolkowski,
    fidelity_from_traces,
    jamiolkowski_distance,
    jamiolkowski_fidelity_choi,
    jamiolkowski_fidelity_circuits,
    jamiolkowski_fidelity_dense,
    jamiolkowski_fidelity_kraus,
)
from .sampling import (
    SampledFidelityResult,
    fidelity_sampled,
    mixed_unitary_decomposition,
)
from .miter import (
    Alg1Template,
    alg1_template,
    alg1_trace_network,
    alg2_trace_network,
    double_circuit,
    lower_kraus_selection,
    miter_circuit,
)
from .stats import (
    CheckError,
    CheckResult,
    FidelityResult,
    RunStats,
    StatsAggregator,
)
from .unitary_check import (
    UnitaryCheckResult,
    check_unitary_equivalence,
    unitary_equivalent,
)

__all__ = [
    "AUTO_ALG1_MAX_NOISES",
    "CheckConfig",
    "CheckError",
    "CheckResult",
    "CheckSession",
    "EquivalenceChecker",
    "FidelityResult",
    "RunStats",
    "StatsAggregator",
    "SampledFidelityResult",
    "UnitaryCheckResult",
    "check_unitary_equivalence",
    "fidelity_sampled",
    "unitary_equivalent",
    "jamiolkowski_fidelity_circuits",
    "mixed_unitary_decomposition",
    "alg1_trace_network",
    "alg2_trace_network",
    "approx_equivalent",
    "average_fidelity_from_jamiolkowski",
    "double_circuit",
    "enumerate_selections",
    "fidelity_collective",
    "fidelity_from_traces",
    "fidelity_individual",
    "jamiolkowski_distance",
    "jamiolkowski_fidelity",
    "jamiolkowski_fidelity_choi",
    "jamiolkowski_fidelity_dense",
    "jamiolkowski_fidelity_kraus",
    "lower_kraus_selection",
    "miter_circuit",
]
