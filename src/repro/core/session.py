"""Batch checking sessions: :class:`CheckConfig` + :class:`CheckSession`.

One :class:`CheckSession` owns a configured contraction backend and reuses
it across many equivalence checks, so batch workloads amortise backend
setup — warm TDD computed tables, cached contraction orders and einsum
paths — over every circuit pair, the way DAC-style decoders amortise
per-codeword work across blocks.

Quick start
-----------
>>> from repro import CheckConfig, CheckSession
>>> session = CheckSession(CheckConfig(epsilon=0.01, backend="einsum"))
>>> for result in session.check_many([(ideal_a, noisy_a),
...                                   (ideal_b, noisy_b)]):
...     print(result.verdict, result.fidelity)
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple, Union

from ..backends import (
    ContractionBackend,
    available_backends,
    backend_availability,
    resolve_backend,
)
from ..backends.base import (
    validate_plan_budget_seconds,
    validate_plan_seed,
)
from ..cache import CheckCache
from ..circuits import QuantumCircuit
from ..tensornet.ordering import ORDER_HEURISTICS
from ..tensornet.planner import PLANNERS
from .. import trace as _trace
from .algorithm1 import fidelity_individual
from .algorithm2 import fidelity_collective
from .jamiolkowski import jamiolkowski_fidelity_dense
from .stats import CheckError, CheckResult, FidelityResult, RunStats

#: Noise-site count at or below which 'auto' prefers Algorithm I.  Fig. 7
#: shows the crossover at roughly one noise for small circuits; we keep a
#: small margin because early termination usually needs only one term.
AUTO_ALG1_MAX_NOISES = 2

_ALGORITHMS = ("auto", "alg1", "alg2", "dense")

#: Execution modes of :meth:`CheckSession.run`: an epsilon-equivalence
#: decision, or the exact fidelity (no early termination).
RUN_MODES = ("check", "fidelity")


@dataclass(frozen=True)
class CheckConfig:
    """Frozen configuration of an equivalence-checking run.

    Replaces the loose kwargs previously threaded through
    ``EquivalenceChecker`` → ``algorithm1``/``algorithm2``.  All values are
    validated at construction, so typos fail immediately rather than deep
    inside a contraction loop.
    """

    #: error threshold of the epsilon-equivalence decision
    epsilon: float = 0.01
    #: 'auto', 'alg1', 'alg2' or 'dense' (the dense-linalg baseline)
    algorithm: str = "auto"
    #: registered backend name, or a ready ContractionBackend instance
    backend: Union[str, ContractionBackend] = "tdd"
    #: index elimination order heuristic
    order_method: str = "tree_decomposition"
    #: contraction-plan strategy: 'order', 'greedy', or a budgeted
    #: search planner ('anneal'/'hyper', see repro.planning)
    planner: str = "order"
    #: slice plans so no intermediate exceeds this many elements
    max_intermediate_size: Optional[int] = None
    #: adjacent-gate cancellation + trailing-SWAP elimination per miter
    use_local_optimisations: bool = False
    #: noise-site count at or below which 'auto' picks Algorithm I
    alg1_max_noises: int = AUTO_ALG1_MAX_NOISES
    #: hard cap on Algorithm I trace terms (None = unlimited)
    alg1_max_terms: Optional[int] = None
    #: Algorithm I wall-clock budget in seconds (None = unlimited)
    alg1_time_budget_seconds: Optional[float] = None
    #: share the backend's computed tables/caches across trace terms
    share_computed_table: bool = True
    #: enumerate Kraus selections largest-norm-first (Algorithm I)
    dominant_first: bool = True
    #: consult the content-addressed plan + result caches (two-tier:
    #: in-memory LRU over a disk store shared across processes)
    cache: bool = False
    #: disk-tier directory (None = $REPRO_CACHE_DIR or ~/.cache/repro);
    #: only consulted when ``cache`` is on
    cache_dir: Optional[str] = None
    #: ``host:port`` of a shared ``repro cache-server`` appended as a
    #: fail-open remote tier behind memory and disk (None = consult
    #: $REPRO_CACHE_URL at open time, "" = force-local); only
    #: consulted when ``cache`` is on
    cache_url: Optional[str] = None
    #: comma-separated ``host:port`` list of ``repro worker`` daemons;
    #: sliced contractions fan out to the fleet through a
    #: :class:`~repro.cluster.executor.RemoteSliceExecutor` (None =
    #: execute locally — the library never reads $REPRO_WORKERS
    #: implicitly; the CLI's ``--workers`` flag does)
    workers: Optional[str] = None
    #: device the backend's numerics run on (None = backend default,
    #: i.e. the host CPU; 'cuda'/'cuda:N' need einsum-torch/einsum-cupy)
    device: Optional[str] = None
    #: slices contracted per batched kernel sweep (None = auto-size
    #: against the memory budget, 1 = per-slice reference loop)
    slice_batch: Optional[int] = None
    #: wall-clock budget for the search planners (None = their default;
    #: 0 = heuristic baseline only; ignored by 'order'/'greedy')
    plan_budget_seconds: Optional[float] = None
    #: seed of the search planners' randomized trials (ignored by
    #: 'order'/'greedy'); fixed seed = reproducible searched plans
    plan_seed: int = 0
    #: record a span trace of the run and attach it to the result
    #: (``CheckResult.trace``); see repro.trace / docs/observability.md
    trace: bool = False

    def __post_init__(self):
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {list(_ALGORITHMS)}"
            )
        if isinstance(self.backend, str):
            availability = backend_availability()
            if self.backend not in availability:
                raise ValueError(
                    f"unknown backend {self.backend!r}; "
                    f"available: {', '.join(available_backends())}"
                )
            missing = availability[self.backend]
            if missing is not None:
                raise ValueError(
                    f"backend {self.backend!r} is registered but "
                    f"unavailable: {missing}"
                )
        elif not isinstance(self.backend, ContractionBackend):
            raise TypeError(
                "backend must be a registered name or a "
                f"ContractionBackend instance, got {type(self.backend)!r}; "
                f"registered names: {', '.join(available_backends())}"
            )
        if self.order_method not in ORDER_HEURISTICS:
            raise ValueError(
                f"unknown ordering method {self.order_method!r}; "
                f"choose from {sorted(ORDER_HEURISTICS)}"
            )
        if self.planner not in PLANNERS:
            raise ValueError(
                f"unknown planner {self.planner!r}; "
                f"choose from {sorted(PLANNERS)}"
            )
        if (
            self.max_intermediate_size is not None
            and self.max_intermediate_size < 1
        ):
            raise ValueError("max_intermediate_size must be at least 1")
        if self.slice_batch is not None and self.slice_batch < 1:
            raise ValueError("slice_batch must be at least 1")
        validate_plan_budget_seconds(self.plan_budget_seconds)
        validate_plan_seed(self.plan_seed)
        if (
            self.device not in (None, "cpu")
            and self.backend_name in ("tdd", "dense", "einsum")
        ):
            # Host-numpy backends fail this anyway at construction; the
            # config-time check turns it into an invalid-config error
            # with the fix in the message.
            raise ValueError(
                f"backend {self.backend_name!r} runs on the host CPU "
                f"only, got device={self.device!r}; use "
                "'einsum-torch'/'einsum-cupy' for accelerator devices"
            )
        if isinstance(self.backend, ContractionBackend):
            # A ready instance keeps its own configuration; non-default
            # plan knobs on the config would be silently ignored, so
            # reject the combination unless they already agree.
            defaults = {
                field.name: field.default
                for field in dataclasses.fields(self)
            }
            for knob in (
                "order_method",
                "planner",
                "max_intermediate_size",
                "device",
                "slice_batch",
                "plan_budget_seconds",
                "plan_seed",
            ):
                wanted = getattr(self, knob)
                actual = getattr(self.backend, knob)
                if wanted != defaults[knob] and wanted != actual:
                    raise ValueError(
                        f"{knob} is ignored when backend is an instance; "
                        f"construct the backend with {knob}={wanted!r} "
                        "instead"
                    )
        if self.alg1_max_noises < 0:
            raise ValueError("alg1_max_noises must be non-negative")
        if self.cache_url is not None and self.cache_url.strip():
            if not self.cache:
                raise ValueError(
                    "cache_url needs cache=True: the remote tier sits "
                    "behind the local cache chain"
                )
            from ..cluster.protocol import parse_address

            parse_address(self.cache_url)  # fail at config time, not mid-check
        if self.workers is not None:
            from ..cluster.executor import resolve_workers

            if isinstance(self.backend, ContractionBackend):
                raise ValueError(
                    "workers is ignored when backend is an instance; "
                    "attach a RemoteSliceExecutor to the backend instead"
                )
            addresses = resolve_workers(self.workers) or ()
            # normalised comma-joined form keeps the frozen config
            # hashable/picklable (worker session caches key on it);
            # an all-whitespace spec normalises to "no fleet"
            object.__setattr__(
                self, "workers", ",".join(addresses) or None
            )
        if self.cache_dir is not None and not isinstance(
            self.cache_dir, str
        ):
            # Keep the frozen config hashable and picklable (worker
            # session caches key on it): paths normalise to strings.
            object.__setattr__(self, "cache_dir", str(self.cache_dir))

    @property
    def backend_name(self) -> str:
        """Registry name of the configured backend."""
        if isinstance(self.backend, ContractionBackend):
            return self.backend.name
        return self.backend

    def replace(self, **changes) -> "CheckConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe; backend reduced to its name).

        Built field-by-field — ``dataclasses.asdict`` would deep-copy a
        live backend instance (manager, caches and all) stored in
        ``backend``.
        """
        out = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        out["backend"] = self.backend_name
        return out


class CheckSession:
    """A reusable checking session with shared backend state.

    The backend instance is created lazily on first use and kept for the
    session's lifetime, so consecutive :meth:`check` calls — and the whole
    of :meth:`check_many` — reuse warm contraction state (one
    :class:`~repro.tdd.TddManager`, cached elimination orders, cached
    einsum paths).

    Accepts a :class:`CheckConfig`, keyword overrides, or both::

        CheckSession(CheckConfig(backend="einsum"))
        CheckSession(epsilon=0.05, backend="dense")
        CheckSession(config, epsilon=0.2)   # config with one override
    """

    def __init__(self, config: Optional[CheckConfig] = None, **overrides):
        if config is None:
            config = CheckConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self._backend: Optional[ContractionBackend] = None
        self._executor = None
        #: the tiered plan + result cache (None when config.cache off);
        #: gains a fail-open remote tier when cache_url / the env names
        #: a cache server
        self.cache: Optional[CheckCache] = (
            CheckCache.open(config.cache_dir, cache_url=config.cache_url)
            if config.cache
            else None
        )

    @property
    def backend(self) -> ContractionBackend:
        """The session's shared contraction backend (created on demand).

        Name-configured backends are built with the session's plan
        cache attached.  A ready backend *instance* is never mutated —
        attaching the cache would leak it into every other session
        sharing that instance, including ones that disabled caching.
        Construct the instance with ``plan_cache=`` to plan-cache it;
        the session's result cache applies either way.
        """
        if self._backend is None:
            plan_cache = None if self.cache is None else self.cache.plans
            if self.config.workers and self._executor is None:
                from ..cluster.executor import RemoteSliceExecutor

                self._executor = RemoteSliceExecutor(self.config.workers)
            self._backend = resolve_backend(
                self.config.backend,
                order_method=self.config.order_method,
                share_intermediates=self.config.share_computed_table,
                planner=self.config.planner,
                max_intermediate_size=self.config.max_intermediate_size,
                executor=self._executor,
                plan_cache=plan_cache,
                device=self.config.device,
                slice_batch=self.config.slice_batch,
                plan_budget_seconds=self.config.plan_budget_seconds,
                plan_seed=self.config.plan_seed,
            )
        return self._backend

    def close(self) -> None:
        """Release cluster connections (worker fleet, remote cache).

        Idempotent; a closed session reconnects lazily if used again.
        Purely-local sessions have nothing to close.
        """
        if self._executor is not None:
            self._executor.close()
        if self.cache is not None:
            remote = self.cache.remote
            if remote is not None:
                remote.close()

    def reset(self) -> None:
        """Drop all shared backend state (managers, orders, paths)."""
        if self._backend is not None:
            self._backend.reset()

    def select_algorithm(self, noisy: QuantumCircuit) -> str:
        """Resolve 'auto' to a concrete algorithm for this circuit."""
        if self.config.algorithm != "auto":
            return self.config.algorithm
        if noisy.num_noise_sites <= self.config.alg1_max_noises:
            return "alg1"
        return "alg2"

    # --- checking -------------------------------------------------------------

    def _result_cacheable(self) -> bool:
        """Whether whole verdicts may be cached under this config.

        Wall-clock-budgeted Algorithm I runs truncate at a
        machine-load-dependent point, so their fidelity is not a pure
        function of the inputs — caching one would freeze an arbitrary
        lower bound.  Everything else (early termination, term caps)
        is deterministic.
        """
        return self.config.alg1_time_budget_seconds is None

    def check(
        self, ideal: QuantumCircuit, noisy: QuantumCircuit
    ) -> CheckResult:
        """Decide ``ideal ~eps noisy`` under this session's config.

        With caching enabled (``config.cache``) the verdict is first
        looked up in the result cache by the circuits' content
        fingerprints; a hit returns the stored result — zero planning,
        zero contraction — re-stamped with the lookup time and
        ``stats.result_cache_hit = 1``.  Misses compute as usual, record
        the run's plan-cache hits in ``stats.plan_cache_hit``, and feed
        the cache for every later process.
        """
        return self._traced(lambda: self._check(ideal, noisy))

    def _traced(self, compute) -> CheckResult:
        """Run ``compute`` under a fresh trace recorder when the config
        asks for one and no outer layer (the Engine) installed its own;
        the span tree lands on ``result.trace``."""
        if not self.config.trace or _trace.current_recorder() is not None:
            return compute()
        recorder = _trace.TraceRecorder()
        with _trace.recording(recorder):
            result = compute()
        result.trace = _trace.span_tree(recorder)
        return result

    def _check(
        self, ideal: QuantumCircuit, noisy: QuantumCircuit
    ) -> CheckResult:
        cfg = self.config
        self._validate_pair(ideal, noisy)
        algorithm = self.select_algorithm(noisy)
        key = None
        if self.cache is not None and self._result_cacheable():
            lookup_start = time.perf_counter()
            with _trace.span("request.fingerprint"):
                key = self.cache.results.key_for(ideal, noisy, cfg)
            with _trace.span("cache.result.get") as lookup_span:
                cached = self.cache.results.get(key)
                lookup_span.set(hit=cached is not None)
            if cached is not None:
                # A fresh object per hit (pickle round-trip inside the
                # adapter), so re-stamping cannot corrupt the store.
                cached.stats.time_seconds = (
                    time.perf_counter() - lookup_start
                )
                cached.stats.term_times = []
                cached.stats.plan_cache_hit = 0
                cached.stats.planning_seconds = 0.0
                cached.stats.plan_trials = 0
                # This hit did no contraction work; the stored run's
                # work counters would otherwise re-inflate aggregate
                # metrics (StatsAggregator sums cpu/term/slice counts)
                # on every warm request.
                cached.stats.cpu_seconds = 0.0
                cached.stats.batched_slice_calls = 0
                cached.stats.terms_computed = 0
                cached.stats.result_cache_hit = 1
                cached.trace = None
                return cached
        plan_hits_before = (
            self.backend.plan_cache_hits if self.cache is not None else 0
        )
        with _trace.span("session.check", algorithm=algorithm):
            result = self._fidelity_result(
                ideal, noisy, algorithm, cfg.epsilon
            )
        outcome = self._verdict(result, algorithm)
        if self.cache is not None:
            outcome.stats.plan_cache_hit = (
                self.backend.plan_cache_hits - plan_hits_before
            )
            if key is not None and not outcome.stats.timed_out:
                with _trace.span("cache.result.put"):
                    self.cache.results.put(key, outcome)
        return outcome

    def _verdict(
        self, result: FidelityResult, algorithm: str
    ) -> CheckResult:
        """Decide against ``config.epsilon`` and assemble the record.

        The one verdict-assembly path for both :meth:`check` and
        fidelity-mode :meth:`run` — including the truncated-lower-bound
        note, which applies whenever a capped Algorithm I run cannot
        prove a negative.
        """
        equivalent = result.fidelity > 1.0 - self.config.epsilon
        note = None
        if not equivalent and result.is_lower_bound:
            note = (
                "fidelity is a truncated lower bound; rerun without early "
                "termination or term caps for a definitive negative answer"
            )
        return CheckResult(
            equivalent=equivalent,
            epsilon=self.config.epsilon,
            fidelity=result.fidelity,
            is_lower_bound=result.is_lower_bound,
            stats=result.stats,
            algorithm=algorithm,
            backend=result.stats.backend,
            note=note,
        )

    def check_many(
        self,
        pairs: Iterable[Tuple[QuantumCircuit, QuantumCircuit]],
        *,
        jobs: int = 1,
        isolate_errors: bool = False,
    ) -> Iterator[Union[CheckResult, CheckError]]:
        """Check each ``(ideal, noisy)`` pair, streaming the results.

        Yields one outcome per pair, always in input order.  With the
        default ``jobs=1`` pairs run serially in-process and the shared
        backend state carries over from pair to pair, which is the point
        of batching.  With ``jobs > 1`` whole checks fan out to a pool
        of worker processes (each worker keeps its own warm session);
        this requires the config's backend to be a registry *name*, not
        a live instance, and materialises ``pairs`` up front.

        ``isolate_errors`` turns a raising check into a
        :class:`~repro.core.stats.CheckError` record (carrying the
        item's index and the exception) instead of aborting the batch;
        without it the first failure propagates, in serial and parallel
        runs alike.

        With caching enabled, byte-identical rows dedup to one real
        check: the first occurrence computes and stores, the rest are
        result-cache hits (serial runs guarantee this; parallel runs
        dedup best-effort, since identical rows may be in flight on
        two workers at once — both compute, both store the same
        verdict).  Workers share the disk tier, so a pool warms itself.
        """
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if jobs > 1:
            from ..parallel.batch import iter_parallel_checks

            return iter_parallel_checks(
                self.config, pairs, jobs, isolate_errors
            )
        return self._check_many_serial(pairs, isolate_errors)

    def _check_many_serial(
        self,
        pairs: Iterable[Tuple[QuantumCircuit, QuantumCircuit]],
        isolate_errors: bool,
    ) -> Iterator[Union[CheckResult, CheckError]]:
        for index, (ideal, noisy) in enumerate(pairs):
            if not isolate_errors:
                yield self.check(ideal, noisy)
                continue
            try:
                yield self.check(ideal, noisy)
            except Exception as exc:
                yield CheckError(
                    error=str(exc),
                    error_type=type(exc).__name__,
                    index=index,
                )

    def fidelity(
        self, ideal: QuantumCircuit, noisy: QuantumCircuit
    ) -> float:
        """Exact ``F_J(E_noisy, U_ideal)`` with the configured algorithm.

        No early termination is applied (Algorithm I sums every term up
        to the configured caps).
        """
        return self.fidelity_result(ideal, noisy).fidelity

    def fidelity_result(
        self, ideal: QuantumCircuit, noisy: QuantumCircuit
    ) -> FidelityResult:
        """:meth:`fidelity` plus the run's stats and lower-bound flag.

        Validates the pair like every other entry point — a qubit
        mismatch fails with the clean ValueError, not a shape error
        deep inside a contraction.
        """
        self._validate_pair(ideal, noisy)
        algorithm = self.select_algorithm(noisy)
        return self._fidelity_result(ideal, noisy, algorithm, None)

    def run(
        self,
        ideal: QuantumCircuit,
        noisy: QuantumCircuit,
        mode: str = "check",
    ) -> CheckResult:
        """One uniform entry point over :meth:`check` and :meth:`fidelity`.

        ``mode="check"`` is exactly :meth:`check`.  ``mode="fidelity"``
        computes the exact fidelity (no epsilon early termination) and
        wraps it in the same :class:`CheckResult` shape — the verdict is
        still decided against ``config.epsilon`` — so request-driven
        callers (:class:`repro.api.Engine`, the batch workers) handle
        one result type.  Fidelity-mode results are never cached: their
        no-early-termination semantics are not captured by the config
        fingerprint the result cache keys on.
        """
        if mode == "check":
            return self.check(ideal, noisy)
        if mode != "fidelity":
            raise ValueError(
                f"unknown run mode {mode!r}; choose from {list(RUN_MODES)}"
            )
        def compute() -> CheckResult:
            result = self.fidelity_result(ideal, noisy)
            return self._verdict(result, result.stats.algorithm)

        return self._traced(compute)

    @staticmethod
    def _validate_pair(
        ideal: QuantumCircuit, noisy: QuantumCircuit
    ) -> None:
        """Shared preconditions of every run mode."""
        if ideal.num_qubits != noisy.num_qubits:
            raise ValueError("circuits must have the same number of qubits")
        if not ideal.is_unitary_circuit:
            raise ValueError("the ideal circuit must be noiseless (unitary)")

    def _fidelity_result(
        self,
        ideal: QuantumCircuit,
        noisy: QuantumCircuit,
        algorithm: str,
        epsilon: Optional[float],
    ) -> FidelityResult:
        cfg = self.config
        if algorithm == "dense":
            fidelity = jamiolkowski_fidelity_dense(noisy, ideal)
            return FidelityResult(
                fidelity=fidelity,
                stats=RunStats(algorithm="dense", backend="dense-linalg"),
            )
        backend = self.backend
        planning_before = backend.planning_seconds_total
        trials_before = backend.plan_trials_total
        if algorithm == "alg1":
            result = fidelity_individual(
                noisy,
                ideal,
                epsilon=epsilon,
                backend=backend,
                order_method=cfg.order_method,
                share_computed_table=cfg.share_computed_table,
                use_local_optimisations=cfg.use_local_optimisations,
                dominant_first=cfg.dominant_first,
                max_terms=cfg.alg1_max_terms,
                time_budget_seconds=cfg.alg1_time_budget_seconds,
            )
        elif algorithm == "alg2":
            result = fidelity_collective(
                noisy,
                ideal,
                backend=backend,
                order_method=cfg.order_method,
                use_local_optimisations=cfg.use_local_optimisations,
            )
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        # Delta of the backend's cumulative planning counters: how much
        # planning (and how many search trials) *this run* paid for.
        # ~0 seconds and 0 trials when the plan cache answered.
        result.stats.planning_seconds = (
            backend.planning_seconds_total - planning_before
        )
        result.stats.plan_trials = backend.plan_trials_total - trials_before
        return result
