"""Algorithm II: calculate the trace terms collectively.

Contract a single doubled network computing

``sum_i |tr(U† E_i)|^2 = tr((U† (x) U^T) M_E)``

in one pass, regardless of how many noise sites the circuit has.  The
network has twice the qubits of Algorithm I's miters, but there is only
one of it — the trade-off the paper demonstrates in Fig. 7.
"""

from __future__ import annotations

import time

from ..circuits import QuantumCircuit
from ..tdd import contract_network_scalar, manager_for_network
from ..tensornet import ContractionStats, contraction_order
from .miter import alg2_trace_network
from .stats import FidelityResult, RunStats


def fidelity_collective(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    backend: str = "tdd",
    order_method: str = "tree_decomposition",
    use_local_optimisations: bool = False,
) -> FidelityResult:
    """Jamiolkowski fidelity via one doubled-network contraction.

    Parameters mirror :func:`repro.core.algorithm1.fidelity_individual`
    (there is no epsilon: the single contraction is always exact).
    """
    dim = 2**ideal.num_qubits
    stats = RunStats(algorithm="alg2", terms_total=1)
    start = time.perf_counter()

    network = alg2_trace_network(
        noisy, ideal, use_local_optimisations=use_local_optimisations
    )
    cstats = ContractionStats()
    if backend == "tdd":
        manager, order = manager_for_network(network, order_method)
        value = contract_network_scalar(
            network, order=order, manager=manager, stats=cstats
        )
        stats.max_nodes = cstats.max_nodes
    elif backend == "dense":
        order = contraction_order(network, order_method)
        value = network.contract_scalar(order=order, stats=cstats)
        stats.max_intermediate_size = cstats.max_intermediate_size
    else:
        raise ValueError(f"unknown backend {backend!r}")

    stats.terms_computed = 1
    stats.time_seconds = time.perf_counter() - start
    # The collective trace is a sum of |.|^2 terms: real and non-negative
    # up to float noise.
    fidelity = min(max(value.real / (dim * dim), 0.0), 1.0)
    return FidelityResult(fidelity=fidelity, is_lower_bound=False, stats=stats)
