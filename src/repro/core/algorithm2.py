"""Algorithm II: calculate the trace terms collectively.

Contract a single doubled network computing

``sum_i |tr(U† E_i)|^2 = tr((U† (x) U^T) M_E)``

in one pass, regardless of how many noise sites the circuit has.  The
network has twice the qubits of Algorithm I's miters, but there is only
one of it — the trade-off the paper demonstrates in Fig. 7.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from .. import trace as _trace
from ..backends import ContractionBackend, resolve_backend
from ..circuits import QuantumCircuit
from ..tensornet import ContractionStats
from .miter import alg2_trace_network
from .stats import FidelityResult, RunStats


def fidelity_collective(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    backend: Union[str, ContractionBackend] = "tdd",
    order_method: str = "tree_decomposition",
    use_local_optimisations: bool = False,
    planner: str = "order",
    max_intermediate_size: Optional[int] = None,
) -> FidelityResult:
    """Jamiolkowski fidelity via one doubled-network contraction.

    Parameters mirror :func:`repro.core.algorithm1.fidelity_individual`
    (there is no epsilon: the single contraction is always exact).
    ``backend`` is a registered name or a ready
    :class:`~repro.backends.ContractionBackend` instance;
    ``planner``/``max_intermediate_size`` configure plan construction and
    slicing when ``backend`` is a name.
    """
    engine = resolve_backend(
        backend,
        order_method=order_method,
        planner=planner,
        max_intermediate_size=max_intermediate_size,
    )
    dim = 2**ideal.num_qubits
    stats = RunStats(
        algorithm="alg2",
        backend=engine.name,
        device=getattr(engine, "resolved_device", None) or "cpu",
        terms_total=1,
    )
    start = time.perf_counter()

    network = alg2_trace_network(
        noisy, ideal, use_local_optimisations=use_local_optimisations
    )
    cstats = ContractionStats()
    with _trace.span("alg2.contract"):
        value = engine.contract_scalar(network, stats=cstats)
    stats.max_nodes = cstats.max_nodes
    stats.max_intermediate_size = cstats.max_intermediate_size
    stats.predicted_cost = cstats.predicted_cost
    stats.predicted_peak_size = cstats.predicted_peak_size
    stats.slice_count = cstats.slice_count
    stats.batched_slice_calls = cstats.batched_slice_calls

    stats.terms_computed = 1
    stats.time_seconds = time.perf_counter() - start
    # The collective trace is a sum of |.|^2 terms: real and non-negative
    # up to float noise.
    fidelity = min(max(value.real / (dim * dim), 0.0), 1.0)
    return FidelityResult(fidelity=fidelity, is_lower_bound=False, stats=stats)
