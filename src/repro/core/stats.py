"""Run statistics reported by the checking algorithms.

The paper's Table I reports wall-clock time and the maximum number of TDD
nodes constructed during a run; Table II additionally needs per-term
timings with and without the shared computed table.  :class:`RunStats`
carries all of that, and both it and :class:`CheckResult` serialise to
plain dicts / JSON so batch runs can stream machine-readable results.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional


@dataclass
class RunStats:
    """Statistics of one fidelity computation."""

    algorithm: str = ""
    #: registry name of the contraction backend that did the work
    backend: str = ""
    #: wall-clock seconds for the whole computation
    time_seconds: float = 0.0
    #: peak TDD node count across all intermediate diagrams ('nodes' column)
    max_nodes: int = 0
    #: peak dense intermediate size (dense/einsum backends only)
    max_intermediate_size: int = 0
    #: plan-predicted scalar multiply-adds summed over every contraction
    predicted_cost: int = 0
    #: plan-predicted peak intermediate size (compare with
    #: max_intermediate_size for plan-quality tracking)
    predicted_peak_size: int = 0
    #: index-fixed subplan executions per contraction (1 = unsliced)
    slice_count: int = 0
    #: number of Kraus selections actually contracted (Alg I)
    terms_computed: int = 0
    #: total number of Kraus selections (prod of per-site counts)
    terms_total: int = 0
    #: True when Alg I stopped early on the partial-sum test
    early_stopped: bool = False
    #: True when Alg I hit its wall-clock budget before finishing
    timed_out: bool = False
    #: per-term wall-clock seconds (Alg I, for the Table II experiment)
    term_times: List[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return asdict(self)

    def to_json(self, **kwargs) -> str:
        """JSON form; ``kwargs`` forward to :func:`json.dumps`."""
        return json.dumps(self.to_dict(), **kwargs)


@dataclass
class FidelityResult:
    """Outcome of a fidelity computation.

    ``fidelity`` is exact when the algorithm ran to completion; when Alg I
    stops early it is the partial sum, which *lower-bounds* the true
    Jamiolkowski fidelity (every term is non-negative).
    """

    fidelity: float
    is_lower_bound: bool = False
    stats: RunStats = field(default_factory=RunStats)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "fidelity": self.fidelity,
            "is_lower_bound": self.is_lower_bound,
            "stats": self.stats.to_dict(),
        }


@dataclass
class CheckResult:
    """Outcome of an epsilon-equivalence check."""

    equivalent: bool
    epsilon: float
    fidelity: float
    is_lower_bound: bool
    stats: RunStats = field(default_factory=RunStats)
    algorithm: str = ""
    #: registry name of the contraction backend that did the work
    backend: str = ""
    note: Optional[str] = None

    @property
    def verdict(self) -> str:
        """Human/JSON-friendly verdict string."""
        return "EQUIVALENT" if self.equivalent else "NOT_EQUIVALENT"

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe), stats nested under ``"stats"``."""
        return {
            "equivalent": self.equivalent,
            "verdict": self.verdict,
            "epsilon": self.epsilon,
            "fidelity": self.fidelity,
            "is_lower_bound": self.is_lower_bound,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "time_seconds": self.stats.time_seconds,
            "note": self.note,
            "stats": self.stats.to_dict(),
        }

    def to_json(self, **kwargs) -> str:
        """JSON form; ``kwargs`` forward to :func:`json.dumps`."""
        return json.dumps(self.to_dict(), **kwargs)
