"""Run statistics reported by the checking algorithms.

The paper's Table I reports wall-clock time and the maximum number of TDD
nodes constructed during a run; Table II additionally needs per-term
timings with and without the shared computed table.  :class:`RunStats`
carries all of that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class RunStats:
    """Statistics of one fidelity computation."""

    algorithm: str = ""
    #: wall-clock seconds for the whole computation
    time_seconds: float = 0.0
    #: peak TDD node count across all intermediate diagrams ('nodes' column)
    max_nodes: int = 0
    #: peak dense intermediate size (dense backend only)
    max_intermediate_size: int = 0
    #: number of Kraus selections actually contracted (Alg I)
    terms_computed: int = 0
    #: total number of Kraus selections (prod of per-site counts)
    terms_total: int = 0
    #: True when Alg I stopped early on the partial-sum test
    early_stopped: bool = False
    #: True when Alg I hit its wall-clock budget before finishing
    timed_out: bool = False
    #: per-term wall-clock seconds (Alg I, for the Table II experiment)
    term_times: List[float] = field(default_factory=list)


@dataclass
class FidelityResult:
    """Outcome of a fidelity computation.

    ``fidelity`` is exact when the algorithm ran to completion; when Alg I
    stops early it is the partial sum, which *lower-bounds* the true
    Jamiolkowski fidelity (every term is non-negative).
    """

    fidelity: float
    is_lower_bound: bool = False
    stats: RunStats = field(default_factory=RunStats)


@dataclass
class CheckResult:
    """Outcome of an epsilon-equivalence check."""

    equivalent: bool
    epsilon: float
    fidelity: float
    is_lower_bound: bool
    stats: RunStats = field(default_factory=RunStats)
    algorithm: str = ""
    note: Optional[str] = None
