"""Run statistics reported by the checking algorithms.

The paper's Table I reports wall-clock time and the maximum number of TDD
nodes constructed during a run; Table II additionally needs per-term
timings with and without the shared computed table.  :class:`RunStats`
carries all of that, and both it and :class:`CheckResult` serialise to
plain dicts / JSON so batch runs can stream machine-readable results.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from typing import Iterable, List, Optional

#: Version tag of the JSON wire schema emitted by ``CheckResult.to_dict``,
#: ``CheckError.to_dict`` and the :mod:`repro.api` request/response types.
#: The CLI's ``check --json`` and ``batch`` records carry the same tag, so
#: CLI and API payloads cannot drift apart.  Bump it only on a breaking
#: field change; additive fields keep the version.
SCHEMA_VERSION = "1"


@dataclass
class RunStats:
    """Statistics of one fidelity computation."""

    algorithm: str = ""
    #: registry name of the contraction backend that did the work
    backend: str = ""
    #: wall-clock seconds for the whole computation
    time_seconds: float = 0.0
    #: summed per-run compute seconds when stats are merged across a
    #: (possibly parallel) batch; 0 on a single run.  Under ``jobs > 1``
    #: this exceeds ``time_seconds`` — that gap *is* the parallel speedup.
    cpu_seconds: float = 0.0
    #: peak TDD node count across all intermediate diagrams ('nodes' column)
    max_nodes: int = 0
    #: peak dense intermediate size (dense/einsum backends only)
    max_intermediate_size: int = 0
    #: plan-predicted scalar multiply-adds summed over every contraction
    predicted_cost: int = 0
    #: plan-predicted peak intermediate size (compare with
    #: max_intermediate_size for plan-quality tracking)
    predicted_peak_size: int = 0
    #: index-fixed subplan executions per contraction (1 = unsliced)
    slice_count: int = 0
    #: device the backend's numerics ran on ("" = not recorded)
    device: str = ""
    #: batched einsum sweeps over slice chunks (0 = looped or unsliced)
    batched_slice_calls: int = 0
    #: plan_for calls served from the plan cache without planning
    #: (0 whenever caching is disabled)
    plan_cache_hit: int = 0
    #: wall-clock seconds the backend spent planning (cache lookups,
    #: heuristics, search trials); ~0 on plan-cache hits
    planning_seconds: float = 0.0
    #: randomized search trials run by the anneal/hyper planners
    #: (0 for heuristic planners and on plan-cache hits)
    plan_trials: int = 0
    #: whole checks served from the result cache without contracting
    #: (0 or 1 per run; sums across a merged batch)
    result_cache_hit: int = 0
    #: number of Kraus selections actually contracted (Alg I)
    terms_computed: int = 0
    #: total number of Kraus selections (prod of per-site counts)
    terms_total: int = 0
    #: True when Alg I stopped early on the partial-sum test
    early_stopped: bool = False
    #: True when Alg I hit its wall-clock budget before finishing
    timed_out: bool = False
    #: per-term wall-clock seconds (Alg I, for the Table II experiment)
    term_times: List[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return asdict(self)

    def to_json(self, **kwargs) -> str:
        """JSON form; ``kwargs`` forward to :func:`json.dumps`."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def merge(
        cls,
        runs: Iterable["RunStats"],
        wall_seconds: Optional[float] = None,
    ) -> "RunStats":
        """Aggregate many runs' stats into one batch-level record.

        Merging is parallelism-aware: ``cpu_seconds`` *sums* each run's
        compute time (what the hardware worked), while ``time_seconds``
        is the caller-measured ``wall_seconds`` (what the user waited) —
        under ``jobs > 1`` the two legitimately diverge, and their ratio
        is the achieved speedup.  When no wall clock is supplied the
        serial assumption ``time_seconds == cpu_seconds`` applies.

        Peaks (``max_nodes``, ``max_intermediate_size``,
        ``predicted_peak_size``, ``slice_count``) take the maximum,
        counters (``predicted_cost``, ``terms_*``, the
        ``plan_cache_hit``/``result_cache_hit`` cache counters,
        ``planning_seconds``/``plan_trials``) sum,
        flags OR, and
        ``algorithm``/``backend`` keep a common value or become
        ``"mixed"``.  Per-term timings are not concatenated (they are a
        per-run diagnostic, meaningless across runs).
        """
        merged = cls()
        runs = [run for run in runs if run is not None]
        if runs:
            algorithms = {run.algorithm for run in runs}
            backends = {run.backend for run in runs}
            devices = {run.device for run in runs}
            merged.algorithm = (
                algorithms.pop() if len(algorithms) == 1 else "mixed"
            )
            merged.backend = backends.pop() if len(backends) == 1 else "mixed"
            merged.device = devices.pop() if len(devices) == 1 else "mixed"
            merged.cpu_seconds = sum(
                run.cpu_seconds if run.cpu_seconds else run.time_seconds
                for run in runs
            )
            merged.max_nodes = max(run.max_nodes for run in runs)
            merged.max_intermediate_size = max(
                run.max_intermediate_size for run in runs
            )
            merged.predicted_cost = sum(run.predicted_cost for run in runs)
            merged.predicted_peak_size = max(
                run.predicted_peak_size for run in runs
            )
            merged.slice_count = max(run.slice_count for run in runs)
            merged.batched_slice_calls = sum(
                run.batched_slice_calls for run in runs
            )
            merged.plan_cache_hit = sum(run.plan_cache_hit for run in runs)
            merged.planning_seconds = sum(
                run.planning_seconds for run in runs
            )
            merged.plan_trials = sum(run.plan_trials for run in runs)
            merged.result_cache_hit = sum(
                run.result_cache_hit for run in runs
            )
            merged.terms_computed = sum(run.terms_computed for run in runs)
            merged.terms_total = sum(run.terms_total for run in runs)
            merged.early_stopped = any(run.early_stopped for run in runs)
            merged.timed_out = any(run.timed_out for run in runs)
        merged.time_seconds = (
            wall_seconds if wall_seconds is not None else merged.cpu_seconds
        )
        return merged


class StatsAggregator:
    """Cumulative, thread-safe :class:`RunStats` counters across runs.

    :meth:`RunStats.merge` aggregates one *finished* batch; long-lived
    consumers — the service's ``/metrics`` endpoint, the batch CLI's
    stderr summary — instead feed every run into one of these as it
    completes and read a consistent :meth:`snapshot` at any time.
    Counters only ever grow (Prometheus-counter semantics); peaks take
    the maximum.  ``add`` and ``snapshot`` are safe to call from any
    thread.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._checks = 0
        self._wall_seconds = 0.0
        self._cpu_seconds = 0.0
        self._plan_cache_hits = 0
        self._planning_seconds = 0.0
        self._plan_trials = 0
        self._result_cache_hits = 0
        self._terms_computed = 0
        self._batched_slice_calls = 0
        self._max_nodes = 0
        self._max_intermediate_size = 0
        self._early_stopped = 0
        self._timed_out = 0

    def add(self, stats: Optional[RunStats]) -> None:
        """Fold one run's counters in (``None`` is ignored).

        As in :meth:`RunStats.merge`, a run that never recorded a
        separate ``cpu_seconds`` contributes its wall time to the CPU
        total — the serial assumption.
        """
        if stats is None:
            return
        with self._lock:
            self._checks += 1
            self._wall_seconds += stats.time_seconds
            self._cpu_seconds += (
                stats.cpu_seconds if stats.cpu_seconds else stats.time_seconds
            )
            self._plan_cache_hits += stats.plan_cache_hit
            self._planning_seconds += stats.planning_seconds
            self._plan_trials += stats.plan_trials
            self._result_cache_hits += stats.result_cache_hit
            self._terms_computed += stats.terms_computed
            self._batched_slice_calls += stats.batched_slice_calls
            self._max_nodes = max(self._max_nodes, stats.max_nodes)
            self._max_intermediate_size = max(
                self._max_intermediate_size, stats.max_intermediate_size
            )
            self._early_stopped += int(stats.early_stopped)
            self._timed_out += int(stats.timed_out)

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of every counter (JSON-safe)."""
        with self._lock:
            return {
                "checks": self._checks,
                "wall_seconds": self._wall_seconds,
                "cpu_seconds": self._cpu_seconds,
                "plan_cache_hits": self._plan_cache_hits,
                "planning_seconds": self._planning_seconds,
                "plan_trials": self._plan_trials,
                "result_cache_hits": self._result_cache_hits,
                "terms_computed": self._terms_computed,
                "batched_slice_calls": self._batched_slice_calls,
                "max_nodes": self._max_nodes,
                "max_intermediate_size": self._max_intermediate_size,
                "early_stopped": self._early_stopped,
                "timed_out": self._timed_out,
            }


@dataclass
class FidelityResult:
    """Outcome of a fidelity computation.

    ``fidelity`` is exact when the algorithm ran to completion; when Alg I
    stops early it is the partial sum, which *lower-bounds* the true
    Jamiolkowski fidelity (every term is non-negative).
    """

    fidelity: float
    is_lower_bound: bool = False
    stats: RunStats = field(default_factory=RunStats)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "fidelity": self.fidelity,
            "is_lower_bound": self.is_lower_bound,
            "stats": self.stats.to_dict(),
        }


@dataclass
class CheckError:
    """Error record standing in for one failed item of a batch.

    Batch runs with error isolation (``check_many(isolate_errors=True)``,
    the CLI's ``batch`` command) yield one of these — instead of crashing
    the whole batch — when a single item raises.  It mirrors the
    :class:`CheckResult` surface that batch consumers touch
    (``equivalent``, ``verdict``, ``to_dict``/``to_json``) so result
    streams stay homogeneous to iterate.
    """

    #: the exception message
    error: str
    #: the exception class name (the exception object itself may not
    #: survive a trip through a worker process)
    error_type: str = "Exception"
    #: position of the failed item in the batch input (None = unknown)
    index: Optional[int] = None
    #: machine-readable failure code from the :mod:`repro.api.errors`
    #: taxonomy ("check_failed" covers an exception inside the check
    #: itself; request-level failures carry their own codes)
    error_code: str = "check_failed"

    #: an errored check never attests equivalence
    equivalent: bool = field(default=False, init=False)

    @property
    def verdict(self) -> str:
        """Verdict string, uniform with :attr:`CheckResult.verdict`."""
        return "ERROR"

    def to_dict(self) -> dict:
        """Wire-schema error record (JSON-safe, versioned)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "equivalent": False,
            "verdict": self.verdict,
            "error": self.error,
            "error_type": self.error_type,
            "error_code": self.error_code,
            "index": self.index,
        }

    def to_json(self, **kwargs) -> str:
        """JSON form; ``kwargs`` forward to :func:`json.dumps`."""
        return json.dumps(self.to_dict(), **kwargs)


@dataclass
class CheckResult:
    """Outcome of an epsilon-equivalence check."""

    equivalent: bool
    epsilon: float
    fidelity: float
    is_lower_bound: bool
    stats: RunStats = field(default_factory=RunStats)
    algorithm: str = ""
    #: registry name of the contraction backend that did the work
    backend: str = ""
    note: Optional[str] = None
    #: compact span tree of the run (see :func:`repro.trace.span_tree`)
    #: when the check ran with ``CheckConfig(trace=True)``, else None
    trace: Optional[dict] = None

    @property
    def verdict(self) -> str:
        """Human/JSON-friendly verdict string."""
        return "EQUIVALENT" if self.equivalent else "NOT_EQUIVALENT"

    def to_dict(self) -> dict:
        """Wire-schema result record (JSON-safe, versioned).

        This dict *is* the version-``1`` response wire schema: the CLI's
        ``check --json`` and ``batch`` records and the
        :class:`repro.api.CheckResponse` payload are all this exact
        shape (the CLI adds its ``line``/``ideal``/``noisy`` envelope
        fields on batch records).
        """
        record = {
            "schema_version": SCHEMA_VERSION,
            "equivalent": self.equivalent,
            "verdict": self.verdict,
            "epsilon": self.epsilon,
            "fidelity": self.fidelity,
            "is_lower_bound": self.is_lower_bound,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "time_seconds": self.stats.time_seconds,
            "note": self.note,
            "stats": self.stats.to_dict(),
        }
        # additive: only traced runs carry the key (version stays "1")
        if self.trace is not None:
            record["trace"] = self.trace
        return record

    def to_json(self, **kwargs) -> str:
        """JSON form; ``kwargs`` forward to :func:`json.dumps`."""
        return json.dumps(self.to_dict(), **kwargs)
