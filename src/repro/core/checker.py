"""The epsilon-equivalence checker (the paper's Problem 1).

Given an ideal circuit ``C`` and a noisy implementation ``N``, decide
``C ~eps N``, i.e. ``F_J(E_N, U_C) > 1 - eps``.  The checker dispatches
between the two algorithms:

* few noise sites → Algorithm I with early termination (often a single
  trace term certifies equivalence);
* many noise sites → Algorithm II's single collective contraction.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit
from .algorithm1 import fidelity_individual
from .algorithm2 import fidelity_collective
from .jamiolkowski import jamiolkowski_fidelity_dense
from .stats import CheckResult, RunStats

#: Noise-site count at or below which 'auto' prefers Algorithm I.  Fig. 7
#: shows the crossover at roughly one noise for small circuits; we keep a
#: small margin because early termination usually needs only one term.
AUTO_ALG1_MAX_NOISES = 2


class EquivalenceChecker:
    """Approximate equivalence checking of noisy quantum circuits."""

    def __init__(
        self,
        epsilon: float = 0.01,
        algorithm: str = "auto",
        backend: str = "tdd",
        order_method: str = "tree_decomposition",
        use_local_optimisations: bool = False,
        alg1_max_noises: int = AUTO_ALG1_MAX_NOISES,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        if algorithm not in ("auto", "alg1", "alg2", "dense"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.epsilon = epsilon
        self.algorithm = algorithm
        self.backend = backend
        self.order_method = order_method
        self.use_local_optimisations = use_local_optimisations
        self.alg1_max_noises = alg1_max_noises

    def select_algorithm(self, noisy: QuantumCircuit) -> str:
        """Resolve 'auto' to a concrete algorithm for this circuit."""
        if self.algorithm != "auto":
            return self.algorithm
        if noisy.num_noise_sites <= self.alg1_max_noises:
            return "alg1"
        return "alg2"

    def check(
        self, ideal: QuantumCircuit, noisy: QuantumCircuit
    ) -> CheckResult:
        """Decide ``ideal ~eps noisy``."""
        if ideal.num_qubits != noisy.num_qubits:
            raise ValueError("circuits must have the same number of qubits")
        if not ideal.is_unitary_circuit:
            raise ValueError("the ideal circuit must be noiseless (unitary)")
        algorithm = self.select_algorithm(noisy)
        if algorithm == "alg1":
            result = fidelity_individual(
                noisy,
                ideal,
                epsilon=self.epsilon,
                backend=self.backend,
                order_method=self.order_method,
                use_local_optimisations=self.use_local_optimisations,
            )
        elif algorithm == "alg2":
            result = fidelity_collective(
                noisy,
                ideal,
                backend=self.backend,
                order_method=self.order_method,
                use_local_optimisations=self.use_local_optimisations,
            )
        else:
            fidelity = jamiolkowski_fidelity_dense(noisy, ideal)
            from .stats import FidelityResult

            result = FidelityResult(
                fidelity=fidelity, stats=RunStats(algorithm="dense")
            )
        equivalent = result.fidelity > 1.0 - self.epsilon
        note = None
        if not equivalent and result.is_lower_bound:
            note = (
                "fidelity is a truncated lower bound; rerun without early "
                "termination or term caps for a definitive negative answer"
            )
        return CheckResult(
            equivalent=equivalent,
            epsilon=self.epsilon,
            fidelity=result.fidelity,
            is_lower_bound=result.is_lower_bound,
            stats=result.stats,
            algorithm=algorithm,
            note=note,
        )


def approx_equivalent(
    ideal: QuantumCircuit,
    noisy: QuantumCircuit,
    epsilon: float,
    algorithm: str = "auto",
    **kwargs,
) -> bool:
    """One-shot convenience wrapper around :class:`EquivalenceChecker`."""
    checker = EquivalenceChecker(epsilon=epsilon, algorithm=algorithm, **kwargs)
    return checker.check(ideal, noisy).equivalent


def jamiolkowski_fidelity(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    algorithm: str = "alg2",
    **kwargs,
) -> float:
    """Compute ``F_J`` with the chosen algorithm ('alg1', 'alg2', 'dense')."""
    if algorithm == "alg1":
        return fidelity_individual(noisy, ideal, **kwargs).fidelity
    if algorithm == "alg2":
        return fidelity_collective(noisy, ideal, **kwargs).fidelity
    if algorithm == "dense":
        return jamiolkowski_fidelity_dense(noisy, ideal, **kwargs)
    raise ValueError(f"unknown algorithm {algorithm!r}")
