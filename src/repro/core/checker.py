"""The epsilon-equivalence checker (the paper's Problem 1).

Given an ideal circuit ``C`` and a noisy implementation ``N``, decide
``C ~eps N``, i.e. ``F_J(E_N, U_C) > 1 - eps``.

.. deprecated::
    :class:`EquivalenceChecker` is a thin compatibility shim over the
    session API (:class:`~repro.core.session.CheckConfig` +
    :class:`~repro.core.session.CheckSession`); new code should use
    :class:`repro.api.Engine` — the typed request/response front door
    that owns sessions, the worker pool and the shared cache — or the
    session API directly when holding circuit objects.  The shim keeps
    working (it now emits a :class:`DeprecationWarning` naming the
    replacement) and validates its arguments through the same config,
    so typos fail at construction time.
"""

from __future__ import annotations

import warnings

from ..circuits import QuantumCircuit
from .algorithm1 import fidelity_individual
from .algorithm2 import fidelity_collective
from .jamiolkowski import jamiolkowski_fidelity_dense
from .session import AUTO_ALG1_MAX_NOISES, CheckConfig, CheckSession
from .stats import CheckResult

__all__ = [
    "AUTO_ALG1_MAX_NOISES",
    "EquivalenceChecker",
    "approx_equivalent",
    "jamiolkowski_fidelity",
]


class EquivalenceChecker:
    """Approximate equivalence checking of noisy quantum circuits.

    Deprecated kwargs-style front end; equivalent to::

        CheckSession(CheckConfig(epsilon=..., algorithm=..., ...))

    kept so existing code, tests and benchmarks continue to work.
    """

    def __init__(
        self,
        epsilon: float = 0.01,
        algorithm: str = "auto",
        backend: str = "tdd",
        order_method: str = "tree_decomposition",
        use_local_optimisations: bool = False,
        alg1_max_noises: int = AUTO_ALG1_MAX_NOISES,
    ):
        warnings.warn(
            "EquivalenceChecker is deprecated; use repro.Engine (typed "
            "CheckRequest/CheckResponse front door) or CheckSession for "
            "in-process circuit objects — see docs/api.md for the "
            "migration table",
            DeprecationWarning,
            stacklevel=2,
        )
        # CheckConfig validates every field (epsilon range, algorithm,
        # backend registry membership, ordering heuristic).
        self._session = CheckSession(
            CheckConfig(
                epsilon=epsilon,
                algorithm=algorithm,
                backend=backend,
                order_method=order_method,
                use_local_optimisations=use_local_optimisations,
                alg1_max_noises=alg1_max_noises,
            )
        )

    @property
    def config(self) -> CheckConfig:
        """The underlying frozen configuration."""
        return self._session.config

    @property
    def session(self) -> CheckSession:
        """The underlying session (shared backend state lives here)."""
        return self._session

    def _config_property(name):  # noqa: N805 - descriptor factory
        def getter(self):
            return getattr(self.config, name)

        def setter(self, value):
            # The old class stored plain writable attributes; keep
            # mutation working by rebuilding the session (re-validated).
            self._session = CheckSession(
                self.config.replace(**{name: value})
            )

        return property(getter, setter)

    epsilon = _config_property("epsilon")
    algorithm = _config_property("algorithm")
    backend = _config_property("backend")
    order_method = _config_property("order_method")
    use_local_optimisations = _config_property("use_local_optimisations")
    alg1_max_noises = _config_property("alg1_max_noises")
    del _config_property

    def select_algorithm(self, noisy: QuantumCircuit) -> str:
        """Resolve 'auto' to a concrete algorithm for this circuit."""
        return self._session.select_algorithm(noisy)

    def check(
        self, ideal: QuantumCircuit, noisy: QuantumCircuit
    ) -> CheckResult:
        """Decide ``ideal ~eps noisy``."""
        return self._session.check(ideal, noisy)


def approx_equivalent(
    ideal: QuantumCircuit,
    noisy: QuantumCircuit,
    epsilon: float,
    algorithm: str = "auto",
    **kwargs,
) -> bool:
    """One-shot convenience wrapper around :class:`CheckSession`."""
    session = CheckSession(epsilon=epsilon, algorithm=algorithm, **kwargs)
    return session.check(ideal, noisy).equivalent


def jamiolkowski_fidelity(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    algorithm: str = "alg2",
    **kwargs,
) -> float:
    """Compute ``F_J`` with the chosen algorithm ('alg1', 'alg2', 'dense')."""
    if algorithm == "alg1":
        return fidelity_individual(noisy, ideal, **kwargs).fidelity
    if algorithm == "alg2":
        return fidelity_collective(noisy, ideal, **kwargs).fidelity
    if algorithm == "dense":
        return jamiolkowski_fidelity_dense(noisy, ideal, **kwargs)
    raise ValueError(f"unknown algorithm {algorithm!r}")
