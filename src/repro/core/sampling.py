"""Sampled fidelity estimation — the paper's "future work" extension.

The conclusion of the paper proposes "select[ing] a small subset of trace
terms to efficiently approximate the fidelity computation in Alg. I".
For *mixed-unitary* noise (every Kraus operator is a scaled unitary,
``N_k = sqrt(w_k) V_k`` — true of all Pauli-type channels including the
experiments' depolarising noise), the trace sum is exactly an expectation:

``F_J = E_{i ~ w}[ |tr(U† V_i)|² / d² ]``

where each site's index is drawn independently with probability ``w_k``
and ``V_i`` is the circuit with the sampled *unitary* Kraus parts plugged
in.  Each sample lies in [0, 1], so a Hoeffding bound gives a rigorous
confidence radius after ``m`` samples.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..circuits import QuantumCircuit
from ..gates import Gate
from ..linalg import dagger
from ..tdd import TddManager, contract_network_scalar, manager_for_network
from .miter import alg1_trace_network
from .stats import RunStats


@dataclass
class SampledFidelityResult:
    """Monte-Carlo estimate of the Jamiolkowski fidelity."""

    estimate: float
    #: Hoeffding half-width at the requested confidence level.
    confidence_radius: float
    confidence_level: float
    num_samples: int
    stats: RunStats = field(default_factory=RunStats)

    @property
    def lower(self) -> float:
        """Lower end of the confidence interval (clamped to [0, 1])."""
        return max(0.0, self.estimate - self.confidence_radius)

    @property
    def upper(self) -> float:
        """Upper end of the confidence interval (clamped to [0, 1])."""
        return min(1.0, self.estimate + self.confidence_radius)


def mixed_unitary_decomposition(channel) -> Optional[List[tuple]]:
    """Decompose a channel as ``{(w_k, V_k)}`` with unitary ``V_k``.

    Returns None when the channel is not mixed-unitary (e.g. amplitude
    damping), in which case sampling does not apply.
    """
    pairs = []
    for op in channel.kraus_operators:
        weight = float(np.real(np.trace(dagger(op) @ op))) / op.shape[0]
        if weight <= 1e-14:
            pairs.append((0.0, np.eye(op.shape[0], dtype=complex)))
            continue
        unitary = op / math.sqrt(weight)
        if not np.allclose(
            unitary @ dagger(unitary), np.eye(op.shape[0]), atol=1e-8
        ):
            return None
        pairs.append((weight, unitary))
    total = sum(w for w, _ in pairs)
    if not math.isclose(total, 1.0, abs_tol=1e-8):
        return None
    return pairs


def fidelity_sampled(
    noisy: QuantumCircuit,
    ideal: QuantumCircuit,
    num_samples: int = 200,
    confidence_level: float = 0.95,
    seed: Optional[int] = None,
    order_method: str = "tree_decomposition",
) -> SampledFidelityResult:
    """Estimate ``F_J`` by sampling Kraus selections (mixed-unitary noise).

    Raises ``ValueError`` if any noise site is not mixed-unitary.
    """
    if num_samples < 1:
        raise ValueError("need at least one sample")
    sites = []
    for inst in noisy.noise_instructions():
        pairs = mixed_unitary_decomposition(inst.operation)
        if pairs is None:
            raise ValueError(
                f"channel {inst.name!r} is not mixed-unitary; "
                "fidelity_sampled only applies to random-unitary noise"
            )
        sites.append(pairs)

    rng = np.random.default_rng(seed)
    dim = 2**ideal.num_qubits
    stats = RunStats(algorithm="alg1_sampled",
                     terms_total=noisy.num_kraus_terms)
    start = time.perf_counter()

    manager: Optional[TddManager] = None
    order = None
    values = []
    for _ in range(num_samples):
        selection = tuple(
            int(rng.choice(len(pairs), p=[w for w, _ in pairs]))
            for pairs in sites
        )
        sampled = _plug_unitaries(noisy, sites, selection)
        network = alg1_trace_network(sampled, ideal)
        if order is None:
            manager, order = manager_for_network(network, order_method)
        trace = contract_network_scalar(network, order=order, manager=manager)
        values.append(min(abs(trace) ** 2 / dim**2, 1.0))
        stats.terms_computed += 1

    stats.time_seconds = time.perf_counter() - start
    estimate = float(np.mean(values))
    # Hoeffding: P(|mean - E| >= r) <= 2 exp(-2 m r^2).
    delta = 1.0 - confidence_level
    radius = math.sqrt(math.log(2.0 / delta) / (2.0 * num_samples))
    return SampledFidelityResult(
        estimate=estimate,
        confidence_radius=radius,
        confidence_level=confidence_level,
        num_samples=num_samples,
        stats=stats,
    )


def _plug_unitaries(
    noisy: QuantumCircuit, sites: List[List[tuple]], selection: tuple
) -> QuantumCircuit:
    """Replace each channel with the sampled (unit-weight) unitary part."""
    out = QuantumCircuit(noisy.num_qubits, f"{noisy.name}_sample")
    site = 0
    for inst in noisy:
        if inst.is_noise:
            _, unitary = sites[site][selection[site]]
            out.append(Gate(f"sample{site}", unitary), inst.qubits)
            site += 1
        else:
            out.append(inst.operation, inst.qubits)
    return out
