"""The asyncio HTTP service over :class:`~repro.api.engine.Engine`.

One :class:`ReproService` owns one engine and serves the versioned wire
schema over HTTP/1.1 (stdlib ``asyncio.start_server`` — no framework):

========================  ==================================================
``POST /v1/check``        one ``CheckRequest`` wire JSON in, one
                          ``CheckResponse`` wire JSON out
``POST /v1/batch``        NDJSON request rows in, order-preserving,
                          error-isolating chunked NDJSON records out
                          (:meth:`Engine.check_iter` semantics)
``POST /v1/jobs``         submit; returns a job id to poll
``GET /v1/jobs/{id}``     poll/collect a submitted job (collectable once)
``GET /metrics``          Prometheus text format: request counters and
                          latency histograms plus the engine's cumulative
                          :class:`~repro.core.stats.StatsAggregator`
                          counters (cache hits, wall vs CPU seconds)
``GET /healthz``          liveness probe
========================  ==================================================

Typed :class:`~repro.api.errors.ReproError` codes map onto HTTP statuses
through :data:`STATUS_BY_CODE` — the body of every failure is the same
error record the wire schema already defines, so HTTP callers and CLI
batch consumers parse one shape.

Blocking engine calls run on a bounded thread pool sized to
``max_inflight``; admission control answers request number
``max_inflight + 1`` with ``503`` + ``Retry-After`` instead of queueing
(the pool can never build a backlog, so the service cannot deadlock
under saturation).  Per-request deadlines come from the
``X-Repro-Timeout`` header (capped by the server default); an expired
deadline answers ``504`` with a ``deadline_exceeded`` record while the
abandoned thread finishes in the background, still holding its
admission slot so capacity accounting stays truthful.  Every request
emits one structured JSON log line.  ``SIGTERM``/``SIGINT`` stop the
listener, drain in-flight requests (grace-bounded) and close the
engine.

Observability: an ``X-Repro-Trace: 1`` header on ``POST /v1/check``
turns on span tracing for that request (the span tree rides back inline
as the result's ``trace`` key), every successful check feeds the
``repro_phase_seconds{phase=...}`` histogram, and the access log's
``trace_id`` field is the same 16-hex :meth:`CheckRequest.trace_id`
that job ids and span traces carry — see ``docs/observability.md``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional, Tuple

from ..api.engine import Engine
from ..api.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    JobNotFoundError,
    OverloadedError,
    ReproError,
)
from ..api.request import CheckRequest
from ..api.response import CheckResponse
from ..core.stats import SCHEMA_VERSION, StatsAggregator
from ..trace import tree_phase_seconds
from .http import (
    LAST_CHUNK,
    HttpError,
    HttpRequest,
    read_request,
    render_chunk,
    render_chunked_head,
    render_response,
)
from .metrics import MetricsRegistry, render_counter_block

#: Error-code → HTTP-status mapping of the service.  Stable API, like
#: the codes themselves: clients branch on these statuses.  Codes
#: absent here (future taxonomy growth) answer 500.
STATUS_BY_CODE: Dict[str, int] = {
    "invalid_request": 400,
    "unknown_field": 400,
    "unsupported_schema_version": 400,
    "invalid_circuit_spec": 400,
    "invalid_noise_spec": 400,
    "invalid_config": 400,
    "circuit_load_failed": 400,
    "job_not_found": 404,
    "check_failed": 500,
    "repro_error": 500,
    "deadline_exceeded": 504,
    "overloaded": 503,
    # cluster peers out of reach: a retryable service-side condition,
    # like overload — though the checking paths are fail-open and only
    # surface these codes from fail-closed administrative calls
    "remote_unavailable": 503,
    "worker_lost": 503,
}


def http_status_for(code: str) -> int:
    """The HTTP status serving a :class:`ReproError` machine code."""
    return STATUS_BY_CODE.get(code, 500)


def request_log_fingerprint(request: CheckRequest) -> str:
    """A cheap, stable identity of a request for log correlation.

    Delegates to :meth:`CheckRequest.trace_id` — the access log, job ids
    and span traces share one 16-hex field, so one ``grep`` follows a
    request across all three.  This is *not* the result-cache key
    (:meth:`Engine.fingerprint` hashes the resolved circuit content,
    which costs a resolution); a log line must never pay
    contraction-scale work.
    """
    return request.trace_id()


def _job_trace_id(job_id: str) -> Optional[str]:
    """The 16-hex trace id embedded in a ``job-<id>-<n>`` job id."""
    parts = job_id.split("-")
    if len(parts) == 3 and parts[0] == "job" and len(parts[1]) == 16:
        return parts[1]
    return None


_TRUTHY_HEADER = ("1", "true", "yes", "on")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`ReproService`."""

    host: str = "127.0.0.1"
    port: int = 8000
    #: admission-control bound: requests in flight beyond this are
    #: answered 503 + Retry-After instead of queued
    max_inflight: int = 8
    #: default per-request deadline (seconds); the ``X-Repro-Timeout``
    #: header can shorten but never extend it
    request_timeout: float = 30.0
    #: seconds the shutdown path waits for in-flight requests
    drain_grace_seconds: float = 10.0
    #: advisory Retry-After (seconds) on 503 rejections
    retry_after_seconds: int = 1

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.drain_grace_seconds < 0:
            raise ValueError("drain_grace_seconds must be non-negative")


@dataclass
class _Outcome:
    """One handler's answer, before HTTP framing."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()
    #: NDJSON line stream (chunked response) instead of a fixed body
    stream: Optional[AsyncIterator[bytes]] = None
    #: extra structured-log fields (verdict, error_code, cache hits...)
    log: dict = field(default_factory=dict)


def _json_outcome(status: int, payload: dict, **kwargs) -> _Outcome:
    return _Outcome(
        status=status,
        body=(json.dumps(payload) + "\n").encode(),
        **kwargs,
    )


def _error_outcome(error: ReproError, **kwargs) -> _Outcome:
    outcome = _json_outcome(http_status_for(error.code), error.to_dict(),
                            **kwargs)
    outcome.log["error_code"] = error.code
    return outcome


class ReproService:
    """One engine, served over asyncio HTTP/1.1.

    Construction is cheap; :meth:`start` binds the socket.  The service
    assumes exclusive ownership of the engine's lifecycle: shutdown
    closes it.
    """

    def __init__(
        self,
        engine: Engine,
        config: Optional[ServiceConfig] = None,
        *,
        log_stream=None,
        **overrides,
    ):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServiceConfig or overrides")
        self.engine = engine
        self.config = config
        self.log_stream = log_stream if log_stream is not None else sys.stderr
        #: cumulative per-check RunStats counters, shared with /metrics
        self.stats = StatsAggregator()
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_inflight,
            thread_name_prefix="repro-service",
        )
        self._inflight = 0  # touched only on the event loop
        self._port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()  # no work yet
        self._connections: set = set()

        self.registry = MetricsRegistry()
        self._requests_total = self.registry.counter(
            "repro_requests_total",
            "HTTP requests served, by method, path and status.",
            ("method", "path", "status"),
        )
        self._request_seconds = self.registry.histogram(
            "repro_request_seconds",
            "Wall-clock request latency in seconds, by path.",
            ("path",),
        )
        self._inflight_gauge = self.registry.gauge(
            "repro_inflight",
            "Requests currently admitted and executing.",
        )
        self._batch_rows_total = self.registry.counter(
            "repro_batch_rows_total",
            "NDJSON batch rows streamed, by verdict.",
            ("verdict",),
        )
        self._phase_seconds = self.registry.histogram(
            "repro_phase_seconds",
            "Per-check seconds attributed to each phase "
            "(resolve/cache/plan/compile/execute); span-accurate when "
            "the check was traced, coarse RunStats split otherwise.",
            ("phase",),
        )

    # --- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds; keeps
        answering after shutdown so late callers see a refused connect
        rather than a missing attribute)."""
        if self._port is None:
            raise RuntimeError("service is not started")
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._log({
            "event": "ready",
            "host": self.config.host,
            "port": self.port,
            "max_inflight": self.config.max_inflight,
            "request_timeout": self.config.request_timeout,
        })

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (idempotent, signal-handler safe)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)

    async def wait_closed(self) -> None:
        """Block until a requested shutdown fully drains.

        Stops the listener, waits up to ``drain_grace_seconds`` for
        in-flight requests, closes lingering connections, shuts the
        thread pool down and closes the engine.
        """
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._drained.wait(), self.config.drain_grace_seconds
            )
            drained = True
        except asyncio.TimeoutError:
            drained = False
        for writer in list(self._connections):
            writer.close()
        # cancel=True would also abandon queued work; admission control
        # guarantees there is none, so this just stops idle threads.
        self._executor.shutdown(wait=drained)
        self.engine.close()
        self._log({"event": "shutdown", "drained": drained})

    async def run(self) -> None:
        """:meth:`start` + serve until :meth:`request_shutdown`."""
        await self.start()
        await self.wait_closed()

    # --- admission + execution ------------------------------------------------

    def _try_acquire_slot(self) -> bool:
        if self._inflight >= self.config.max_inflight:
            return False
        self._inflight += 1
        self._inflight_gauge.inc()
        self._drained.clear()
        return True

    def _release_slot(self) -> None:
        self._inflight -= 1
        self._inflight_gauge.dec()
        if self._inflight == 0:
            self._drained.set()

    def _release_slot_threadsafe(self, _future) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._release_slot)

    def _deadline_for(self, request: HttpRequest) -> float:
        """The request's deadline (seconds): header-capped server default."""
        raw = request.headers.get("x-repro-timeout")
        if raw is None:
            return self.config.request_timeout
        try:
            wanted = float(raw)
        except ValueError:
            raise InvalidRequestError(
                f"X-Repro-Timeout must be a number of seconds, got {raw!r}"
            ) from None
        if not wanted > 0:
            raise InvalidRequestError(
                f"X-Repro-Timeout must be positive, got {raw!r}"
            )
        return min(wanted, self.config.request_timeout)

    async def _run_blocking(self, fn, deadline: float):
        """Run ``fn`` on the pool under ``deadline``.

        The admission slot is released when the *thread* finishes, not
        when the waiter gives up — a timed-out request keeps counting
        against ``max_inflight`` until its work actually ends, so the
        pool can never oversubscribe.
        """
        assert self._loop is not None
        future = self._loop.run_in_executor(self._executor, fn)
        future.add_done_callback(lambda f: f.exception())  # never unobserved
        future.add_done_callback(self._release_slot_threadsafe)
        try:
            return await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"request exceeded its {deadline:g}s deadline"
            ) from None

    def _overloaded(self) -> _Outcome:
        error = OverloadedError(
            f"{self.config.max_inflight} requests already in flight; "
            "retry shortly"
        )
        outcome = _error_outcome(error)
        outcome.headers = (
            ("Retry-After", str(self.config.retry_after_seconds)),
        )
        return outcome

    # --- connection + dispatch ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while not self._shutdown.is_set():
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    error = InvalidRequestError(exc.message)
                    body = (json.dumps(error.to_dict()) + "\n").encode()
                    writer.write(render_response(
                        exc.status, body, keep_alive=False
                    ))
                    await writer.drain()
                    self._observe("?", "?", exc.status, 0.0,
                                  {"error_code": error.code})
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return

                started = time.perf_counter()
                outcome = await self._dispatch(request)
                keep_alive = (
                    request.keep_alive and not self._shutdown.is_set()
                )
                if outcome.stream is not None:
                    await self._write_stream(writer, outcome, keep_alive)
                else:
                    writer.write(render_response(
                        outcome.status,
                        outcome.body,
                        content_type=outcome.content_type,
                        extra_headers=outcome.headers,
                        keep_alive=keep_alive,
                    ))
                    await writer.drain()
                elapsed = time.perf_counter() - started
                self._observe(
                    request.method, self._route_label(request.path),
                    outcome.status, elapsed, outcome.log,
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _write_stream(
        self, writer, outcome: _Outcome, keep_alive: bool
    ) -> None:
        writer.write(render_chunked_head(
            outcome.status,
            content_type=outcome.content_type,
            keep_alive=keep_alive,
        ))
        async for line in outcome.stream:
            if line:
                writer.write(render_chunk(line))
                await writer.drain()
        writer.write(LAST_CHUNK)
        await writer.drain()

    @staticmethod
    def _route_label(path: str) -> str:
        """Collapse per-id paths so metric label cardinality stays flat."""
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{id}"
        return path

    def _observe(
        self, method: str, path: str, status: int, elapsed: float, log: dict
    ) -> None:
        self._requests_total.labels(
            method=method, path=path, status=str(status)
        ).inc()
        self._request_seconds.labels(path=path).observe(elapsed)
        record = {
            "event": "request",
            "ts": time.time(),
            "method": method,
            "path": path,
            "status": status,
            "wall_ms": round(elapsed * 1000.0, 3),
        }
        record.update(log)
        self._log(record)

    def _log(self, record: dict) -> None:
        try:
            print(json.dumps(record), file=self.log_stream, flush=True)
        except (ValueError, OSError):
            pass  # closed stream during teardown; logging must not raise

    async def _dispatch(self, request: HttpRequest) -> _Outcome:
        route = (request.method, self._route_label(request.path))
        if route == ("GET", "/healthz"):
            return _json_outcome(200, {
                "status": "ok", "schema_version": SCHEMA_VERSION,
            })
        if route == ("GET", "/metrics"):
            return self._metrics_outcome()
        try:
            if route == ("POST", "/v1/check"):
                return await self._handle_check(request)
            if route == ("POST", "/v1/batch"):
                return await self._handle_batch(request)
            if route == ("POST", "/v1/jobs"):
                return await self._handle_submit(request)
            if route == ("GET", "/v1/jobs/{id}"):
                return await self._handle_job_poll(request)
        except ReproError as error:
            return _error_outcome(error)
        known_paths = ("/healthz", "/metrics", "/v1/check", "/v1/batch",
                       "/v1/jobs", "/v1/jobs/{id}")
        if self._route_label(request.path) in known_paths:
            outcome = _error_outcome(InvalidRequestError(
                f"{request.method} is not supported on {request.path}"
            ))
            outcome.status = 405
            return outcome
        outcome = _error_outcome(InvalidRequestError(
            f"unknown path {request.path!r}"
        ))
        outcome.status = 404
        return outcome

    # --- endpoints ------------------------------------------------------------

    def _parse_check_request(self, body: bytes) -> CheckRequest:
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise InvalidRequestError(
                f"request body is not valid UTF-8: {exc}"
            ) from None
        return CheckRequest.from_json(text)

    def _response_log(self, response: CheckResponse) -> dict:
        log = {"verdict": response.verdict}
        if response.request is not None:
            log["trace_id"] = request_log_fingerprint(response.request)
        if response.ok:
            stats = response.stats
            log["plan_cache_hit"] = stats.plan_cache_hit
            log["result_cache_hit"] = stats.result_cache_hit
        else:
            log["error_code"] = response.error_code
        return log

    def _observe_phases(self, response: CheckResponse) -> None:
        """Feed ``repro_phase_seconds`` from one successful response.

        A traced result carries its span tree, so the per-phase split is
        exact; untraced results fall back to the coarse split RunStats
        already records (cache-hit time, planning vs the rest).
        """
        if not response.ok:
            return
        stats = response.stats
        trace = response.result.trace if response.result is not None else None
        if trace is not None:
            phases = tree_phase_seconds(trace)
        elif stats.result_cache_hit:
            phases = {"cache": stats.time_seconds}
        else:
            planning = min(stats.planning_seconds, stats.time_seconds)
            phases = {
                "plan": planning,
                "execute": stats.time_seconds - planning,
            }
        for phase, seconds in phases.items():
            if seconds > 0.0:
                self._phase_seconds.labels(phase=phase).observe(seconds)

    async def _handle_check(self, request: HttpRequest) -> _Outcome:
        check_request = self._parse_check_request(request.body)
        traced = str(
            request.headers.get("x-repro-trace", "")
        ).strip().lower() in _TRUTHY_HEADER
        if traced:
            # The header is sugar for config.trace=true: the span tree
            # rides back inline as the result's "trace" key.
            check_request = dataclasses.replace(
                check_request,
                config={**dict(check_request.config), "trace": True},
            )
        deadline = self._deadline_for(request)
        if not self._try_acquire_slot():
            return self._overloaded()
        response = await self._run_blocking(
            lambda: self.engine.respond(check_request), deadline
        )
        self.stats.add(response.stats)
        self._observe_phases(response)
        status = 200 if response.ok else http_status_for(response.error_code)
        outcome = _Outcome(
            status=status,
            body=(response.to_json() + "\n").encode(),
            log=self._response_log(response),
        )
        return outcome

    async def _handle_submit(self, request: HttpRequest) -> _Outcome:
        check_request = self._parse_check_request(request.body)
        deadline = self._deadline_for(request)
        if not self._try_acquire_slot():
            return self._overloaded()
        # submit resolves circuits (QASM parse, generator call) — that
        # belongs on the pool, not the event loop
        handle = await self._run_blocking(
            lambda: self.engine.submit(check_request), deadline
        )
        trace_id = request_log_fingerprint(check_request)
        return _json_outcome(202, {
            "schema_version": SCHEMA_VERSION,
            "id": handle.id,
            "state": self.engine.job_state(handle),
            "trace_id": trace_id,
        }, log={"job_id": handle.id, "trace_id": trace_id})

    async def _handle_job_poll(self, request: HttpRequest) -> _Outcome:
        job_id = request.path.rsplit("/", 1)[1]
        state = self.engine.job_state(job_id)
        if state == "unknown":
            raise JobNotFoundError(
                f"unknown, already-collected or evicted job {job_id!r}"
            )
        if state == "running":
            body = {
                "schema_version": SCHEMA_VERSION,
                "id": job_id,
                "state": state,
            }
            trace_id = _job_trace_id(job_id)
            if trace_id is not None:
                body["trace_id"] = trace_id
            return _json_outcome(
                202, body, log={"job_id": job_id, "state": state}
            )
        # done / failed / deferred: collect (deferred jobs run now)
        deadline = self._deadline_for(request)
        if not self._try_acquire_slot():
            return self._overloaded()
        response = await self._run_blocking(
            lambda: self.engine.result(job_id), deadline
        )
        self.stats.add(response.stats)
        self._observe_phases(response)
        status = 200 if response.ok else http_status_for(response.error_code)
        log = self._response_log(response)
        log["job_id"] = job_id
        trace_id = _job_trace_id(job_id)
        if trace_id is not None:
            log.setdefault("trace_id", trace_id)
        return _Outcome(
            status=status,
            body=(response.to_json() + "\n").encode(),
            log=log,
        )

    async def _handle_batch(self, request: HttpRequest) -> _Outcome:
        """NDJSON rows in, chunked NDJSON records out, order preserved.

        Mirrors the CLI batch semantics: a row that fails to parse
        becomes an ``ERROR`` record at its position and the rest still
        run.  The whole batch occupies one admission slot (one pool
        thread walks :meth:`Engine.check_iter`).
        """
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise InvalidRequestError(
                f"request body is not valid UTF-8: {exc}"
            ) from None
        entries = []  # (request-or-None, error-or-None), input order
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                check_request = CheckRequest.from_json(line)
            except ReproError as exc:
                entries.append((None, exc))
                continue
            entries.append((check_request, None))
        if not entries:
            raise InvalidRequestError(
                "batch body is empty: send one request JSON object per line"
            )
        deadline = self._deadline_for(request)
        if not self._try_acquire_slot():
            return self._overloaded()
        outcome = _Outcome(
            status=200,
            content_type="application/x-ndjson",
            stream=self._batch_stream(entries, deadline),
            log={"rows": len(entries)},
        )
        return outcome

    async def _batch_stream(self, entries, deadline: float):
        assert self._loop is not None
        queue: asyncio.Queue = asyncio.Queue()
        loop = self._loop

        def produce() -> None:
            try:
                responses = self.engine.check_iter(
                    req for req, _ in entries if req is not None
                )
                for index, (check_request, error) in enumerate(entries):
                    if error is not None:
                        record = error.to_dict()
                    else:
                        response = next(responses)
                        self.stats.add(response.stats)
                        self._observe_phases(response)
                        record = response.to_dict()
                    record["index"] = index
                    line = (json.dumps(record) + "\n").encode()
                    loop.call_soon_threadsafe(
                        queue.put_nowait, (record["verdict"], line)
                    )
            except BaseException as exc:  # surface as a final ERROR row
                error = ReproError.wrap(exc)
                line = (json.dumps(error.to_dict()) + "\n").encode()
                loop.call_soon_threadsafe(
                    queue.put_nowait, ("ERROR", line)
                )
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, None)

        future = loop.run_in_executor(self._executor, produce)
        future.add_done_callback(lambda f: f.exception())
        future.add_done_callback(self._release_slot_threadsafe)

        remaining = deadline
        started = time.perf_counter()
        while True:
            try:
                item = await asyncio.wait_for(queue.get(), max(
                    0.001, remaining - (time.perf_counter() - started)
                ))
            except asyncio.TimeoutError:
                error = DeadlineExceededError(
                    f"batch exceeded its {deadline:g}s deadline; "
                    "remaining rows were not checked"
                )
                self._batch_rows_total.labels(verdict="ERROR").inc()
                yield (json.dumps(error.to_dict()) + "\n").encode()
                return
            if item is None:
                return
            verdict, line = item
            self._batch_rows_total.labels(verdict=verdict).inc()
            yield line

    def _metrics_outcome(self) -> _Outcome:
        from ..cluster import metrics as _cluster_metrics

        snapshot = self.stats.snapshot()
        counters = {
            "repro_checks_total": snapshot["checks"],
            "repro_check_wall_seconds_total": snapshot["wall_seconds"],
            "repro_check_cpu_seconds_total": snapshot["cpu_seconds"],
            "repro_plan_cache_hits_total": snapshot["plan_cache_hits"],
            "repro_planning_seconds_total": snapshot["planning_seconds"],
            "repro_plan_trials_total": snapshot["plan_trials"],
            "repro_result_cache_hits_total": snapshot["result_cache_hits"],
            "repro_batched_slice_calls_total": snapshot[
                "batched_slice_calls"
            ],
        }
        # fail-open cluster traffic: these counters are the only way a
        # dead cache server or lost worker becomes visible
        counters.update(_cluster_metrics.metric_counters())
        extra = render_counter_block(counters)
        page = self.registry.render(extra=extra)
        return _Outcome(
            status=200,
            body=page.encode(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )


async def serve(
    engine: Engine,
    config: Optional[ServiceConfig] = None,
    *,
    install_signal_handlers: bool = True,
    log_stream=None,
    **overrides,
) -> None:
    """Run a :class:`ReproService` until ``SIGTERM``/``SIGINT``.

    The blocking entry point behind ``repro serve``: binds, installs
    signal handlers (where the platform supports them), serves, drains
    and closes the engine on the way out.
    """
    service = ReproService(
        engine, config, log_stream=log_stream, **overrides
    )
    await service.start()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, service.request_shutdown
                )
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal support
    await service.wait_closed()


class ServiceThread:
    """A service on a background thread — tests, benchmarks, examples.

    Context manager: entering starts the loop thread and blocks until
    the socket is bound; exiting triggers a graceful shutdown and
    joins.  ``port`` resolves ephemeral (``port=0``) binds.

    >>> with ServiceThread(Engine()) as handle:       # doctest: +SKIP
    ...     urllib.request.urlopen(
    ...         f"http://127.0.0.1:{handle.port}/healthz")
    """

    def __init__(
        self,
        engine: Engine,
        config: Optional[ServiceConfig] = None,
        *,
        log_stream=None,
        **overrides,
    ):
        if config is None:
            overrides.setdefault("port", 0)
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServiceConfig or overrides")
        self.service = ReproService(engine, config, log_stream=log_stream)
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name="repro-service-loop", daemon=True
        )

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _main(self) -> None:
        async def body():
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.service.wait_closed()

        try:
            asyncio.run(body())
        except BaseException:
            if not self._ready.is_set():
                self._ready.set()

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            self.service.request_shutdown()
            self._thread.join()

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
