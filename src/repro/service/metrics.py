"""Prometheus-text-format metrics for :mod:`repro.service`.

A tiny, thread-safe subset of the Prometheus client model — counters,
gauges and histograms with static label sets — rendered in the v0.0.4
text exposition format that every Prometheus-compatible scraper reads.
No external client library: the service is dependency-free by design,
and the exposition format is a stable, trivially-rendered line protocol.

>>> registry = MetricsRegistry()
>>> requests = registry.counter(
...     "repro_requests_total", "Requests served", ("method", "status"))
>>> requests.labels(method="POST", status="200").inc()
>>> print(registry.render())  # doctest: +SKIP
# HELP repro_requests_total Requests served
# TYPE repro_requests_total counter
repro_requests_total{method="POST",status="200"} 1
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Default latency buckets (seconds): sub-millisecond cache hits up to
#: multi-second cold contractions.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in labels
    )
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: a named family of labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The child for one label assignment (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _samples(self) -> Iterable[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """``(suffix, labels, value)`` triples, one per exposition line."""
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            labels = tuple(zip(self.labelnames, key))
            yield from child._samples(labels)  # type: ignore[attr-defined]

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines += [
            f"{self.name}{suffix}{render_labels(labels)} "
            f"{_format_value(value)}"
            for suffix, labels, value in self._samples()
        ]
        return "\n".join(lines)


class _CounterChild:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _samples(self, labels):
        yield "", labels, self.value


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def _new_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Unlabelled convenience (only for label-less counters)."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        return self.labels().value


class _GaugeChild:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _samples(self, labels):
        yield "", labels, self.value


class Gauge(_Metric):
    """A value that can go up and down (in-flight requests)."""

    kind = "gauge"

    def _new_child(self):
        return _GaugeChild()

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    @property
    def value(self) -> float:
        return self.labels().value


class _HistogramChild:
    def __init__(self, buckets: Tuple[float, ...]):
        self._lock = threading.Lock()
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def _samples(self, labels):
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
        cumulative = 0
        for bound, count in zip(
            tuple(self.buckets) + (float("inf"),), counts
        ):
            cumulative += count
            le = "+Inf" if bound == float("inf") else _format_value(bound)
            yield "_bucket", labels + (("le", le),), cumulative
        yield "_sum", labels, total_sum
        yield "_count", labels, cumulative


class Histogram(_Metric):
    """A latency/size distribution with cumulative buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.buckets = tuple(sorted(buckets))
        super().__init__(name, help_text, labelnames)

    def _new_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """An ordered family registry rendering the full exposition page."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: List[_Metric] = []

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if any(m.name == metric.name for m in self._metrics):
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics.append(metric)
        return metric

    def counter(
        self, name: str, help_text: str, labelnames: Tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(
        self, name: str, help_text: str, labelnames: Tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labelnames, buckets))

    def render(self, extra: Optional[str] = None) -> str:
        """The exposition page (trailing newline included, per spec)."""
        with self._lock:
            metrics = list(self._metrics)
        parts = [metric.render() for metric in metrics]
        if extra:
            parts.append(extra.rstrip("\n"))
        return "\n".join(parts) + "\n"


def render_counter_block(counters: Dict[str, float], prefix: str = "") -> str:
    """Plain unlabelled counter lines from a snapshot dict.

    How :class:`~repro.core.stats.StatsAggregator` counters reach the
    exposition page: each ``{name: value}`` pair becomes one
    ``counter``-typed family (peaks render as gauges upstream by naming
    convention — this helper does not distinguish; callers pick names).
    """
    lines = []
    for name, value in counters.items():
        full = f"{prefix}{name}"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_format_value(float(value))}")
    return "\n".join(lines)
