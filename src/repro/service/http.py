"""A minimal, dependency-free HTTP/1.1 layer for :mod:`repro.service`.

Just enough protocol for the checking service: request-line + header
parsing off an :class:`asyncio.StreamReader`, ``Content-Length`` bodies,
keep-alive, fixed and ``chunked`` responses.  No TLS, no request-side
chunked encoding, no multipart — clients that need those put a real
proxy in front.  Everything here is bytes-in/bytes-out and carries no
knowledge of the wire schema; the server module owns routing and JSON.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Per-request parsing bounds: a public-facing parser must bound what a
#: client can make it buffer.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024


class HttpError(Exception):
    """A malformed or over-limit request, answered with ``status``."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    #: header names lower-cased; duplicate headers keep the last value
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Parse one request off ``reader``.

    Returns ``None`` on a clean end-of-stream before any byte of a new
    request (the keep-alive loop's exit), raises :class:`HttpError` for
    anything malformed or over the limits, and
    ``asyncio.IncompleteReadError`` if the peer vanishes mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request headers exceed the size limit")
    if len(head) > max_header_bytes:
        raise HttpError(413, "request headers exceed the size limit")

    lines = head.split(b"\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = (p.decode("latin-1") for p in parts)
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.decode("latin-1").strip().lower()] = (
            value.decode("latin-1").strip()
        )

    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(411, "chunked request bodies are not supported")
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {raw_length!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length {raw_length!r}")
    if length > max_body_bytes:
        raise HttpError(413, "request body exceeds the size limit")
    body = await reader.readexactly(length) if length else b""

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """A complete fixed-length response, ready to write."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines += [f"{name}: {value}" for name, value in extra_headers]
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def render_chunked_head(
    status: int,
    *,
    content_type: str = "application/x-ndjson",
    keep_alive: bool = True,
) -> bytes:
    """Response head opening a ``Transfer-Encoding: chunked`` stream."""
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Transfer-Encoding: chunked\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1")


def render_chunk(payload: bytes) -> bytes:
    """One chunk of a chunked stream (empty payloads are skipped by
    callers — an empty chunk would terminate the stream)."""
    return f"{len(payload):x}\r\n".encode("latin-1") + payload + b"\r\n"


#: The terminating chunk of a chunked stream.
LAST_CHUNK = b"0\r\n\r\n"
