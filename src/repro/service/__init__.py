"""repro.service — the asyncio HTTP service over :class:`repro.Engine`.

Dependency-free (stdlib ``asyncio`` only): one engine, served over
HTTP/1.1 with the versioned wire schema, Prometheus metrics, admission
control and per-request deadlines.  ``repro serve`` is the CLI front
door; :class:`ServiceThread` hosts a server in-process for tests,
benchmarks and examples.
"""

from .http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    HttpRequest,
    read_request,
    render_response,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_counter_block,
)
from .server import (
    STATUS_BY_CODE,
    ReproService,
    ServiceConfig,
    ServiceThread,
    http_status_for,
    request_log_fingerprint,
    serve,
)

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_counter_block",
    "STATUS_BY_CODE",
    "ReproService",
    "ServiceConfig",
    "ServiceThread",
    "http_status_for",
    "request_log_fingerprint",
    "serve",
]
