"""Channel representation conversions and derived physical channels.

Conversions between the three super-operator representations used in the
library — Kraus form, the (row-stacking) matrix representation
``M = sum_i K_i (x) K_i*``, and the Choi matrix — plus the thermal
relaxation channel built from T1/T2 times.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..linalg import COMPLEX
from .channels import KrausChannel, amplitude_damping, phase_damping


def superop_to_choi(matrix: np.ndarray) -> np.ndarray:
    """Reshuffle a row-stacking super-operator matrix into its Choi matrix.

    ``M[(r, c), (r', c')] = sum K[r, r'] K*[c, c']`` and the (unnormalised)
    Choi matrix is ``C[(r', r), (c', c)]`` — a transpose-reshuffle.
    """
    matrix = np.asarray(matrix, dtype=COMPLEX)
    dim_sq = matrix.shape[0]
    d = int(round(math.sqrt(dim_sq)))
    if d * d != dim_sq or matrix.shape != (dim_sq, dim_sq):
        raise ValueError(f"bad super-operator shape {matrix.shape}")
    m4 = matrix.reshape(d, d, d, d)  # [r, c, r', c']
    return np.transpose(m4, (2, 0, 3, 1)).reshape(dim_sq, dim_sq)


def choi_to_kraus(choi: np.ndarray, atol: float = 1e-10) -> List[np.ndarray]:
    """Extract Kraus operators from an (unnormalised) Choi matrix.

    Eigendecomposes the Choi matrix and keeps eigenvectors with
    eigenvalue above ``atol``.  The Choi convention matches
    :meth:`repro.noise.KrausChannel.choi_matrix` with
    ``normalised=False``: the vectorised Kraus operator sits in the
    eigenvector as ``vec[i * d + j] = K[j, i]``.
    """
    choi = np.asarray(choi, dtype=COMPLEX)
    dim_sq = choi.shape[0]
    d = int(round(math.sqrt(dim_sq)))
    if d * d != dim_sq:
        raise ValueError(f"Choi matrix dimension {dim_sq} is not a square")
    eigvals, eigvecs = np.linalg.eigh((choi + choi.conj().T) / 2)
    kraus = []
    for value, vector in zip(eigvals, eigvecs.T):
        if value < -1e-8:
            raise ValueError(
                f"Choi matrix is not positive semi-definite (eig {value:.3g})"
            )
        if value > atol:
            kraus.append(
                math.sqrt(value) * np.transpose(vector.reshape(d, d))
            )
    return kraus


def kraus_from_superop(
    matrix: np.ndarray, name: str = "from_superop", atol: float = 1e-10
) -> KrausChannel:
    """Recover a :class:`KrausChannel` from its matrix representation."""
    kraus = choi_to_kraus(superop_to_choi(matrix), atol=atol)
    return KrausChannel(kraus, name=name, validate=False)


def thermal_relaxation(
    t1: float, t2: float, gate_time: float
) -> KrausChannel:
    """Thermal relaxation over ``gate_time`` with relaxation times T1, T2.

    Composes amplitude damping (``gamma = 1 - exp(-t/T1)``) with the pure
    dephasing needed to bring the total coherence decay to
    ``exp(-t/T2)``.  Requires ``t2 <= 2 * t1`` (physicality).
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("unphysical relaxation times: T2 must be <= 2*T1")
    if gate_time < 0:
        raise ValueError("gate_time must be non-negative")
    gamma = 1.0 - math.exp(-gate_time / t1)
    # Amplitude damping alone decays coherence by exp(-t / (2 T1)); pure
    # dephasing supplies the remainder of exp(-t / T2).
    residual = math.exp(-gate_time / t2 + gate_time / (2 * t1))
    lam = 1.0 - residual * residual
    lam = min(max(lam, 0.0), 1.0)
    channel = amplitude_damping(gamma).compose(phase_damping(lam))
    return KrausChannel(
        channel.kraus_operators, name="thermal_relaxation", validate=False
    )
