"""Kraus channels and the canonical noise zoo from the paper's Example 2.

A :class:`KrausChannel` models a super-operator ``E(rho) = sum_i K_i rho K_i†``
with the completeness condition ``sum_i K_i† K_i = I``.  Parameterisation
follows the paper: e.g. a *bit flip* with parameter ``p`` keeps the state
with probability ``p`` and applies X with probability ``1 - p``, so the
experiments' "p = 0.999" is a 0.1% error rate.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..gates.standard import I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX
from ..linalg import COMPLEX, dagger, num_qubits_of


class KrausChannel:
    """A CPTP map in Kraus operator-sum form."""

    def __init__(
        self,
        kraus_operators: Sequence[np.ndarray],
        name: str = "kraus",
        validate: bool = True,
        atol: float = 1e-8,
    ):
        if not kraus_operators:
            raise ValueError("a channel needs at least one Kraus operator")
        ops = [np.asarray(op, dtype=COMPLEX) for op in kraus_operators]
        dim = ops[0].shape[0]
        for op in ops:
            if op.ndim != 2 or op.shape != (dim, dim):
                raise ValueError(
                    f"all Kraus operators must be {dim}x{dim}, got {op.shape}"
                )
        self._ops = ops
        self.name = name
        self.num_qubits = num_qubits_of(ops[0])
        if validate and not self.is_cptp(atol=atol):
            raise ValueError(
                f"Kraus operators of {name!r} violate sum_i K† K = I"
            )

    # --- basic views ---------------------------------------------------------

    @property
    def kraus_operators(self) -> List[np.ndarray]:
        """The Kraus operators (copy of the list; arrays shared)."""
        return list(self._ops)

    @property
    def num_kraus(self) -> int:
        """Number of Kraus operators."""
        return len(self._ops)

    @property
    def dim(self) -> int:
        """Hilbert-space dimension the channel acts on."""
        return self._ops[0].shape[0]

    def is_cptp(self, atol: float = 1e-8) -> bool:
        """Check the completeness relation (trace preservation)."""
        acc = sum(dagger(op) @ op for op in self._ops)
        return bool(np.allclose(acc, np.eye(self.dim), atol=atol))

    def is_unitary_channel(self, atol: float = 1e-8) -> bool:
        """True when the channel is a single unitary Kraus operator."""
        if len(self._ops) != 1:
            return False
        op = self._ops[0]
        return bool(np.allclose(op @ dagger(op), np.eye(self.dim), atol=atol))

    # --- semantics -----------------------------------------------------------

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """E(rho) = sum_i K_i rho K_i†."""
        rho = np.asarray(rho, dtype=COMPLEX)
        return sum(op @ rho @ dagger(op) for op in self._ops)

    def matrix_rep(self) -> np.ndarray:
        """The paper's matrix representation ``M_E = sum_i K_i (x) K_i*``.

        This is the 2l-qubit "gate" that replaces an l-qubit noise in
        Algorithm II's doubled circuit (row-stacking vectorisation).
        """
        return sum(np.kron(op, np.conjugate(op)) for op in self._ops)

    def choi_matrix(self, normalised: bool = True) -> np.ndarray:
        """Choi–Jamiolkowski state ``(I (x) E)(|Psi><Psi|)``.

        With ``normalised=True`` the maximally entangled input has trace 1
        (this is the ``rho_E`` of the paper); otherwise the unnormalised
        Choi matrix ``sum_ij |i><j| (x) E(|i><j|)`` is returned.
        """
        d = self.dim
        choi = np.zeros((d * d, d * d), dtype=COMPLEX)
        for op in self._ops:
            # (I (x) K)|Psi> has amplitude K[j, i] on |i j>; build directly.
            amp = np.transpose(op).reshape(d * d)
            choi += np.outer(amp, np.conjugate(amp))
        if normalised:
            choi /= d
        return choi

    # --- structural transforms --------------------------------------------------

    def dagger(self) -> "KrausChannel":
        """The adjoint map {K_i†} (not trace-preserving in general)."""
        return KrausChannel(
            [dagger(op) for op in self._ops], f"{self.name}_dg", validate=False
        )

    def conjugate(self) -> "KrausChannel":
        """The conjugated channel {K_i*}."""
        return KrausChannel(
            [np.conjugate(op) for op in self._ops], f"{self.name}_conj",
            validate=False,
        )

    def tensor(self, other: "KrausChannel") -> "KrausChannel":
        """Parallel composition self (x) other."""
        ops = [
            np.kron(a, b) for a in self._ops for b in other.kraus_operators
        ]
        return KrausChannel(ops, f"{self.name}(x){other.name}", validate=False)

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Sequential composition: ``other`` after ``self``."""
        ops = [b @ a for a in self._ops for b in other.kraus_operators]
        return KrausChannel(ops, f"{other.name}o{self.name}", validate=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KrausChannel({self.name!r}, {self.num_qubits}q, "
            f"{self.num_kraus} ops)"
        )


# --- canonical noises (paper Example 2) --------------------------------------


def bit_flip(p: float) -> KrausChannel:
    """Bit flip: keep with probability ``p``, apply X with ``1 - p``."""
    _check_prob(p)
    return KrausChannel(
        [math.sqrt(p) * I_MATRIX, math.sqrt(1 - p) * X_MATRIX], "bit_flip"
    )


def phase_flip(p: float) -> KrausChannel:
    """Phase flip: keep with probability ``p``, apply Z with ``1 - p``."""
    _check_prob(p)
    return KrausChannel(
        [math.sqrt(p) * I_MATRIX, math.sqrt(1 - p) * Z_MATRIX], "phase_flip"
    )


def bit_phase_flip(p: float) -> KrausChannel:
    """Bit-phase flip: keep with probability ``p``, apply Y with ``1 - p``."""
    _check_prob(p)
    return KrausChannel(
        [math.sqrt(p) * I_MATRIX, math.sqrt(1 - p) * Y_MATRIX], "bit_phase_flip"
    )


def depolarizing(p: float) -> KrausChannel:
    """Depolarisation: keep with ``p``, apply X/Y/Z each with ``(1-p)/3``.

    This is the noise used throughout the paper's experiments with
    ``p = 0.999``.
    """
    _check_prob(p)
    q = (1 - p) / 3
    return KrausChannel(
        [
            math.sqrt(p) * I_MATRIX,
            math.sqrt(q) * X_MATRIX,
            math.sqrt(q) * Y_MATRIX,
            math.sqrt(q) * Z_MATRIX,
        ],
        "depolarizing",
    )


def pauli_channel(px: float, py: float, pz: float) -> KrausChannel:
    """General Pauli channel with flip probabilities (px, py, pz)."""
    pi = 1 - px - py - pz
    for val in (pi, px, py, pz):
        if val < -1e-12:
            raise ValueError("Pauli probabilities must sum to at most 1")
    return KrausChannel(
        [
            math.sqrt(max(pi, 0.0)) * I_MATRIX,
            math.sqrt(max(px, 0.0)) * X_MATRIX,
            math.sqrt(max(py, 0.0)) * Y_MATRIX,
            math.sqrt(max(pz, 0.0)) * Z_MATRIX,
        ],
        "pauli",
    )


def amplitude_damping(gamma: float) -> KrausChannel:
    """Amplitude damping (T1 decay) with decay probability ``gamma``."""
    _check_prob(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=COMPLEX)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=COMPLEX)
    return KrausChannel([k0, k1], "amplitude_damping")


def phase_damping(gamma: float) -> KrausChannel:
    """Phase damping (pure dephasing) with parameter ``gamma``."""
    _check_prob(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=COMPLEX)
    k1 = np.array([[0, 0], [0, math.sqrt(gamma)]], dtype=COMPLEX)
    return KrausChannel([k0, k1], "phase_damping")


def unitary_channel(matrix: np.ndarray, name: str = "unitary") -> KrausChannel:
    """Wrap a unitary as a single-Kraus channel."""
    return KrausChannel([np.asarray(matrix, dtype=COMPLEX)], name)


def two_qubit_depolarizing(p: float) -> KrausChannel:
    """Two-qubit depolarising channel: keep with ``p``, else a uniform
    non-identity two-qubit Pauli (15 terms each with ``(1-p)/15``)."""
    _check_prob(p)
    paulis = [I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX]
    ops = []
    q = (1 - p) / 15
    for a in range(4):
        for b in range(4):
            weight = p if (a == 0 and b == 0) else q
            ops.append(math.sqrt(weight) * np.kron(paulis[a], paulis[b]))
    return KrausChannel(ops, "depolarizing2")


def _check_prob(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability parameter must be in [0, 1], got {p}")
