"""Noise channels, noise models and dense super-operator semantics."""

from .channels import (
    KrausChannel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    pauli_channel,
    phase_damping,
    phase_flip,
    two_qubit_depolarizing,
    unitary_channel,
)
from .convert import (
    choi_to_kraus,
    kraus_from_superop,
    superop_to_choi,
    thermal_relaxation,
)
from .model import NoiseModel, insert_random_noise
from .superop import (
    circuit_kraus_operators,
    circuit_superoperator_matrix,
    evolve_density,
    instruction_kraus,
    kraus_to_channel,
)

__all__ = [
    "KrausChannel",
    "NoiseModel",
    "amplitude_damping",
    "bit_flip",
    "bit_phase_flip",
    "choi_to_kraus",
    "kraus_from_superop",
    "superop_to_choi",
    "thermal_relaxation",
    "circuit_kraus_operators",
    "circuit_superoperator_matrix",
    "depolarizing",
    "evolve_density",
    "insert_random_noise",
    "instruction_kraus",
    "kraus_to_channel",
    "pauli_channel",
    "phase_damping",
    "phase_flip",
    "two_qubit_depolarizing",
    "unitary_channel",
]
