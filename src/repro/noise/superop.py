"""Dense super-operator semantics of (noisy) circuits.

These routines give the *reference* meaning of a noisy circuit as a map on
density matrices.  They are exponential in memory (``4^n`` amplitudes for
``evolve_density``; ``16^n`` for the full super-operator matrix) and exist
for validation, the worked paper examples and the dense baseline — the
TDD/tensor-network algorithms in :mod:`repro.core` never materialise them.

Vectorisation convention: *row-stacking*, matching the paper's
``M_E = sum_i E_i (x) E_i*`` (so ``vec(A rho B) = (A (x) B^T) vec(rho)``).
The Qiskit-style baseline in :mod:`repro.baseline` uses column-stacking;
the two are related by a transpose-permutation and yield identical traces.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..circuits import QuantumCircuit
from ..linalg import COMPLEX, dagger, embed_operator
from .channels import KrausChannel


def instruction_kraus(inst) -> List[np.ndarray]:
    """Kraus operators of an instruction (a unitary gate yields one)."""
    if inst.is_noise:
        return inst.operation.kraus_operators
    return [inst.operation.matrix]


def evolve_density(
    circuit: QuantumCircuit, rho: np.ndarray | None = None
) -> np.ndarray:
    """Apply the circuit's super-operator to a density matrix.

    Defaults to the ``|0...0><0...0|`` input.  Cost is ``O(|G| 8^n)`` time,
    ``O(4^n)`` memory — fine for the sizes used in tests.
    """
    n = circuit.num_qubits
    if rho is None:
        rho = np.zeros((2**n, 2**n), dtype=COMPLEX)
        rho[0, 0] = 1.0
    rho = np.asarray(rho, dtype=COMPLEX)
    for inst in circuit:
        ops = [
            embed_operator(op, inst.qubits, n) for op in instruction_kraus(inst)
        ]
        rho = sum(op @ rho @ dagger(op) for op in ops)
    return rho


def circuit_superoperator_matrix(circuit: QuantumCircuit) -> np.ndarray:
    """Dense ``4^n x 4^n`` matrix representation ``M_E`` of the circuit.

    Row-stacking convention: composing instructions in time order
    multiplies their representations on the left.
    """
    n = circuit.num_qubits
    dim = 4**n
    mat = np.eye(dim, dtype=COMPLEX)
    for inst in circuit:
        step = np.zeros((dim, dim), dtype=COMPLEX)
        for op in instruction_kraus(inst):
            full = embed_operator(op, inst.qubits, n)
            step += np.kron(full, np.conjugate(full))
        mat = step @ mat
    return mat


def circuit_kraus_operators(
    circuit: QuantumCircuit, max_terms: int | None = 4096
) -> List[np.ndarray]:
    """Global Kraus operators ``{E_i}`` of the whole circuit.

    Each ``E_i`` corresponds to one choice of a Kraus operator at every
    noise site, multiplied through the unitary gates — exactly the
    enumeration of the paper's Algorithm I, but materialised densely.
    ``max_terms`` guards against exponential blow-up (None disables).
    """
    n = circuit.num_qubits
    total = circuit.num_kraus_terms
    if max_terms is not None and total > max_terms:
        raise ValueError(
            f"circuit has {total} Kraus terms, above the cap {max_terms}"
        )
    operators = [np.eye(2**n, dtype=COMPLEX)]
    for inst in circuit:
        embedded = [
            embed_operator(op, inst.qubits, n) for op in instruction_kraus(inst)
        ]
        operators = [emb @ acc for acc in operators for emb in embedded]
    return operators


def kraus_to_channel(
    operators: Iterable[np.ndarray], name: str = "circuit"
) -> KrausChannel:
    """Bundle global Kraus operators back into a :class:`KrausChannel`."""
    return KrausChannel(list(operators), name=name, validate=False)
