"""Noise models: policies for turning an ideal circuit into a noisy one.

The paper's experiments "randomly insert some depolarisation noises" into
benchmark circuits; :func:`insert_random_noise` reproduces that workload
generator.  :class:`NoiseModel` additionally supports the realistic
every-gate-suffers-noise regime the paper motivates for Algorithm II.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..circuits import Instruction, QuantumCircuit
from .channels import KrausChannel, depolarizing

ChannelFactory = Callable[[], KrausChannel]


def insert_random_noise(
    circuit: QuantumCircuit,
    num_noises: int,
    channel_factory: ChannelFactory | None = None,
    seed: int | None = None,
) -> QuantumCircuit:
    """Insert ``num_noises`` single-qubit channels at random locations.

    Each insertion picks a uniformly random position in the instruction
    stream and a uniformly random qubit.  The default channel is the
    paper's depolarising noise with ``p = 0.999``.

    Parameters
    ----------
    circuit:
        The ideal circuit (left unmodified; a noisy copy is returned).
    num_noises:
        Number of noise sites to insert (paper's ``k``).
    channel_factory:
        Zero-argument callable producing a fresh single-qubit channel per
        site.
    seed:
        Seed for reproducible insertion positions.
    """
    if num_noises < 0:
        raise ValueError("num_noises must be non-negative")
    factory = channel_factory or (lambda: depolarizing(0.999))
    rng = np.random.default_rng(seed)
    noisy = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_noisy")
    instructions: List[Instruction] = list(circuit.instructions)
    # Choose insertion slots 0..len (before/after any instruction).
    slots = sorted(rng.integers(0, len(instructions) + 1, size=num_noises))
    qubits = rng.integers(0, circuit.num_qubits, size=num_noises)
    slot_map: Dict[int, List[int]] = {}
    for slot, qubit in zip(slots, qubits):
        slot_map.setdefault(int(slot), []).append(int(qubit))
    for idx in range(len(instructions) + 1):
        for qubit in slot_map.get(idx, ()):
            channel = factory()
            if channel.num_qubits != 1:
                raise ValueError("insert_random_noise inserts 1-qubit channels")
            noisy.append(channel, [qubit])
        if idx < len(instructions):
            inst = instructions[idx]
            noisy.append(inst.operation, inst.qubits)
    return noisy


class NoiseModel:
    """Gate-driven noise: attach channels after matching gates.

    This models the NISQ regime where *every* gate suffers some noise —
    the situation in which the paper argues Algorithm II shines.

    Example
    -------
    >>> model = NoiseModel()
    >>> model.add_all_qubit_quantum_error(depolarizing(0.999), ["h", "cx"])
    >>> noisy = model.apply(ideal_circuit)
    """

    def __init__(self) -> None:
        self._gate_errors: Dict[str, ChannelFactory] = {}
        self._default_error: Optional[ChannelFactory] = None

    def add_all_qubit_quantum_error(
        self, channel: KrausChannel | ChannelFactory, gate_names: Sequence[str]
    ) -> "NoiseModel":
        """Attach ``channel`` after every occurrence of the named gates.

        Single-qubit channels are applied to each qubit the gate touches;
        a channel whose width matches the gate is applied to the gate's
        qubit tuple directly.
        """
        factory = _as_factory(channel)
        for name in gate_names:
            self._gate_errors[name] = factory
        return self

    def set_default_error(
        self, channel: KrausChannel | ChannelFactory
    ) -> "NoiseModel":
        """Fallback channel for gates without a specific entry."""
        self._default_error = _as_factory(channel)
        return self

    @property
    def noisy_gate_names(self) -> List[str]:
        """Gate names with attached errors."""
        return sorted(self._gate_errors)

    def apply(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Return a noisy copy of ``circuit`` under this model."""
        noisy = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_noisy")
        for inst in circuit:
            noisy.append(inst.operation, inst.qubits)
            if not inst.is_unitary:
                continue
            factory = self._gate_errors.get(inst.name, self._default_error)
            if factory is None:
                continue
            channel = factory()
            if channel.num_qubits == len(inst.qubits):
                noisy.append(channel, inst.qubits)
            elif channel.num_qubits == 1:
                for q in inst.qubits:
                    noisy.append(factory(), [q])
            else:
                raise ValueError(
                    f"channel width {channel.num_qubits} incompatible with "
                    f"gate {inst.name!r} on {len(inst.qubits)} qubits"
                )
        return noisy


def _as_factory(channel: KrausChannel | ChannelFactory) -> ChannelFactory:
    if isinstance(channel, KrausChannel):
        return lambda: channel
    return channel
