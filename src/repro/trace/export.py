"""Exporters: span lists → Chrome trace JSON, span trees, phase totals.

Three read-side views over a finished :class:`~.recorder.TraceRecorder`:

``chrome_trace``
    The Chrome trace-event JSON format (``{"traceEvents": [...]}``,
    complete ``"X"`` events) that https://ui.perfetto.dev and
    ``chrome://tracing`` load directly.  Spans folded back from worker
    processes carry a ``worker`` attribute and are placed on their own
    ``tid`` rows so parallel slice execution renders as parallel
    timelines.

``span_tree``
    A compact nested dict (name / cat / t_ns offset / dur_ns / attrs /
    children) — the form that rides on ``CheckResult.to_dict()`` when
    ``CheckConfig(trace=True)`` is set.

``phase_seconds``
    Wall seconds per named phase (``resolve`` / ``cache`` / ``plan`` /
    ``compile`` / ``execute``), fed into the service's
    ``repro_phase_seconds{phase=...}`` histograms.  Attribution is
    *topmost-assigned-ancestor-wins*: once a span maps to a phase, its
    descendants are not counted again, so nested spans (and concurrent
    worker spans under one dispatch) never double-count wall time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .recorder import Span, TraceRecorder

#: Span name → phase for ``repro_phase_seconds``.  Structural spans
#: (``engine.request``, ``session.check``, ``alg1.terms``,
#: ``alg2.contract``) stay unmapped: they wrap the phases rather than
#: being one.
PHASE_BY_SPAN = {
    "request.resolve": "resolve",
    "circuit.load": "resolve",
    "request.fingerprint": "cache",
    "cache.result.get": "cache",
    "cache.result.put": "cache",
    "plan.cache.get": "plan",
    "plan.cache.put": "plan",
    "plan.build": "plan",
    "plan.search": "plan",
    "plan.compile": "compile",
    "slices.dispatch": "execute",
    "slices.chunk": "execute",
    "slices.loop": "execute",
    "slices.worker": "execute",
    "slices.remote.dispatch": "execute",
    "cache.remote.get": "cache",
    "cache.remote.put": "cache",
}

#: Every phase label the histogram may carry (docs + tests import this).
PHASES = ("resolve", "cache", "plan", "compile", "execute")


def tree_records(tree: dict) -> List[Span]:
    """Flatten a :func:`span_tree` dict back into :class:`Span` objects.

    Ids are reassigned in pre-order; timestamps keep the tree's
    trace-relative offsets.  Lets every exporter run on the compact form
    a traced :class:`~repro.core.stats.CheckResult` carries — the CLI
    turns ``result.trace`` into Chrome trace JSON through this.
    """
    spans: List[Span] = []

    def walk(node: dict, parent_id: Optional[int]) -> None:
        t_ns = int(node.get("t_ns", 0))
        span = Span(
            name=node.get("name", ""),
            category=node.get("cat", "repro"),
            start_ns=t_ns,
            end_ns=t_ns + int(node.get("dur_ns", 0)),
            span_id=len(spans) + 1,
            parent_id=parent_id,
            attributes=dict(node.get("attrs", ())),
        )
        spans.append(span)
        for child in node.get("children", ()):
            walk(child, span.span_id)

    walk(tree, None)
    return spans


def _spans_of(source) -> List[Span]:
    if isinstance(source, TraceRecorder):
        return list(source.spans)
    if isinstance(source, dict):  # a span_tree dict
        return tree_records(source)
    return [
        span if isinstance(span, Span) else Span.from_record(span)
        for span in source
    ]


def _origin_ns(spans: List[Span]) -> int:
    return min((span.start_ns for span in spans), default=0)


def chrome_trace(source) -> dict:
    """Chrome trace-event JSON for a recorder or span-record list.

    Timestamps are microseconds relative to the earliest span, so the
    document is small and diffs cleanly; worker-folded spans land on
    ``tid = worker + 1`` (the main timeline is ``tid 0``).
    """
    spans = _spans_of(source)
    origin = _origin_ns(spans)
    worker_tid: Dict[Optional[int], int] = {}
    for span in spans:
        worker = span.attributes.get("worker")
        if worker is not None:
            worker_tid[span.span_id] = int(worker) + 1
        elif span.parent_id in worker_tid:
            # children folded under a worker root inherit its row
            worker_tid[span.span_id] = worker_tid[span.parent_id]
    events = []
    for span in spans:
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.start_ns - origin) / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": 0,
            "tid": worker_tid.get(span.span_id, 0),
            "args": dict(span.attributes),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_tree(source) -> dict:
    """The compact nested form attached to traced check results.

    ``{"name", "cat", "t_ns" (offset from trace start), "dur_ns",
    "attrs", "children": [...]}`` — single root when the trace has one
    (the usual ``engine.request``), else a synthetic ``trace`` root.
    """
    spans = _spans_of(source)
    origin = _origin_ns(spans)

    def node(span: Span) -> dict:
        entry: dict = {
            "name": span.name,
            "cat": span.category,
            "t_ns": span.start_ns - origin,
            "dur_ns": span.duration_ns,
        }
        if span.attributes:
            entry["attrs"] = dict(span.attributes)
        entry["children"] = []
        return entry

    nodes = {span.span_id: node(span) for span in spans}
    roots = []
    for span in spans:
        parent = nodes.get(span.parent_id)
        if parent is not None:
            parent["children"].append(nodes[span.span_id])
        else:
            roots.append(nodes[span.span_id])
    if len(roots) == 1:
        return roots[0]
    return {
        "name": "trace", "cat": "repro", "t_ns": 0,
        "dur_ns": max((s.end_ns for s in spans), default=0) - origin,
        "children": roots,
    }


def phase_seconds(
    source, phase_by_span: Optional[Dict[str, str]] = None
) -> Dict[str, float]:
    """Wall seconds per phase, topmost-assigned-ancestor-wins.

    A span whose name maps to a phase contributes its full duration and
    shields its descendants — nested plan spans and concurrent worker
    spans under one dispatch count once.
    """
    mapping = PHASE_BY_SPAN if phase_by_span is None else phase_by_span
    spans = _spans_of(source)
    children: Dict[Optional[int], List[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)

    totals: Dict[str, float] = {}

    def walk(span: Span) -> None:
        phase = mapping.get(span.name)
        if phase is not None:
            totals[phase] = totals.get(phase, 0.0) + span.duration_ns / 1e9
            return
        for child in children.get(span.span_id, ()):
            walk(child)

    for root in children.get(None, ()):
        walk(root)
    return totals


def tree_phase_seconds(tree: dict) -> Dict[str, float]:
    """:func:`phase_seconds` over a :func:`span_tree` dict (the form the
    service sees on a traced response)."""
    totals: Dict[str, float] = {}

    def walk(node: dict) -> None:
        phase = PHASE_BY_SPAN.get(node.get("name"))
        if phase is not None:
            totals[phase] = totals.get(phase, 0.0) + node["dur_ns"] / 1e9
            return
        for child in node.get("children", ()):
            walk(child)

    walk(tree)
    return totals
