"""repro.trace — dependency-free cross-layer span tracing.

Write side (:mod:`.recorder`): ``with trace.span("plan.search", ...)``
records into the context's active :class:`TraceRecorder`, or does
nothing at all when tracing is disabled (the default).  Read side
(:mod:`.export`): Chrome trace-event JSON for Perfetto, the compact
span tree that rides on traced check results, and per-phase wall-time
totals for the service's ``repro_phase_seconds`` histograms.

Enable per check with ``CheckConfig(trace=True)`` (wire config override
``{"trace": true}``), per CLI run with ``repro check --trace out.json``,
or per HTTP request with the ``X-Repro-Trace: 1`` header.  See
``docs/observability.md`` for the span vocabulary.
"""

from .export import (
    PHASE_BY_SPAN,
    PHASES,
    chrome_trace,
    phase_seconds,
    span_tree,
    tree_phase_seconds,
    tree_records,
)
from .recorder import (
    Span,
    TraceRecorder,
    current_recorder,
    recording,
    span,
)

__all__ = [
    "PHASE_BY_SPAN",
    "PHASES",
    "Span",
    "TraceRecorder",
    "chrome_trace",
    "current_recorder",
    "phase_seconds",
    "recording",
    "span",
    "span_tree",
    "tree_phase_seconds",
    "tree_records",
]
