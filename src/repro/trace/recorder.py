"""Span recording: the write side of :mod:`repro.trace`.

A :class:`Span` is one timed region — name, category, monotonic
start/end nanoseconds, free-form attributes and a parent id.  Code
creates spans through the module-level :func:`span` context manager::

    with trace.span("plan.search", planner="anneal") as sp:
        ...
        sp.set(trials=ran, best_cost=best)

When no :class:`TraceRecorder` is active (the default), :func:`span`
returns a shared no-op singleton whose ``__enter__``/``__exit__``/
``set`` do nothing — the disabled cost is one ContextVar read per call
site, pinned well under 1% of the warm request path by
``benchmarks/bench_service.py``.

A recorder is installed for the current (possibly async) context with
:func:`recording`; the active recorder is carried by a ``ContextVar``
so concurrent service requests cannot see each other's traces.  One
recorder serves one check: span ids are small ints, the parent chain is
maintained by plain LIFO enter/exit discipline (``with`` statements),
and spans are appended at *begin* time so the list is pre-ordered —
every parent precedes its children.

Worker processes record into their own :class:`TraceRecorder` and ship
``export_records()`` (plain picklable dicts) back inside
``ContractionStats.extra``; the parent folds them in submission order
with :meth:`TraceRecorder.fold`, re-basing the foreign monotonic clock
onto the enclosing dispatch span.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

_RECORDER: ContextVar[Optional["TraceRecorder"]] = ContextVar(
    "repro_trace_recorder", default=None
)


@dataclass
class Span:
    """One timed region of a trace (times in ``time.monotonic_ns``)."""

    name: str
    category: str = "repro"
    start_ns: int = 0
    end_ns: int = 0
    span_id: int = 0
    parent_id: Optional[int] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_record(self) -> dict:
        """Plain-dict form: picklable, JSON-able, order-stable."""
        return {
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        return cls(
            name=record["name"],
            category=record.get("category", "repro"),
            start_ns=record["start_ns"],
            end_ns=record["end_ns"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            attributes=dict(record.get("attributes", ())),
        )


class _NoopSpan:
    """The disabled-tracer span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """A span bound to a recorder; enter/exit stamp the clock."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "TraceRecorder", span: Span):
        self._recorder = recorder
        self.span = span

    def __enter__(self) -> "_LiveSpan":
        self._recorder._begin(self.span)
        return self

    def __exit__(self, *exc) -> bool:
        self._recorder._end(self.span)
        return False

    def set(self, **attributes) -> "_LiveSpan":
        """Attach attributes after entry (e.g. a best cost found later).

        Preferred over constructor kwargs inside hot loops: the call
        happens once per span instead of building dicts per iteration.
        """
        self.span.attributes.update(attributes)
        return self


class TraceRecorder:
    """Collects the spans of one check into a pre-ordered list.

    Not thread-safe by design: one recorder traces one check, and a
    check's spans are created sequentially (the engine serialises
    sessions per config; worker processes use their own recorders and
    fold back through :meth:`fold`).
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 1
        self._current: Optional[int] = None

    # --- recording ------------------------------------------------------------

    def span(self, name: str, category: str = "repro", **attributes) -> _LiveSpan:
        return _LiveSpan(
            self, Span(name=name, category=category, attributes=attributes)
        )

    def _begin(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._current
        self._current = span.span_id
        self.spans.append(span)
        span.start_ns = time.monotonic_ns()

    def _end(self, span: Span) -> None:
        span.end_ns = time.monotonic_ns()
        self._current = span.parent_id

    # --- export / fold --------------------------------------------------------

    def export_records(self) -> List[dict]:
        """The spans as plain dicts (picklable; parents precede children)."""
        return [span.to_record() for span in self.spans]

    def fold(
        self,
        records: Iterable[dict],
        *,
        attributes: Optional[Dict[str, Any]] = None,
        align_start_ns: Optional[int] = None,
    ) -> None:
        """Fold foreign span records (a worker's trace) into this one.

        Ids are remapped onto this recorder's sequence; parentless
        records attach under the currently open span and gain the extra
        ``attributes`` (e.g. ``worker=3``).  ``align_start_ns`` re-bases
        the records' clock so their earliest span starts there — worker
        processes have unrelated monotonic origins, and a worker's span
        ran strictly inside the parent's dispatch window, so aligning to
        the dispatch span start keeps nesting containment.
        """
        records = list(records)
        if not records:
            return
        shift = 0
        if align_start_ns is not None:
            shift = align_start_ns - min(r["start_ns"] for r in records)
        mapping: Dict[int, int] = {}
        for record in records:
            span = Span.from_record(record)
            mapping[span.span_id] = self._next_id
            span.span_id = self._next_id
            self._next_id += 1
            if span.parent_id in mapping:
                span.parent_id = mapping[span.parent_id]
            else:
                span.parent_id = self._current
                if attributes:
                    span.attributes.update(attributes)
            span.start_ns += shift
            span.end_ns += shift
            self.spans.append(span)


def current_recorder() -> Optional[TraceRecorder]:
    """The recorder active in this context, or ``None`` (disabled)."""
    return _RECORDER.get()


def span(name: str, category: str = "repro", **attributes):
    """A context-managed span on the active recorder — or a no-op.

    This is the one instrumentation entry point: call sites never check
    whether tracing is enabled.
    """
    recorder = _RECORDER.get()
    if recorder is None:
        return _NOOP_SPAN
    return recorder.span(name, category, **attributes)


@contextmanager
def recording(recorder: TraceRecorder):
    """Install ``recorder`` as the context's active recorder."""
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)
