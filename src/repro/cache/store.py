"""Cache stores: the :class:`CacheStore` protocol and its three tiers.

A store maps content-addressed string keys to opaque byte payloads.
Three implementations:

* :class:`MemoryStore` — in-process LRU, the hot tier;
* :class:`DiskStore` — one file per entry under a cache directory
  (``REPRO_CACHE_DIR`` or ``~/.cache/repro``), atomic writes,
  integrity-checked corruption-tolerant reads, ``prune``/``clear``;
* :class:`TieredStore` — a chain (memory in front of disk) where hits
  in a later tier are promoted into the earlier ones.

Stores are deliberately *lossy* on the failure side: a read that hits a
truncated, corrupt or vanished entry returns ``None`` (and drops the
bad entry when it can), and a write that fails — read-only filesystem,
disk full, permission denied — is swallowed.  A cache must never be
able to crash the checker; the worst it can do is recompute.
"""

from __future__ import annotations

import abc
import hashlib
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Environment variable overriding the default disk-cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default in-memory tier capacity (entries).
DEFAULT_MEMORY_ENTRIES = 1024

#: Magic prefix of every on-disk entry; bump with the layout.
_MAGIC = b"RPRC1\n"

#: Suffix of on-disk entry files.
_SUFFIX = ".blob"

#: prune() reaps orphaned writer temp files older than this; the age
#: guard keeps live in-flight writes out of the reaper's way.
_TEMP_REAP_AGE_SECONDS = 3600.0


def default_cache_dir() -> Path:
    """The disk tier's directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.

    Read at call time, so tests and deployments can repoint the cache
    through the environment without touching configuration objects.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def encode_entry(payload: bytes) -> bytes:
    """Frame a payload with magic + length + digest for integrity checks."""
    digest = hashlib.sha256(payload).digest()
    header = _MAGIC + len(payload).to_bytes(8, "big") + digest
    return header + payload


def decode_entry(raw: bytes) -> Optional[bytes]:
    """Recover a payload framed by :func:`encode_entry`.

    Returns ``None`` — never raises — on any damage: wrong magic,
    truncation, trailing garbage or digest mismatch.
    """
    header_len = len(_MAGIC) + 8 + 32
    if len(raw) < header_len or not raw.startswith(_MAGIC):
        return None
    length = int.from_bytes(raw[len(_MAGIC):len(_MAGIC) + 8], "big")
    digest = raw[len(_MAGIC) + 8:header_len]
    payload = raw[header_len:]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


@dataclass
class CacheStats:
    """Counters and sizes of one store (or one tier of a chain)."""

    store: str = ""
    entries: int = 0
    total_bytes: int = 0
    #: in-process lookup counters (reset with the store object's life)
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: location of a persistent store (None for in-memory tiers)
    directory: Optional[str] = None
    #: per-tier breakdown when the store is tiered
    tiers: List["CacheStats"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        out = {
            "store": self.store,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "directory": self.directory,
        }
        if self.tiers:
            out["tiers"] = [tier.to_dict() for tier in self.tiers]
        return out


class CacheStore(abc.ABC):
    """Byte-payload store addressed by content-derived string keys."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[bytes]:
        """The payload stored under ``key``, or ``None`` (never raises)."""

    @abc.abstractmethod
    def put(self, key: str, payload: bytes) -> None:
        """Store ``payload`` under ``key`` (best-effort; never raises)."""

    @abc.abstractmethod
    def clear(self) -> int:
        """Drop every entry; returns the number removed."""

    @abc.abstractmethod
    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the store holds at
        most ``max_bytes`` of payload; returns the number evicted."""

    @abc.abstractmethod
    def stats(self) -> CacheStats:
        """Current sizes plus this object's lookup counters."""

    @property
    def directory(self) -> Optional[str]:
        """Filesystem location for persistent stores, else ``None``."""
        return None


class MemoryStore(CacheStore):
    """In-process LRU byte store — the hot tier.

    ``get`` marks an entry most-recently-used; ``put`` evicts from the
    least-recently-used end once ``max_entries`` (and, when set,
    ``max_bytes``) would be exceeded.  All operations hold one lock:
    the LRU reorder inside ``get`` makes even reads a mutation, and a
    service's threads share one store per engine — an unlocked
    ``move_to_end`` racing a ``popitem`` corrupts the ``OrderedDict``.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MEMORY_ENTRIES,
        max_bytes: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: bytes) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            self._evict()

    def _evict(self) -> None:
        # caller holds self._lock
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and len(self._entries) > 1
            and sum(map(len, self._entries.values())) > self.max_bytes
        ):
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def prune(self, max_bytes: int) -> int:
        with self._lock:
            removed = 0
            while self._entries and (
                sum(map(len, self._entries.values())) > max_bytes
            ):
                self._entries.popitem(last=False)
                removed += 1
            self._evictions += removed
            return removed

    def keys(self) -> List[str]:
        """Keys in LRU→MRU order (oldest first)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                store="memory",
                entries=len(self._entries),
                total_bytes=sum(map(len, self._entries.values())),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


class DiskStore(CacheStore):
    """One-file-per-entry persistent store — the shared tier.

    Layout: ``<dir>/<last two key chars>/<key>.blob``, each file framed
    by :func:`encode_entry`.  Writes go through a temporary file in the
    destination directory followed by :func:`os.replace`, so concurrent
    writers of the same key — worker processes warming a shared pool
    cache — can interleave freely and readers only ever observe a
    complete entry (the POSIX rename guarantee).  Reads verify the
    frame digest and silently discard damaged files.
    """

    def __init__(self, directory: Optional[os.PathLike] = None):
        self._directory = Path(directory) if directory else default_cache_dir()
        self._hits = 0
        self._misses = 0

    @property
    def directory(self) -> str:
        return str(self._directory)

    def _path(self, key: str) -> Path:
        return self._directory / key[-2:] / f"{key}{_SUFFIX}"

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self._misses += 1
            return None
        payload = decode_entry(raw)
        if payload is None:
            # Damaged entry: self-heal by dropping it so the slot is
            # rewritten on the next put instead of failing forever.
            try:
                path.unlink()
            except OSError:
                pass
            self._misses += 1
            return None
        try:  # LRU signal for prune(); best-effort
            os.utime(path)
        except OSError:
            pass
        self._hits += 1
        return payload

    def put(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(encode_entry(payload))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # Read-only filesystem, disk full, permissions: a cache
            # write failure must never surface to the checker.
            pass

    def _iter_entries(self) -> Iterator[Tuple[Path, int, float]]:
        """Yield ``(path, size, mtime)`` for every readable entry file."""
        if not self._directory.is_dir():
            return
        for shard in sorted(self._directory.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob(f"*{_SUFFIX}")):
                try:
                    info = path.stat()
                except OSError:
                    continue
                yield path, info.st_size, info.st_mtime

    def _reap_temp_files(self, min_age_seconds: float) -> None:
        """Remove writer temp files older than ``min_age_seconds``.

        A writer killed between ``mkstemp`` and ``os.replace`` orphans
        its ``.tmp-*`` file; without reaping, those bytes are invisible
        to the ``*.blob`` accounting and never reclaimed.  An age guard
        keeps live in-flight writes safe (a reaped live temp file only
        costs that writer its swallowed ``os.replace``, never the
        store's integrity); ``clear`` reaps unconditionally.
        """
        if not self._directory.is_dir():
            return
        cutoff = time.time() - min_age_seconds
        for shard in self._directory.iterdir():
            if not shard.is_dir():
                continue
            for path in shard.glob(".tmp-*"):
                try:
                    if path.stat().st_mtime <= cutoff:
                        path.unlink()
                except OSError:
                    pass

    def keys(self) -> List[str]:
        """Every stored key (unordered beyond directory sort)."""
        return [path.name[: -len(_SUFFIX)] for path, _, _ in self._iter_entries()]

    def clear(self) -> int:
        removed = 0
        for path, _, _ in list(self._iter_entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._reap_temp_files(0.0)
        return removed

    def prune(self, max_bytes: int) -> int:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self._reap_temp_files(_TEMP_REAP_AGE_SECONDS)
        entries = sorted(self._iter_entries(), key=lambda e: e[2])
        total = sum(size for _, size, _ in entries)
        removed = 0
        for path, size, _ in entries:  # oldest mtime first
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    def stats(self) -> CacheStats:
        entries = list(self._iter_entries())
        return CacheStats(
            store="disk",
            entries=len(entries),
            total_bytes=sum(size for _, size, _ in entries),
            hits=self._hits,
            misses=self._misses,
            directory=self.directory,
        )


class TieredStore(CacheStore):
    """A chain of stores searched front to back, with promotion.

    ``get`` returns the first tier's hit; a hit in a later tier is
    promoted (re-``put``) into every earlier tier, so the memory tier
    warms itself from disk.  ``put`` writes through to every tier.
    """

    def __init__(self, tiers: List[CacheStore]):
        if not tiers:
            raise ValueError("a tiered store needs at least one tier")
        self.tiers = list(tiers)

    def get(self, key: str) -> Optional[bytes]:
        for position, tier in enumerate(self.tiers):
            payload = tier.get(key)
            if payload is not None:
                for earlier in self.tiers[:position]:
                    earlier.put(key, payload)
                return payload
        return None

    def put(self, key: str, payload: bytes) -> None:
        for tier in self.tiers:
            tier.put(key, payload)

    def clear(self) -> int:
        # An entry usually lives in several tiers at once; the logical
        # removal count is the largest per-tier count, not their sum.
        return max(tier.clear() for tier in self.tiers)

    def prune(self, max_bytes: int) -> int:
        return max(tier.prune(max_bytes) for tier in self.tiers)

    def stats(self) -> CacheStats:
        per_tier = [tier.stats() for tier in self.tiers]
        # Persistent reality lives in the last tier; the chain's lookup
        # traffic is the front tier's plus fall-through to later ones.
        return CacheStats(
            store="tiered",
            entries=per_tier[-1].entries,
            total_bytes=per_tier[-1].total_bytes,
            hits=sum(tier.hits for tier in per_tier),
            misses=per_tier[-1].misses,
            evictions=sum(tier.evictions for tier in per_tier),
            directory=self.directory,
            tiers=per_tier,
        )

    @property
    def directory(self) -> Optional[str]:
        for tier in self.tiers:
            if tier.directory is not None:
                return tier.directory
        return None


#: Registry of key-name prefixes to human labels (``cache stats``).
KEY_KINDS: Dict[str, str] = {"plan-": "plans", "result-": "results"}


def count_by_kind(keys: List[str]) -> Dict[str, int]:
    """Histogram of keys by :data:`KEY_KINDS` prefix (CLI reporting)."""
    counts = {label: 0 for label in KEY_KINDS.values()}
    counts["other"] = 0
    for key in keys:
        for prefix, label in KEY_KINDS.items():
            if key.startswith(prefix):
                counts[label] += 1
                break
        else:
            counts["other"] += 1
    return counts
