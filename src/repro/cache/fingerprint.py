"""Canonical, version-salted fingerprints for cache keys.

Every cache key in :mod:`repro.cache` derives from a SHA-256 digest over
*semantic content*, never object identity or repr strings:

* a **circuit** fingerprint hashes the instruction stream — per
  instruction its kind (gate / noise channel), the qubit tuple it acts
  on, and the exact operator data (the unitary matrix, or every Kraus
  operator of a channel) as canonical ``complex128`` bytes.  Gate names
  and parameter lists are deliberately excluded: two gates with equal
  matrices are the same gate to the checker, whatever they are called.
* a **structure** fingerprint hashes a tensor network's index labels
  and shapes only — exactly the information a
  :class:`~repro.tensornet.planner.ContractionPlan` depends on — so
  structurally identical networks with different numeric entries share
  plans.
* a **config** fingerprint hashes the canonical JSON form of a
  :class:`~repro.core.session.CheckConfig`, minus the cache knobs
  themselves (whether a result was computed with or without a cache
  does not change the result).

Every digest is seeded with :data:`CACHE_VERSION`.  Bump it whenever
the semantics of any cached payload change (plan IR layout, result
fields, fingerprint coverage): old entries then simply stop being
found, which is the entire invalidation story — no migration code.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..circuits import QuantumCircuit
    from ..tensornet import TensorNetwork

#: Version salt folded into every fingerprint.  Bumping it invalidates
#: the whole cache at key-derivation level (old entries are never read
#: and eventually fall to ``prune``).  v2: plans gained the
#: ``search_report`` provenance field and plan keys the search knobs.
CACHE_VERSION = 2


def _new_hash(kind: str) -> "hashlib._Hash":
    """A SHA-256 hasher seeded with the kind tag and the version salt.

    Reads :data:`CACHE_VERSION` at call time so tests (and emergency
    operational overrides) can invalidate by monkeypatching the module
    attribute.
    """
    digest = hashlib.sha256()
    digest.update(f"repro:{kind}:v{CACHE_VERSION}:".encode())
    return digest


def _update_array(digest, array: np.ndarray) -> None:
    """Fold an operator matrix into ``digest`` in canonical form.

    Canonical form is C-contiguous ``complex128`` bytes prefixed by the
    shape, so dtype, memory layout and view-ness of the caller's array
    cannot perturb the fingerprint.
    """
    canonical = np.ascontiguousarray(array, dtype=np.complex128)
    digest.update(str(canonical.shape).encode())
    digest.update(canonical.tobytes())


def circuit_fingerprint(circuit: "QuantumCircuit") -> str:
    """Hex digest of a circuit's full semantic content.

    Covers the qubit count and, per instruction, the kind marker, the
    qubit tuple and the operator data (gate matrix / Kraus operators).
    """
    digest = _new_hash("circuit")
    digest.update(str(circuit.num_qubits).encode())
    for inst in circuit:
        digest.update(str(inst.qubits).encode())
        if inst.is_unitary:
            digest.update(b"G")
            _update_array(digest, inst.operation.matrix)
        elif inst.is_noise:
            digest.update(b"N")
            ops = inst.operation.kraus_operators
            digest.update(str(len(ops)).encode())
            for op in ops:
                _update_array(digest, op)
        else:  # pragma: no cover - circuits only hold gates and channels
            raise TypeError(
                f"cannot fingerprint instruction {inst.name!r}: neither a "
                "unitary gate nor a Kraus channel"
            )
    return digest.hexdigest()


def structure_fingerprint(network: "TensorNetwork") -> str:
    """Hex digest of a network's index structure and shapes (no data).

    This is the content-addressed form of
    :meth:`~repro.tensornet.TensorNetwork.structure_key` plus tensor
    shapes — exactly what a contraction plan is a function of.
    """
    digest = _new_hash("structure")
    for tensor in network.tensors:
        digest.update(str(tensor.indices).encode())
        digest.update(str(tensor.data.shape).encode())
    return digest.hexdigest()


def config_fingerprint(config) -> str:
    """Hex digest of a check configuration, minus the cache knobs.

    Accepts anything exposing ``to_dict()`` with JSON-safe values (a
    :class:`~repro.core.session.CheckConfig`).  The ``cache`` /
    ``cache_dir`` fields are stripped: caching changes where a result
    comes from, never what it is.
    """
    record = dict(config.to_dict())
    record.pop("cache", None)
    record.pop("cache_dir", None)
    # tracing observes a run without changing its verdict, and traced /
    # untraced requests must share result-cache entries
    record.pop("trace", None)
    # cluster topology changes where work runs and where entries live,
    # never the verdict — every fleet shape shares one cache key space
    record.pop("cache_url", None)
    record.pop("workers", None)
    digest = _new_hash("config")
    digest.update(json.dumps(record, sort_keys=True, default=str).encode())
    return digest.hexdigest()


def plan_key(
    structure_fp: str,
    planner: str,
    order_method: str,
    max_intermediate_size,
    plan_budget_seconds=None,
    plan_seed: int = 0,
) -> str:
    """Store key of a contraction plan.

    A plan is a pure function of the network structure and the planning
    knobs that its planner actually consults, so inert knobs are
    normalised out of the key: the greedy and search planners never use
    the order heuristic (greedy plans built under different heuristics
    are shared), and only the search planners fold in the budget and
    seed — a zero-budget search stores its baseline under a different
    key than a funded one, so it can never mask the searched plan.
    """
    from ..tensornet.planner import SEARCH_PLANNERS

    digest = _new_hash("plan")
    digest.update(planner.encode())
    digest.update(
        order_method.encode() if planner == "order" else b"-"
    )
    digest.update(str(max_intermediate_size).encode())
    if planner in SEARCH_PLANNERS:
        digest.update(
            f"budget={plan_budget_seconds!r}:seed={plan_seed!r}".encode()
        )
    digest.update(structure_fp.encode())
    return f"plan-{digest.hexdigest()}"


def result_key(ideal_fp: str, noisy_fp: str, config_fp: str) -> str:
    """Store key of a whole-check verdict.

    Keyed on both circuits' content fingerprints plus the config
    fingerprint: any change to a gate matrix, a Kraus operator, a qubit
    map, epsilon, the algorithm or the backend lands on a fresh key.
    """
    digest = _new_hash("result")
    digest.update(ideal_fp.encode())
    digest.update(noisy_fp.encode())
    digest.update(config_fp.encode())
    return f"result-{digest.hexdigest()}"


def request_fingerprint(ideal, noisy, config, mode: str = "check") -> str:
    """Content fingerprint of one fully-resolved check request.

    The semantic identity of a query against the checking service:
    both circuits' content, the effective config, and the run mode
    (a fidelity-mode query demands the exact no-early-termination
    value, so it can never alias a check-mode one).  For the default
    check mode this *is* the result-cache key
    (:meth:`repro.cache.results.ResultCache.key_for` delegates here),
    so an equal-fingerprinted check-mode request is answered without
    planning or contracting in any process sharing the store.
    Fidelity-mode fingerprints identify equal queries for dedup, but
    are never answered from the cache — fidelity results are not
    stored (see :meth:`repro.core.session.CheckSession.run`).
    """
    key = result_key(
        circuit_fingerprint(ideal),
        circuit_fingerprint(noisy),
        config_fingerprint(config),
    )
    if mode == "check":
        return key
    digest = _new_hash("request-mode")
    digest.update(mode.encode())
    digest.update(key.encode())
    return f"result-{digest.hexdigest()}"
