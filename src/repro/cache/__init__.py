"""Content-addressed caching & persistence: fingerprint once, never
replan, never recheck.

The subsystem has three layers:

* :mod:`repro.cache.fingerprint` — canonical, version-salted SHA-256
  fingerprints of circuits (instruction stream, qubit maps, gate
  matrices, Kraus data), tensor-network structures (labels + shapes)
  and check configurations;
* :mod:`repro.cache.store` — the :class:`CacheStore` byte-store
  protocol with an in-memory LRU tier (:class:`MemoryStore`), a
  persistent tier (:class:`DiskStore`, under ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro``, atomic writes, corruption-tolerant reads) and the
  promoting :class:`TieredStore` chain;
* :mod:`repro.cache.plans` / :mod:`repro.cache.results` — typed
  adapters caching :class:`~repro.tensornet.planner.ContractionPlan`
  and :class:`~repro.core.stats.CheckResult` objects.

:class:`CheckCache` bundles one store with both adapters — the object a
:class:`~repro.core.session.CheckSession` opens when its config says
``cache=True``, and that worker processes re-open against the same
directory so a pool warms itself.

Failure philosophy: the cache can only ever cause a recompute, never a
crash and never a wrong answer — damaged entries read as misses and
self-heal, failed writes are swallowed, and keys are derived from
semantic content plus a version salt so stale layouts are simply never
found.
"""

from __future__ import annotations

import os
from typing import Optional

from .fingerprint import (
    CACHE_VERSION,
    circuit_fingerprint,
    config_fingerprint,
    plan_key,
    request_fingerprint,
    result_key,
    structure_fingerprint,
)
from .plans import PlanCache
from .results import ResultCache
from .store import (
    CACHE_DIR_ENV,
    CacheStats,
    CacheStore,
    DEFAULT_MEMORY_ENTRIES,
    DiskStore,
    MemoryStore,
    TieredStore,
    count_by_kind,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_VERSION",
    "CacheStats",
    "CacheStore",
    "CheckCache",
    "DiskStore",
    "MemoryStore",
    "PlanCache",
    "ResultCache",
    "TieredStore",
    "circuit_fingerprint",
    "config_fingerprint",
    "count_by_kind",
    "default_cache_dir",
    "open_cache",
    "plan_key",
    "request_fingerprint",
    "result_key",
    "structure_fingerprint",
]


class CheckCache:
    """One store, both adapters: the session-facing cache facade."""

    def __init__(self, store: CacheStore):
        self.store = store
        self.plans = PlanCache(store)
        self.results = ResultCache(store)
        #: remote tier address this cache was opened with (None = local)
        self.cache_url: Optional[str] = None

    @classmethod
    def open(
        cls,
        cache_dir: Optional[os.PathLike] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        cache_url: Optional[str] = None,
    ) -> "CheckCache":
        """The standard tiered cache: LRU memory → disk (→ remote).

        ``cache_dir`` defaults to ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro`` (resolved at open time).  ``cache_url``
        appends a :class:`~repro.cluster.store.RemoteStore` tier
        pointing at a ``repro cache-server`` — ``None`` consults
        ``$REPRO_CACHE_URL``, empty disables.  The remote tier is
        strictly fail-open: with the server unreachable the chain
        behaves exactly like the local two-tier cache.
        """
        # Lazy import: repro.cluster imports this package's submodules,
        # so a module-level import here would be a cycle.
        from ..cluster.store import RemoteStore, resolve_cache_url

        resolved = resolve_cache_url(cache_url)
        tiers = [
            MemoryStore(max_entries=memory_entries),
            DiskStore(cache_dir),
        ]
        if resolved is not None:
            tiers.append(RemoteStore(resolved))
        cache = cls(TieredStore(tiers))
        cache.cache_url = resolved
        cache.plans.cache_url = resolved
        return cache

    @property
    def remote(self):
        """The :class:`~repro.cluster.store.RemoteStore` tier, if any."""
        for tier in getattr(self.store, "tiers", []):
            if tier.__class__.__name__ == "RemoteStore":
                return tier
        return None

    @property
    def directory(self) -> Optional[str]:
        """The persistent tier's directory, if any."""
        return self.store.directory

    def stats(self) -> CacheStats:
        """Sizes and lookup counters of the underlying store."""
        return self.store.stats()

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        return self.store.clear()

    def prune(self, max_bytes: int) -> int:
        """Evict oldest entries down to ``max_bytes``; returns removals."""
        return self.store.prune(max_bytes)


def open_cache(
    cache_dir: Optional[os.PathLike] = None,
    memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    cache_url: Optional[str] = None,
) -> CheckCache:
    """Module-level alias of :meth:`CheckCache.open`."""
    return CheckCache.open(
        cache_dir, memory_entries=memory_entries, cache_url=cache_url
    )
