"""Content-addressed caching & persistence: fingerprint once, never
replan, never recheck.

The subsystem has three layers:

* :mod:`repro.cache.fingerprint` — canonical, version-salted SHA-256
  fingerprints of circuits (instruction stream, qubit maps, gate
  matrices, Kraus data), tensor-network structures (labels + shapes)
  and check configurations;
* :mod:`repro.cache.store` — the :class:`CacheStore` byte-store
  protocol with an in-memory LRU tier (:class:`MemoryStore`), a
  persistent tier (:class:`DiskStore`, under ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro``, atomic writes, corruption-tolerant reads) and the
  promoting :class:`TieredStore` chain;
* :mod:`repro.cache.plans` / :mod:`repro.cache.results` — typed
  adapters caching :class:`~repro.tensornet.planner.ContractionPlan`
  and :class:`~repro.core.stats.CheckResult` objects.

:class:`CheckCache` bundles one store with both adapters — the object a
:class:`~repro.core.session.CheckSession` opens when its config says
``cache=True``, and that worker processes re-open against the same
directory so a pool warms itself.

Failure philosophy: the cache can only ever cause a recompute, never a
crash and never a wrong answer — damaged entries read as misses and
self-heal, failed writes are swallowed, and keys are derived from
semantic content plus a version salt so stale layouts are simply never
found.
"""

from __future__ import annotations

import os
from typing import Optional

from .fingerprint import (
    CACHE_VERSION,
    circuit_fingerprint,
    config_fingerprint,
    plan_key,
    request_fingerprint,
    result_key,
    structure_fingerprint,
)
from .plans import PlanCache
from .results import ResultCache
from .store import (
    CACHE_DIR_ENV,
    CacheStats,
    CacheStore,
    DEFAULT_MEMORY_ENTRIES,
    DiskStore,
    MemoryStore,
    TieredStore,
    count_by_kind,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_VERSION",
    "CacheStats",
    "CacheStore",
    "CheckCache",
    "DiskStore",
    "MemoryStore",
    "PlanCache",
    "ResultCache",
    "TieredStore",
    "circuit_fingerprint",
    "config_fingerprint",
    "count_by_kind",
    "default_cache_dir",
    "open_cache",
    "plan_key",
    "request_fingerprint",
    "result_key",
    "structure_fingerprint",
]


class CheckCache:
    """One store, both adapters: the session-facing cache facade."""

    def __init__(self, store: CacheStore):
        self.store = store
        self.plans = PlanCache(store)
        self.results = ResultCache(store)

    @classmethod
    def open(
        cls,
        cache_dir: Optional[os.PathLike] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> "CheckCache":
        """The standard two-tier cache: LRU memory in front of disk.

        ``cache_dir`` defaults to ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro`` (resolved at open time).
        """
        return cls(
            TieredStore([
                MemoryStore(max_entries=memory_entries),
                DiskStore(cache_dir),
            ])
        )

    @property
    def directory(self) -> Optional[str]:
        """The persistent tier's directory, if any."""
        return self.store.directory

    def stats(self) -> CacheStats:
        """Sizes and lookup counters of the underlying store."""
        return self.store.stats()

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        return self.store.clear()

    def prune(self, max_bytes: int) -> int:
        """Evict oldest entries down to ``max_bytes``; returns removals."""
        return self.store.prune(max_bytes)


def open_cache(
    cache_dir: Optional[os.PathLike] = None,
    memory_entries: int = DEFAULT_MEMORY_ENTRIES,
) -> CheckCache:
    """Module-level alias of :meth:`CheckCache.open`."""
    return CheckCache.open(cache_dir, memory_entries=memory_entries)
