"""The plan cache: contraction plans keyed by network structure.

A :class:`PlanCache` adapts a byte :class:`~repro.cache.store.CacheStore`
to :class:`~repro.tensornet.planner.ContractionPlan` objects.  Keys are
``(structure fingerprint, planner, order_method, max_intermediate_size,
plan_budget_seconds, plan_seed)`` — see
:func:`repro.cache.fingerprint.plan_key` — so every process that ever
met a structurally identical network shares the (possibly expensive)
min-fill / tree-decomposition / budgeted-search planning pass through
the disk tier; searched plans carry their
:class:`~repro.planning.PlanSearchReport` into the cache, so a warm
replica knows how its plan was found without ever re-searching.

On top of the store the adapter keeps a small object-level LRU memo:
store tiers hold pickled bytes, and Algorithm I resolves the same plan
once per trace term, so hot plans must be object hits, not repeated
deserialisations.

Robustness: a stored payload that fails to unpickle — version skew,
torn write that slipped past the frame check — reads as a miss, never
an exception.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from .fingerprint import plan_key, structure_fingerprint
from .store import CacheStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tensornet import TensorNetwork
    from ..tensornet.planner import ContractionPlan

#: Decoded-plan memo capacity (plans, not bytes).
DEFAULT_PLAN_MEMO = 256


class PlanCache:
    """Content-addressed cache of :class:`ContractionPlan` objects."""

    def __init__(self, store: CacheStore, max_memo: int = DEFAULT_PLAN_MEMO):
        if max_memo < 1:
            raise ValueError("max_memo must be at least 1")
        self.store = store
        self.max_memo = max_memo
        self._memo: "OrderedDict[str, ContractionPlan]" = OrderedDict()
        #: adapter-level lookup counters (object memo + store combined)
        self.hits = 0
        self.misses = 0
        #: remote tier address this cache was opened with (set by
        #: :meth:`repro.cache.CheckCache.open`); travels in backend
        #: specs so worker processes rebuild the same tier chain
        self.cache_url: Optional[str] = None

    @property
    def directory(self) -> Optional[str]:
        """The backing store's persistent location, if any."""
        return self.store.directory

    @property
    def spec(self):
        """The picklable, hashable rebuild recipe for worker specs.

        The bare directory when the cache is local (the historical
        form), else a ``(directory, cache_url)`` pair — both accepted
        by :func:`repro.backends.base._coerce_plan_cache`.
        """
        if self.cache_url is None:
            return self.directory
        return (self.directory, self.cache_url)

    def key_for(
        self,
        network: "TensorNetwork",
        *,
        planner: str,
        order_method: str,
        max_intermediate_size: Optional[int],
        plan_budget_seconds=None,
        plan_seed: int = 0,
    ) -> str:
        """The store key for ``network`` under the given planning knobs."""
        return plan_key(
            structure_fingerprint(network),
            planner,
            order_method,
            max_intermediate_size,
            plan_budget_seconds=plan_budget_seconds,
            plan_seed=plan_seed,
        )

    def get(
        self,
        network: "TensorNetwork",
        *,
        planner: str,
        order_method: str,
        max_intermediate_size: Optional[int],
        plan_budget_seconds=None,
        plan_seed: int = 0,
    ) -> Optional["ContractionPlan"]:
        """The cached plan for ``network``, or ``None`` on a miss."""
        key = self.key_for(
            network,
            planner=planner,
            order_method=order_method,
            max_intermediate_size=max_intermediate_size,
            plan_budget_seconds=plan_budget_seconds,
            plan_seed=plan_seed,
        )
        plan = self._memo.get(key)
        if plan is not None:
            self._memo.move_to_end(key)
            self.hits += 1
            return plan
        payload = self.store.get(key)
        if payload is not None:
            try:
                plan = pickle.loads(payload)
            except Exception:
                plan = None
        if plan is None:
            self.misses += 1
            return None
        self._remember(key, plan)
        self.hits += 1
        return plan

    def get_or_build(
        self,
        network: "TensorNetwork",
        builder,
        *,
        planner: str,
        order_method: str,
        max_intermediate_size: Optional[int],
        plan_budget_seconds=None,
        plan_seed: int = 0,
    ):
        """The cached plan, or ``builder()``'s plan stored and returned.

        Returns ``(plan, state)`` with ``state`` one of ``"hit"`` /
        ``"miss"`` — the one place that pairs a lookup with the
        fill-on-miss store, so callers (the CLI's ``plan`` command)
        cannot drift from the key protocol.
        """
        knobs = dict(
            planner=planner,
            order_method=order_method,
            max_intermediate_size=max_intermediate_size,
            plan_budget_seconds=plan_budget_seconds,
            plan_seed=plan_seed,
        )
        plan = self.get(network, **knobs)
        if plan is not None:
            return plan, "hit"
        plan = builder()
        self.put(network, plan, **knobs)
        return plan, "miss"

    def put(
        self,
        network: "TensorNetwork",
        plan: "ContractionPlan",
        *,
        planner: str,
        order_method: str,
        max_intermediate_size: Optional[int],
        plan_budget_seconds=None,
        plan_seed: int = 0,
    ) -> None:
        """Store a freshly built plan under its structure key."""
        key = self.key_for(
            network,
            planner=planner,
            order_method=order_method,
            max_intermediate_size=max_intermediate_size,
            plan_budget_seconds=plan_budget_seconds,
            plan_seed=plan_seed,
        )
        self.store.put(key, pickle.dumps(plan, pickle.HIGHEST_PROTOCOL))
        self._remember(key, plan)

    def _remember(self, key: str, plan: "ContractionPlan") -> None:
        self._memo[key] = plan
        self._memo.move_to_end(key)
        while len(self._memo) > self.max_memo:
            self._memo.popitem(last=False)
