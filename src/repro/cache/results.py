"""The result cache: whole check verdicts keyed by circuit content.

A :class:`ResultCache` adapts a byte store to
:class:`~repro.core.stats.CheckResult` objects keyed by
``(ideal fingerprint, noisy fingerprint, config fingerprint)`` — see
:func:`repro.cache.fingerprint.result_key`.  A hit means the *entire*
check (planning, contraction, verdict) is replaced by one lookup, which
is the dominant win for the repeated traffic a checking service sees.

What may be cached is the caller's policy
(:meth:`repro.core.session.CheckSession.check` refuses to cache
wall-clock-budgeted runs, whose truncation point is nondeterministic);
this adapter only guarantees that damaged or unreadable payloads read
as misses, never exceptions, so corruption degrades to recomputation.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Optional

from .fingerprint import request_fingerprint
from .store import CacheStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuits import QuantumCircuit
    from ..core.stats import CheckResult


class ResultCache:
    """Content-addressed cache of :class:`CheckResult` objects."""

    def __init__(self, store: CacheStore):
        self.store = store
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Optional[str]:
        """The backing store's persistent location, if any."""
        return self.store.directory

    def key_for(
        self,
        ideal: "QuantumCircuit",
        noisy: "QuantumCircuit",
        config,
    ) -> str:
        """The store key of one ``(ideal, noisy, config)`` check.

        This is exactly the request fingerprint of
        :func:`repro.cache.fingerprint.request_fingerprint` — the
        result cache is keyed off the request's semantic identity.
        """
        return request_fingerprint(ideal, noisy, config)

    def get(self, key: str) -> Optional["CheckResult"]:
        """The cached result under ``key``, or ``None`` on a miss.

        Every hit deserialises a fresh object, so callers may freely
        mutate the returned result (re-stamp timings, mark counters)
        without corrupting the cached copy.
        """
        payload = self.store.get(key)
        result = None
        if payload is not None:
            try:
                result = pickle.loads(payload)
            except Exception:
                result = None
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: "CheckResult") -> None:
        """Store a computed result under its content key."""
        self.store.put(key, pickle.dumps(result, pickle.HIGHEST_PROTOCOL))
