"""``repro cache-server`` — the shared remote cache tier, as a daemon.

One asyncio TCP server exposing a :class:`~repro.cache.store.CacheStore`
over the cluster protocol: ``GET``/``PUT``/``STATS``/``PRUNE``/``PING``
frames in, ``HIT``/``MISS``/``OK``/``JSON``/``PONG`` frames out.  The
backing store is the same memory-LRU-over-disk chain a local session
uses, so the server is nothing but a network face on the existing
tiers — one more place the "cache can only cause recomputes" contract
holds.

Robustness mirrors :class:`~repro.cache.store.DiskStore`'s posture: a
client sending garbage magic, a truncated frame or an unknown opcode
gets an ``ERR`` reply where a reply is still possible and its
connection closed otherwise; the server itself never stops serving the
other connections.  Keys are validated against the content-addressed
alphabet before touching the filesystem, so a malicious key cannot
escape the cache directory.

Lifecycle matches the HTTP service: construction is cheap,
:meth:`CacheServer.start` binds (``port=0`` picks an ephemeral port,
announced in the JSON ready line), ``SIGTERM``/``SIGINT`` drain and
exit.  ``repro cache-server`` is the CLI front end.
"""

from __future__ import annotations

import asyncio
import json
import signal
import string
import sys
from typing import Optional

from ..cache.store import (
    DEFAULT_MEMORY_ENTRIES,
    CacheStore,
    DiskStore,
    MemoryStore,
    TieredStore,
)
from .protocol import (
    OP_ERR,
    OP_GET,
    OP_HIT,
    OP_JSON,
    OP_MISS,
    OP_NAMES,
    OP_OK,
    OP_PING,
    OP_PONG,
    OP_PRUNE,
    OP_PUT,
    OP_STATS,
    ProtocolError,
    read_frame_async,
    unpack_kv,
    write_frame_async,
)

#: Characters a cache key may contain (content-addressed hex digests
#: plus the ``plan-``/``result-`` kind prefixes).
_KEY_ALPHABET = frozenset(string.ascii_lowercase + string.digits + "-")

#: Upper bound on key length; real keys are ``<kind>-<64 hex>``.
_MAX_KEY_LENGTH = 128


def valid_key(key: str) -> bool:
    """Whether ``key`` is shaped like a content-addressed cache key.

    The guard that keeps a hostile peer's ``../../etc/passwd`` out of
    :meth:`DiskStore._path` — defence in depth on top of the trusted-
    network deployment model.
    """
    return (
        0 < len(key) <= _MAX_KEY_LENGTH
        and set(key) <= _KEY_ALPHABET
        and not key.startswith("-")
    )


class CacheServer:
    """One store, served over asyncio TCP cluster frames."""

    def __init__(
        self,
        store: Optional[CacheStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir=None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        log_stream=None,
    ):
        if store is None:
            store = TieredStore([
                MemoryStore(max_entries=memory_entries),
                DiskStore(cache_dir),
            ])
        self.store = store
        self.host = host
        self.config_port = port
        self.log_stream = log_stream if log_stream is not None else sys.stderr
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._port: Optional[int] = None
        self._shutdown = asyncio.Event()
        #: request counters by operation name (``stats`` reply, logs)
        self.requests = {
            name: 0 for name in ("get", "put", "stats", "prune", "ping",
                                 "errors")
        }

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._port is None:
            raise RuntimeError("cache server is not started")
        return self._port

    def _log(self, record: dict) -> None:
        print(json.dumps(record), file=self.log_stream, flush=True)

    # --- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.config_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._log({
            "event": "ready",
            "kind": "cache-server",
            "host": self.host,
            "port": self._port,
            "directory": self.store.directory,
        })

    def request_shutdown(self) -> None:
        """Begin shutdown (idempotent, signal-handler safe)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)

    async def wait_closed(self) -> None:
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        self._log({
            "event": "shutdown",
            "kind": "cache-server",
            "requests": dict(self.requests),
        })

    async def run(self) -> None:
        """:meth:`start` + serve until :meth:`request_shutdown`."""
        await self.start()
        await self.wait_closed()

    # --- request handling ----------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    op, payload = await read_frame_async(reader)
                except EOFError:
                    return
                except asyncio.CancelledError:
                    return  # loop teardown with the connection still open
                except ProtocolError as exc:
                    # a peer we cannot frame-sync with anymore: tell it
                    # once (best-effort) and hang up
                    self.requests["errors"] += 1
                    try:
                        await write_frame_async(
                            writer, OP_ERR, str(exc).encode()
                        )
                    except (OSError, ConnectionError):
                        pass
                    return
                try:
                    await self._dispatch(writer, op, payload)
                except (OSError, ConnectionError):
                    return  # peer went away mid-reply
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError, asyncio.CancelledError):
                # CancelledError: loop teardown cancelled this handler
                # while the connection was still open — the socket is
                # closed either way, and re-raising would only print a
                # traceback mid-shutdown
                pass

    async def _dispatch(
        self, writer: asyncio.StreamWriter, op: int, payload: bytes
    ) -> None:
        if op == OP_PING:
            self.requests["ping"] += 1
            await write_frame_async(writer, OP_PONG)
            return
        if op == OP_GET:
            self.requests["get"] += 1
            key = payload.decode("utf-8", errors="replace")
            entry = self.store.get(key) if valid_key(key) else None
            if entry is None:
                await write_frame_async(writer, OP_MISS)
            else:
                await write_frame_async(writer, OP_HIT, entry)
            return
        if op == OP_PUT:
            self.requests["put"] += 1
            try:
                key, blob = unpack_kv(payload)
            except ProtocolError as exc:
                self.requests["errors"] += 1
                await write_frame_async(writer, OP_ERR, str(exc).encode())
                return
            if not valid_key(key):
                self.requests["errors"] += 1
                await write_frame_async(
                    writer, OP_ERR, f"invalid cache key {key!r}".encode()
                )
                return
            self.store.put(key, blob)
            await write_frame_async(writer, OP_OK)
            return
        if op == OP_STATS:
            self.requests["stats"] += 1
            record = {
                "stats": self.store.stats().to_dict(),
                "requests": dict(self.requests),
            }
            await write_frame_async(
                writer, OP_JSON, json.dumps(record).encode()
            )
            return
        if op == OP_PRUNE:
            self.requests["prune"] += 1
            if len(payload) != 8:
                self.requests["errors"] += 1
                await write_frame_async(
                    writer, OP_ERR, b"prune payload must be 8 bytes"
                )
                return
            max_bytes = int.from_bytes(payload, "big")
            if max_bytes == 0:
                removed = self.store.clear()
            else:
                removed = self.store.prune(max_bytes)
            await write_frame_async(
                writer, OP_JSON,
                json.dumps({"removed": removed}).encode(),
            )
            return
        self.requests["errors"] += 1
        name = OP_NAMES.get(op, hex(op))
        await write_frame_async(
            writer, OP_ERR,
            f"cache server does not speak opcode {name}".encode(),
        )


async def serve_cache(
    store: Optional[CacheStore] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    install_signal_handlers: bool = True,
    **kwargs,
) -> None:
    """Run a :class:`CacheServer` until ``SIGTERM``/``SIGINT``.

    The blocking entry point behind ``repro cache-server``.
    """
    server = CacheServer(store, host, port, **kwargs)
    await server.start()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await server.wait_closed()
