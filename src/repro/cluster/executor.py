""":class:`RemoteSliceExecutor` — slice chunks across ``repro worker`` daemons.

The distributed sibling of
:class:`~repro.parallel.executors.ProcessSliceExecutor`: the same
chunked dispatch (batch-aligned chunks, payload pickled once and keyed
by its sha1 digest), the same deterministic chunk-order reduce, but the
workers are sockets instead of forked processes — so they can live on
other machines, and so they can *die*.

The failure model is therefore the core of this class:

* Every chunk exchange runs under a heartbeat grace (a worker that goes
  silent — no ``HEARTBEAT``, no ``RESULT`` — is dead) and a per-chunk
  deadline (a worker that heartbeats forever without finishing is a
  straggler; its chunk is taken away).
* A dead or straggling worker's chunk goes back on the queue and is
  re-dispatched to any surviving worker; the worker is dropped from the
  pool for the rest of the contraction.
* When the pool empties, the remaining chunks run locally on the
  dispatching backend — a fleet of zero workers degrades to
  :class:`~repro.parallel.executors.SerialExecutor` semantics, never to
  an error (``local_fallback=False`` opts administrative callers out,
  surfacing :class:`~repro.api.errors.WorkerLostError` instead).

Determinism: partial sums are reduced in chunk index order whatever
worker produced them and however often they were re-dispatched, so the
scalar is bit-identical to a single-host
:class:`~repro.parallel.executors.ProcessSliceExecutor` run with the
same chunking, and agrees with ``SerialExecutor`` to the suite's 1e-9
bound.
"""

from __future__ import annotations

import hashlib
import pickle
import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import trace as _trace
from ..parallel.executors import (
    SliceExecutor,
    chunk_assignments,
    fold_measured_stats,
)
from ..tensornet.planner import iter_slice_assignments
from . import metrics as _metrics
from .protocol import (
    OP_ERR,
    OP_EXEC,
    OP_HEARTBEAT,
    OP_INSTALL,
    OP_NEED_BLOB,
    OP_OK,
    OP_PING,
    OP_PONG,
    OP_RESULT,
    ProtocolError,
    connect,
    pack_kv,
    parse_address,
    recv_frame,
    send_frame,
)
from .worker_server import DEFAULT_HEARTBEAT_INTERVAL

#: Environment variable naming the worker fleet (comma-separated
#: ``host:port`` list), the executor-side sibling of ``REPRO_CACHE_URL``.
WORKERS_ENV = "REPRO_WORKERS"

#: Default TCP connect timeout per worker (seconds).
DEFAULT_CONNECT_TIMEOUT = 1.0

#: Grace multiplier: a worker is declared dead after
#: ``heartbeat_interval * DEFAULT_GRACE_FACTOR`` silent seconds.
DEFAULT_GRACE_FACTOR = 6.0

#: Default hard per-chunk wall-clock bound (seconds).  Generous — the
#: deadline exists to unstick a batch from a pathological straggler,
#: not to police normal variance.
DEFAULT_CHUNK_DEADLINE = 300.0


def resolve_workers(
    workers: Union[None, str, Sequence[str]] = None,
) -> Optional[Tuple[str, ...]]:
    """Normalise a worker-fleet spec to a tuple of ``host:port`` strings.

    Accepts a comma-separated string (the CLI/env form), any sequence of
    address strings, or ``None`` — which consults ``$REPRO_WORKERS``.
    Empty specs resolve to ``None`` ("no fleet").  Every address is
    validated eagerly so a typo fails at configuration time, not in the
    middle of a batch.
    """
    import os

    if workers is None:
        workers = os.environ.get(WORKERS_ENV)
    if workers is None:
        return None
    if isinstance(workers, str):
        workers = [part for part in workers.split(",")]
    addresses = tuple(part.strip() for part in workers if part.strip())
    if not addresses:
        return None
    for address in addresses:
        parse_address(address)
    return addresses


class WorkerClient:
    """One persistent connection to a ``repro worker`` daemon.

    Not thread-safe by design: the executor gives each worker exactly
    one dispatch thread.  All faults — dial failure, silence past the
    heartbeat grace, protocol damage, a worker-side error reply — raise
    :class:`~repro.api.errors.WorkerLostError`; the caller owns requeue
    policy.
    """

    def __init__(
        self,
        url: str,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        heartbeat_grace: float = (
            DEFAULT_HEARTBEAT_INTERVAL * DEFAULT_GRACE_FACTOR
        ),
        chunk_deadline: Optional[float] = DEFAULT_CHUNK_DEADLINE,
    ):
        self.url = url
        self.host, self.port = parse_address(url)
        self.connect_timeout = connect_timeout
        self.heartbeat_grace = heartbeat_grace
        self.chunk_deadline = chunk_deadline
        self._sock: Optional[socket.socket] = None
        #: digests this worker confirmed installing over this connection
        self._installed: set = set()

    def _lost(self, why: str, cause: Optional[BaseException] = None):
        from ..api.errors import WorkerLostError

        self.close()
        error = WorkerLostError(
            f"worker {self.url} lost: {why}",
            details={"worker": self.url},
        )
        if cause is not None:
            raise error from cause
        raise error

    def _connection(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = connect(self.host, self.port, self.connect_timeout)
            except OSError as exc:
                self._lost(f"connect failed: {exc}", exc)
            sock.settimeout(self.heartbeat_grace)
            self._sock = sock
            self._installed = set()  # a fresh process knows nothing
        return self._sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        self._installed = set()
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def ping(self) -> bool:
        """Liveness probe; never raises."""
        try:
            sock = self._connection()
            send_frame(sock, OP_PING)
            op, _ = recv_frame(sock)
            return op == OP_PONG
        except Exception:
            self.close()
            return False

    def _install(self, digest: str, blob: bytes) -> None:
        sock = self._connection()
        send_frame(sock, OP_INSTALL, pack_kv(digest, blob))
        op, payload = recv_frame(sock)
        if op != OP_OK:
            self._lost(
                f"install of payload {digest[:12]} rejected: "
                f"{payload[:200]!r}"
            )
        self._installed.add(digest)

    def run_chunk(
        self,
        spec: Dict[str, object],
        digest: str,
        blob: bytes,
        assignments: Sequence[Dict[str, int]],
        tracing: bool,
    ):
        """Execute one chunk remotely → ``(value, stats)``.

        Ships the payload blob first if this connection has not
        installed ``digest`` yet (or the worker asks via ``NEED_BLOB`` —
        a restarted worker forgets, and the executor must not care).
        """
        try:
            sock = self._connection()
            if digest not in self._installed:
                self._install(digest, blob)
            request = pickle.dumps(
                (spec, digest, assignments, tracing),
                pickle.HIGHEST_PROTOCOL,
            )
            send_frame(sock, OP_EXEC, request)
            started = time.monotonic()
            while True:
                if (
                    self.chunk_deadline is not None
                    and time.monotonic() - started > self.chunk_deadline
                ):
                    self._lost(
                        f"chunk exceeded the {self.chunk_deadline:g}s "
                        f"deadline"
                    )
                try:
                    op, payload = recv_frame(sock)
                except socket.timeout as exc:
                    self._lost(
                        f"no heartbeat for {self.heartbeat_grace:g}s", exc
                    )
                if op == OP_HEARTBEAT:
                    continue
                if op == OP_NEED_BLOB:
                    # restarted worker: install and re-dispatch in place
                    self._install(digest, blob)
                    send_frame(sock, OP_EXEC, request)
                    started = time.monotonic()
                    continue
                if op == OP_RESULT:
                    return pickle.loads(payload)
                if op == OP_ERR:
                    self._lost(
                        f"chunk failed remotely: "
                        f"{payload.decode('utf-8', errors='replace')[:500]}"
                    )
                self._lost(f"unexpected reply opcode {op:#x}")
        except (OSError, ProtocolError, pickle.PickleError, EOFError) as exc:
            self._lost(f"{type(exc).__name__}: {exc}", exc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerClient({self.url!r})"


class RemoteSliceExecutor(SliceExecutor):
    """Dispatch slice chunks to a fleet of ``repro worker`` daemons.

    Parameters
    ----------
    workers:
        Worker addresses — comma-separated string, sequence, or ``None``
        to read ``$REPRO_WORKERS``.
    chunk_size:
        Assignments per dispatched chunk; ``None`` auto-sizes like
        :class:`~repro.parallel.executors.ProcessSliceExecutor`.
    connect_timeout / heartbeat_grace / chunk_deadline:
        Per-worker fault bounds, passed to :class:`WorkerClient`.
    local_fallback:
        ``True`` (default): chunks left when every worker is dead run
        on the dispatching backend in-process.  ``False``: raise
        :class:`~repro.api.errors.WorkerLostError` instead.
    """

    def __init__(
        self,
        workers: Union[None, str, Sequence[str]] = None,
        chunk_size: Optional[int] = None,
        *,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        heartbeat_grace: float = (
            DEFAULT_HEARTBEAT_INTERVAL * DEFAULT_GRACE_FACTOR
        ),
        chunk_deadline: Optional[float] = DEFAULT_CHUNK_DEADLINE,
        local_fallback: bool = True,
    ):
        addresses = resolve_workers(workers)
        if not addresses:
            raise ValueError(
                "RemoteSliceExecutor needs at least one worker address "
                "(argument or $REPRO_WORKERS)"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.addresses = addresses
        self.chunk_size = chunk_size
        self.local_fallback = local_fallback
        self._clients = [
            WorkerClient(
                url,
                connect_timeout=connect_timeout,
                heartbeat_grace=heartbeat_grace,
                chunk_deadline=chunk_deadline,
            )
            for url in addresses
        ]

    @property
    def jobs(self) -> int:
        """Fleet size — the parallelism the chunker plans for."""
        return len(self._clients)

    def close(self) -> None:
        for client in self._clients:
            client.close()

    # --- dispatch ------------------------------------------------------------

    def contract(self, backend, network, plan, stats=None):
        assignments = list(iter_slice_assignments(plan))
        if len(assignments) < 2:
            return backend.contract_scalar(
                network, stats=stats, plan=plan, assignments=assignments
            )
        batch = backend.effective_slice_batch(plan)
        align = max(1, min(batch, len(assignments) // max(1, self.jobs)))
        chunks = chunk_assignments(
            assignments, self.jobs, self.chunk_size, align=align
        )
        spec = backend.describe()
        blob = pickle.dumps((network, plan), pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha1(blob).hexdigest()
        recorder = _trace.current_recorder()
        tracing = recorder is not None

        pending: "queue.Queue" = queue.Queue()
        for item in enumerate(chunks):
            pending.put(item)
        results: Dict[int, tuple] = {}
        remaining = [len(chunks)]
        lock = threading.Lock()

        def dispatch_loop(client: WorkerClient) -> None:
            while True:
                with lock:
                    if remaining[0] == 0:
                        return
                try:
                    index, chunk = pending.get(timeout=0.05)
                except queue.Empty:
                    continue
                try:
                    value, chunk_stats = client.run_chunk(
                        spec, digest, blob, chunk, tracing
                    )
                except BaseException:
                    # dead or straggling worker: its chunk goes back on
                    # the queue for the survivors, the worker is out for
                    # the rest of this contraction
                    pending.put((index, chunk))
                    _metrics.increment("remote_redispatches")
                    _metrics.increment("remote_workers_lost")
                    return
                with lock:
                    results[index] = (client.url, value, chunk_stats)
                    remaining[0] -= 1
                _metrics.increment("remote_chunks")

        with _trace.span("slices.remote.dispatch") as dispatch_span:
            dispatch_span.set(
                chunks=len(chunks), workers=self.jobs, digest=digest[:12]
            )
            threads = [
                threading.Thread(
                    target=dispatch_loop,
                    args=(client,),
                    name=f"repro-remote-{client.url}",
                    daemon=True,
                )
                for client in self._clients
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # every thread has returned: either all chunks landed, or
            # the surviving queue is work the dead pool never finished
            leftovers = []
            while True:
                try:
                    leftovers.append(pending.get_nowait())
                except queue.Empty:
                    break
            leftovers = [
                item for item in leftovers if item[0] not in results
            ]
            if leftovers and not self.local_fallback:
                from ..api.errors import WorkerLostError

                raise WorkerLostError(
                    f"{len(leftovers)} chunk(s) undispatchable: every "
                    f"worker in {list(self.addresses)} is lost",
                    details={"workers": list(self.addresses)},
                )
            for index, chunk in leftovers:
                chunk_stats = type(stats)() if stats is not None else None
                value = backend.contract_scalar(
                    network, stats=chunk_stats, plan=plan,
                    assignments=chunk,
                )
                results[index] = (None, value, chunk_stats)
                _metrics.increment("remote_fallback_chunks")
            # chunk-index-order reduce: bit-identical however the fleet
            # scheduled, re-dispatched or dropped the work
            total = 0j
            for index in range(len(chunks)):
                origin, value, chunk_stats = results[index]
                total += value
                fold_measured_stats(stats, chunk_stats)
                if tracing and chunk_stats is not None:
                    records = (
                        chunk_stats.extra.pop("trace_spans", None)
                        if hasattr(chunk_stats, "extra") else None
                    )
                    if records:
                        recorder.fold(
                            records,
                            attributes={
                                "chunk": index,
                                "worker": origin or "local",
                            },
                            align_start_ns=dispatch_span.span.start_ns,
                        )
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteSliceExecutor(workers={list(self.addresses)!r}, "
            f"chunk_size={self.chunk_size})"
        )
