"""The cluster wire protocol: length-prefixed binary frames.

One framing for both cluster daemons (``repro cache-server`` and
``repro worker``) and both clients (:class:`~repro.cluster.store.
RemoteStore`, :class:`~repro.cluster.executor.RemoteSliceExecutor`):

.. code-block:: text

    +--------+--------+-----------------+------------------+
    | magic  | opcode | payload length  | payload          |
    | 5 B    | 1 B    | 4 B big-endian  | `length` bytes   |
    +--------+--------+-----------------+------------------+

The magic (``RPCL1``) is a layout version: bump it with the frame
format.  Frames larger than :data:`MAX_FRAME_BYTES` are rejected before
any allocation, so a corrupt length field cannot make a peer swallow
gigabytes.

Damage on the read side — wrong magic, short read, oversize length —
raises :class:`ProtocolError`, a plain internal exception.  Clients map
it to their fail-open policy (a cache read becomes a miss, an executor
chunk is re-dispatched); servers answer :data:`OP_ERR` where they still
can and close the connection otherwise.  Nothing in this module ever
lets a malformed peer crash the process.

Payload conventions per opcode live with the daemons; this module only
moves framed bytes, synchronously (blocking sockets, the client side)
and asynchronously (``asyncio`` streams, the server side).
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Optional, Tuple

#: Frame layout version tag; every frame starts with these bytes.
MAGIC = b"RPCL1"

#: Hard bound on one frame's payload (512 MiB): far above any chunk or
#: cache entry this system ships, far below a length field gone wild.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_HEADER = struct.Struct(f">{len(MAGIC)}sBI")

# --- opcodes ----------------------------------------------------------------
# Requests and replies share one numbering; each daemon documents the
# subset it speaks.  Values are stable wire API.

OP_PING = 0x01        #: liveness probe (both daemons)
OP_PONG = 0x02        #: reply to PING
OP_GET = 0x10         #: cache: key in, HIT/MISS out
OP_PUT = 0x11         #: cache: key + payload in, OK out
OP_STATS = 0x12       #: cache: JSON CacheStats out
OP_PRUNE = 0x13       #: cache: 8-byte byte budget in, JSON out
OP_HIT = 0x14         #: cache reply: payload follows
OP_MISS = 0x15        #: cache reply: no entry
OP_OK = 0x16          #: generic success reply
OP_JSON = 0x17        #: reply: UTF-8 JSON payload
OP_INSTALL = 0x20     #: worker: digest + (network, plan) blob in, OK out
OP_EXEC = 0x21        #: worker: pickled chunk request in
OP_RESULT = 0x22      #: worker reply: pickled (value, stats)
OP_NEED_BLOB = 0x23   #: worker reply: EXEC names an uninstalled digest
OP_HEARTBEAT = 0x24   #: worker liveness tick while a chunk computes
OP_ERR = 0x7F         #: reply: UTF-8 error message

#: Opcode → name, for error messages and traces.
OP_NAMES = {
    value: name
    for name, value in globals().items()
    if name.startswith("OP_") and isinstance(value, int)
}


class ProtocolError(Exception):
    """A frame this peer cannot read: bad magic, truncation, oversize.

    Internal signal only — clients translate it into their fail-open
    behaviour; it never propagates out of the cluster subsystem.
    """


def parse_address(url: str) -> Tuple[str, int]:
    """``"host:port"`` (or ``"tcp://host:port"``) → ``(host, port)``.

    The address form every cluster knob accepts: ``--cache-url``,
    ``$REPRO_CACHE_URL``, ``--workers`` and
    :class:`~repro.core.session.CheckConfig` alike.
    """
    if not isinstance(url, str):
        raise TypeError(
            f"cluster address must be a 'host:port' string, got "
            f"{type(url).__name__} {url!r}"
        )
    stripped = url.strip()
    if stripped.startswith("tcp://"):
        stripped = stripped[len("tcp://"):]
    host, sep, port_text = stripped.rpartition(":")
    if not sep or not host or not port_text:
        raise ValueError(
            f"cluster address must look like 'host:port', got {url!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"cluster address has a non-numeric port: {url!r}"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(
            f"cluster address port must be in 1..65535, got {url!r}"
        )
    return host, port


def encode_frame(op: int, payload: bytes = b"") -> bytes:
    """One wire frame: header + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return _HEADER.pack(MAGIC, op, len(payload)) + payload


def pack_kv(key: str, payload: bytes) -> bytes:
    """Frame body carrying a cache key plus its blob (``OP_PUT``)."""
    raw_key = key.encode()
    return len(raw_key).to_bytes(2, "big") + raw_key + payload


def unpack_kv(body: bytes) -> Tuple[str, bytes]:
    """Inverse of :func:`pack_kv`; raises :class:`ProtocolError` on damage."""
    if len(body) < 2:
        raise ProtocolError("key-value body shorter than its key length")
    key_len = int.from_bytes(body[:2], "big")
    if len(body) < 2 + key_len:
        raise ProtocolError("key-value body truncated inside the key")
    key = body[2:2 + key_len].decode("utf-8", errors="replace")
    return key, body[2 + key_len:]


# --- synchronous (client) side ----------------------------------------------


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ProtocolError`.

    A peer closing mid-frame (worker killed, server restarted) surfaces
    as the same error as garbage — callers only need one recovery path.
    """
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except (OSError, ValueError) as exc:
            raise ProtocolError(f"connection failed mid-read: {exc}") from exc
        if not chunk:
            raise ProtocolError(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, op: int, payload: bytes = b"") -> None:
    """Write one frame to a blocking socket."""
    try:
        sock.sendall(encode_frame(op, payload))
    except (OSError, ValueError) as exc:
        raise ProtocolError(f"connection failed mid-write: {exc}") from exc


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame from a blocking socket → ``(opcode, payload)``.

    Honour the socket's timeout: ``socket.timeout`` propagates (the
    caller decides whether a silent peer is dead), everything else that
    is wrong with the bytes raises :class:`ProtocolError`.
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, op, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame declares {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return op, _recv_exact(sock, length)


def connect(
    host: str, port: int, timeout: Optional[float]
) -> socket.socket:
    """A connected TCP socket with ``TCP_NODELAY`` and the timeout set.

    Raises ``OSError`` on refusal/unreachability — the caller's retry
    and fail-open policy lives above this.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    return sock


# --- asynchronous (server) side ---------------------------------------------


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Read one frame from an asyncio stream → ``(opcode, payload)``.

    ``asyncio.IncompleteReadError`` (peer went away mid-frame) and bad
    bytes both raise :class:`ProtocolError`; a clean EOF *before* any
    header byte raises ``EOFError`` so connection loops can distinguish
    "done" from "damaged".
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed between frames") from exc
        raise ProtocolError(
            "connection closed inside a frame header"
        ) from exc
    magic, op, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame declares {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "connection closed inside a frame payload"
        ) from exc
    return op, payload


async def write_frame_async(
    writer: asyncio.StreamWriter, op: int, payload: bytes = b""
) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(op, payload))
    await writer.drain()
