"""``repro worker`` — one remote slice-execution daemon.

A worker owns the same per-process warm state a
:class:`~concurrent.futures.ProcessPoolExecutor` worker does — cached
backend instances and a digest-keyed ``(network, plan)`` payload — and
exposes it over cluster frames instead of pipe-based IPC:

``PING``
    liveness probe → ``PONG``.
``INSTALL``
    ``digest`` + pickled ``(network, plan)`` blob (``pack_kv`` body) →
    ``OK``.  Ships once per contraction per worker; every subsequent
    chunk of that contraction names only the digest.
``EXEC``
    pickled ``(spec, digest, assignments, trace_spans)`` → ``RESULT``
    (pickled ``(value, stats)``), after ``HEARTBEAT`` frames every
    ``heartbeat_interval`` seconds while the chunk computes.  Naming a
    digest this worker has never seen → ``NEED_BLOB``, telling the
    dispatcher to ``INSTALL`` and retry.  A failing contraction →
    ``ERR`` with the message; the dispatcher decides whether that is a
    lost worker or a poisoned chunk.

Chunks execute on a single-thread pool (a worker is one core's worth of
compute — run several daemons for more), with the asyncio loop free to
tick heartbeats, so a dispatcher can tell "slow chunk, alive worker"
from "dead worker" without guessing.

``EXEC``/``INSTALL`` payloads are unpickled, which is remote code
execution by design — identical to the trust model of the process pool
it mirrors.  Bind workers to loopback or a private network only; see
``docs/cluster.md``.

``fail_after_chunks`` hard-exits the process the moment the N+1-th
``EXEC`` arrives — the deterministic "worker dies mid-batch" every
re-dispatch test needs, instead of a timing-dependent kill.
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
import signal
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from ..parallel.worker import run_slice_chunk_blob
from .protocol import (
    OP_ERR,
    OP_EXEC,
    OP_HEARTBEAT,
    OP_INSTALL,
    OP_NAMES,
    OP_NEED_BLOB,
    OP_OK,
    OP_PING,
    OP_PONG,
    OP_RESULT,
    ProtocolError,
    read_frame_async,
    unpack_kv,
    write_frame_async,
)

#: Seconds between HEARTBEAT frames while a chunk computes.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Environment knob the CLI wires to ``fail_after_chunks`` — lets the
#: simulated-fleet tests spawn a worker that deterministically dies
#: before its N+1-th chunk.
EXIT_AFTER_ENV = "REPRO_WORKER_EXIT_AFTER"


class WorkerServer:
    """One remote slice worker: warm caches behind an asyncio socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        fail_after_chunks: Optional[int] = None,
        log_stream=None,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.host = host
        self.config_port = port
        self.heartbeat_interval = heartbeat_interval
        self.fail_after_chunks = fail_after_chunks
        self.log_stream = log_stream if log_stream is not None else sys.stderr
        #: digest → pickled (network, plan) blob; single entry, like the
        #: process-pool worker's payload cache — one contraction at a time
        self._blobs: Dict[str, bytes] = {}
        self.chunks_done = 0
        self._compute = ThreadPoolExecutor(max_workers=1)
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._port: Optional[int] = None
        self._shutdown = asyncio.Event()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._port is None:
            raise RuntimeError("worker server is not started")
        return self._port

    def _log(self, record: dict) -> None:
        print(json.dumps(record), file=self.log_stream, flush=True)

    # --- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.config_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._log({
            "event": "ready",
            "kind": "worker",
            "host": self.host,
            "port": self._port,
            "pid": os.getpid(),
        })

    def request_shutdown(self) -> None:
        """Begin shutdown (idempotent, signal-handler safe)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)

    async def wait_closed(self) -> None:
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        self._compute.shutdown(wait=False)
        self._log({
            "event": "shutdown",
            "kind": "worker",
            "chunks": self.chunks_done,
        })

    async def run(self) -> None:
        """:meth:`start` + serve until :meth:`request_shutdown`."""
        await self.start()
        await self.wait_closed()

    # --- request handling ----------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    op, payload = await read_frame_async(reader)
                except EOFError:
                    return
                except asyncio.CancelledError:
                    return  # loop teardown with the connection still open
                except ProtocolError as exc:
                    try:
                        await write_frame_async(
                            writer, OP_ERR, str(exc).encode()
                        )
                    except (OSError, ConnectionError):
                        pass
                    return
                try:
                    await self._dispatch(writer, op, payload)
                except (OSError, ConnectionError):
                    return  # dispatcher went away mid-reply
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError, asyncio.CancelledError):
                # CancelledError: loop teardown cancelled this handler
                # while the connection was still open — the socket is
                # closed either way, and re-raising would only print a
                # traceback mid-shutdown
                pass

    async def _dispatch(
        self, writer: asyncio.StreamWriter, op: int, payload: bytes
    ) -> None:
        if op == OP_PING:
            await write_frame_async(writer, OP_PONG)
            return
        if op == OP_INSTALL:
            try:
                digest, blob = unpack_kv(payload)
            except ProtocolError as exc:
                await write_frame_async(writer, OP_ERR, str(exc).encode())
                return
            # one contraction at a time: the new payload replaces the old
            self._blobs.clear()
            self._blobs[digest] = blob
            await write_frame_async(writer, OP_OK)
            return
        if op == OP_EXEC:
            await self._exec_chunk(writer, payload)
            return
        name = OP_NAMES.get(op, hex(op))
        await write_frame_async(
            writer, OP_ERR,
            f"worker does not speak opcode {name}".encode(),
        )

    async def _exec_chunk(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        try:
            spec, digest, assignments, tracing = pickle.loads(payload)
        except Exception as exc:
            await write_frame_async(
                writer, OP_ERR, f"undecodable exec request: {exc}".encode()
            )
            return
        blob = self._blobs.get(digest)
        if blob is None:
            await write_frame_async(writer, OP_NEED_BLOB, digest.encode())
            return
        if (
            self.fail_after_chunks is not None
            and self.chunks_done >= self.fail_after_chunks
        ):
            # the deterministic mid-batch death the fleet tests script:
            # drop the process on the floor, mid-conversation
            self._log({
                "event": "fail-injection-exit",
                "kind": "worker",
                "chunks": self.chunks_done,
            })
            os._exit(17)
        future = asyncio.get_running_loop().run_in_executor(
            self._compute,
            run_slice_chunk_blob,
            spec, digest, blob, assignments, tracing,
        )
        # heartbeat while the chunk computes, so the dispatcher can tell
        # a slow chunk from a dead worker
        while True:
            done, _ = await asyncio.wait(
                [future], timeout=self.heartbeat_interval
            )
            if done:
                break
            await write_frame_async(writer, OP_HEARTBEAT)
        try:
            value, stats = future.result()
        except Exception as exc:
            await write_frame_async(
                writer, OP_ERR,
                f"{type(exc).__name__}: {exc}".encode(),
            )
            return
        self.chunks_done += 1
        await write_frame_async(
            writer, OP_RESULT,
            pickle.dumps((value, stats), pickle.HIGHEST_PROTOCOL),
        )


async def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    install_signal_handlers: bool = True,
    **kwargs,
) -> None:
    """Run a :class:`WorkerServer` until ``SIGTERM``/``SIGINT``.

    The blocking entry point behind ``repro worker``.
    """
    server = WorkerServer(host, port, **kwargs)
    await server.start()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await server.wait_closed()
