""":class:`RemoteStore` — the shared remote cache tier, as a client.

A :class:`~repro.cache.store.CacheStore` whose entries live in a
``repro cache-server`` daemon, so a fleet of service replicas shares
one warm plan/result tier instead of per-host disk caches.  Compose it
behind the local tiers with the existing
:class:`~repro.cache.store.TieredStore` — the standard chain a
``cache_url`` configures is memory → disk → remote, with remote hits
promoted into both local tiers on the way back.

Failure philosophy, inherited from the store protocol and enforced
harder here because the network *will* fail: every remote fault —
refused connect, timeout, server restart, truncated or garbage frame —
makes ``get`` return ``None`` and ``put`` return silently, after a
bounded retry.  The socket is closed and lazily re-dialled on the next
call, so a server restart heals without any client lifecycle work.  A
cache must never crash a check; the worst a dead cache server can do
is local-cache-speed recompute, and every swallowed fault increments
``repro_remote_failures_total`` so operators still see it.

``fail_open=False`` flips the administrative contract: ``stats`` and
``prune`` (the ``repro cache stats --cache-url`` path) raise a typed
:class:`~repro.api.errors.RemoteUnavailableError` instead of inventing
zeros — an operator asking a dead server a question deserves the truth.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Optional

from .. import trace as _trace
from ..cache.store import CacheStats, CacheStore
from . import metrics as _metrics
from .protocol import (
    OP_GET,
    OP_HIT,
    OP_JSON,
    OP_MISS,
    OP_OK,
    OP_PING,
    OP_PONG,
    OP_PRUNE,
    OP_PUT,
    OP_STATS,
    ProtocolError,
    connect,
    pack_kv,
    parse_address,
    recv_frame,
    send_frame,
)

#: Environment variable naming the shared cache server (``host:port``).
#: Read at cache-open time, like ``REPRO_CACHE_DIR`` — deployments
#: point a whole fleet at one server without touching configuration.
CACHE_URL_ENV = "REPRO_CACHE_URL"

#: Default TCP connect timeout (seconds).
DEFAULT_CONNECT_TIMEOUT = 1.0

#: Default per-operation read/write timeout (seconds).
DEFAULT_TIMEOUT = 5.0

#: Default retry count after the first failed attempt.
DEFAULT_RETRIES = 1

#: Base backoff between retries (seconds); doubles per attempt.
DEFAULT_BACKOFF = 0.05


def resolve_cache_url(cache_url: Optional[str] = None) -> Optional[str]:
    """The effective remote-cache address: explicit value or the env.

    ``None`` consults ``$REPRO_CACHE_URL``; an empty string (either
    source) means "no remote tier" and resolves to ``None``.
    """
    import os

    if cache_url is None:
        cache_url = os.environ.get(CACHE_URL_ENV)
    if not cache_url or not cache_url.strip():
        return None
    return cache_url.strip()


class RemoteStore(CacheStore):
    """Byte store speaking the cluster protocol to a cache server.

    Parameters
    ----------
    url:
        ``"host:port"`` of a ``repro cache-server`` daemon.
    connect_timeout / timeout:
        TCP dial bound and per-operation read/write bound (seconds).
    retries:
        Additional attempts after a failed operation; each re-dials
        the connection (the common fault *is* a stale socket after a
        server restart).
    backoff:
        Sleep before retry ``n`` is ``backoff * 2**n`` seconds — enough
        to ride out a restart, bounded enough never to stall a check.
    fail_open:
        ``True`` (the default, and the posture every checking path
        uses): faults degrade to miss/no-op.  ``False``: faults raise
        :class:`~repro.api.errors.RemoteUnavailableError` — for
        administrative commands that must not lie.
    """

    def __init__(
        self,
        url: str,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        fail_open: bool = True,
    ):
        if connect_timeout <= 0 or timeout <= 0:
            raise ValueError("timeouts must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        self.url = url
        self.host, self.port = parse_address(url)
        self.connect_timeout = connect_timeout
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.fail_open = fail_open
        self._sock = None
        #: one lock serialises the request/reply conversation; sessions
        #: and service threads share one store object per cache
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._failures = 0

    # --- connection management ----------------------------------------------

    def _connection(self):
        if self._sock is None:
            sock = connect(self.host, self.port, self.connect_timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
        return self._sock

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass

    def close(self) -> None:
        """Close the connection (idempotent; next call re-dials)."""
        with self._lock:
            self._drop_connection()

    def _roundtrip(self, op: int, payload: bytes):
        """One request/reply exchange with bounded retry.

        Returns ``(opcode, payload)`` or ``None`` after every attempt
        failed (fail-open) — or raises the typed error (fail-closed).
        Every failed *attempt* drops the socket, so retries and later
        calls start from a fresh dial.
        """
        with self._lock:
            for attempt in range(self.retries + 1):
                if attempt:
                    time.sleep(self.backoff * (2 ** (attempt - 1)))
                try:
                    sock = self._connection()
                    send_frame(sock, op, payload)
                    return recv_frame(sock)
                except (OSError, ProtocolError) as exc:
                    self._drop_connection()
                    failure = exc
            self._failures += 1
            _metrics.increment("remote_failures")
            if self.fail_open:
                return None
            from ..api.errors import RemoteUnavailableError

            raise RemoteUnavailableError(
                f"cache server {self.url} unavailable: {failure}",
                error_type=type(failure).__name__,
                details={"url": self.url},
            ) from failure

    # --- CacheStore protocol -------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        with _trace.span("cache.remote.get") as span:
            reply = self._roundtrip(OP_GET, key.encode())
            if reply is not None and reply[0] == OP_HIT:
                self._hits += 1
                _metrics.increment("remote_cache_hits")
                span.set(hit=True)
                return reply[1]
            # an unexpected opcode (a confused server) counts with the
            # misses: the caller recomputes either way
            self._misses += 1
            _metrics.increment("remote_cache_misses")
            span.set(hit=False)
            return None

    def put(self, key: str, payload: bytes) -> None:
        with _trace.span("cache.remote.put"):
            reply = self._roundtrip(OP_PUT, pack_kv(key, payload))
            if reply is not None and reply[0] == OP_OK:
                _metrics.increment("remote_cache_puts")

    def _json_command(self, op: int, payload: bytes) -> Optional[dict]:
        reply = self._roundtrip(op, payload)
        if reply is None:
            return None
        opcode, body = reply
        if opcode != OP_JSON:
            return None
        try:
            return json.loads(body.decode())
        except (ValueError, UnicodeDecodeError):
            return None

    def stats(self) -> CacheStats:
        record = self._json_command(OP_STATS, b"")
        remote = (record or {}).get("stats", {})
        return CacheStats(
            store="remote",
            entries=int(remote.get("entries", 0)),
            total_bytes=int(remote.get("total_bytes", 0)),
            # this client's lookup counters, not the server's: a tier's
            # hits/misses describe *our* traffic, like every other tier
            hits=self._hits,
            misses=self._misses,
            directory=self.url,
        )

    def server_stats(self) -> Optional[dict]:
        """The server's own stats record (its store + request counters),
        or ``None`` when it cannot be reached (fail-open only)."""
        return self._json_command(OP_STATS, b"")

    def clear(self) -> int:
        record = self._json_command(OP_PRUNE, (0).to_bytes(8, "big"))
        return int((record or {}).get("removed", 0))

    def prune(self, max_bytes: int) -> int:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        record = self._json_command(
            OP_PRUNE, max_bytes.to_bytes(8, "big")
        )
        return int((record or {}).get("removed", 0))

    def ping(self) -> bool:
        """Whether the server answers a liveness probe right now."""
        reply = self._roundtrip(OP_PING, b"")
        return reply is not None and reply[0] == OP_PONG

    @property
    def directory(self) -> Optional[str]:
        """Remote tiers have no local directory."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteStore({self.url!r}, fail_open={self.fail_open})"
