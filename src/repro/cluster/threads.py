""":class:`ServerThread` — a cluster daemon on a background thread.

The cluster sibling of :class:`~repro.service.server.ServiceThread`:
wraps a :class:`~repro.cluster.cache_server.CacheServer` or
:class:`~repro.cluster.worker_server.WorkerServer` in its own event
loop on a daemon thread, so tests, benchmarks and examples can stand up
a simulated fleet in-process — no subprocess management, deterministic
teardown.

>>> with ServerThread(CacheServer(port=0)) as handle:  # doctest: +SKIP
...     store = RemoteStore(handle.url)
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional


class ServerThread:
    """Run one cluster server (cache or worker) on a background loop.

    Context manager: entering starts the loop thread and blocks until
    the socket is bound (re-raising any bind failure); exiting requests
    a graceful shutdown and joins.  ``port`` resolves ephemeral
    (``port=0``) binds; ``url`` is the ``host:port`` clients dial.
    """

    def __init__(self, server):
        self.server = server
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name="repro-cluster-loop", daemon=True
        )

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def url(self) -> str:
        return f"{self.host}:{self.port}"

    def _main(self) -> None:
        async def body():
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.wait_closed()

        try:
            asyncio.run(body())
        except BaseException:  # surfaced via _startup_error
            if not self._ready.is_set():  # pragma: no cover - defensive
                self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                f"{type(self.server).__name__} failed to start"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            self.server.request_shutdown()
            self._thread.join()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
