"""repro.cluster — distributed slice execution and a shared cache tier.

The scale-out subsystem: two small daemons (``repro cache-server``,
``repro worker``), two clients that plug into existing seams
(:class:`RemoteStore` is a :class:`~repro.cache.store.CacheStore` tier,
:class:`RemoteSliceExecutor` is a
:class:`~repro.parallel.executors.SliceExecutor`), and one shared
length-prefixed frame protocol (:mod:`repro.cluster.protocol`) — all
stdlib-only.

Both clients are built to *lose*: a dead cache server degrades every
lookup to a miss, a dead worker hands its chunks to the survivors (or
back to the local backend), and the ``repro_remote_*`` counters in
:mod:`repro.cluster.metrics` are how anyone finds out.  See
``docs/cluster.md`` for the protocol, deployment topology and the full
failure matrix.
"""

from .cache_server import CacheServer, serve_cache
from .executor import (
    RemoteSliceExecutor,
    WorkerClient,
    WORKERS_ENV,
    resolve_workers,
)
from .metrics import (
    COUNTER_NAMES,
    counters_snapshot,
    metric_counters,
    reset_counters,
)
from .protocol import MAGIC, MAX_FRAME_BYTES, ProtocolError, parse_address
from .store import CACHE_URL_ENV, RemoteStore, resolve_cache_url
from .threads import ServerThread
from .worker_server import EXIT_AFTER_ENV, WorkerServer, serve_worker

__all__ = [
    "CACHE_URL_ENV",
    "COUNTER_NAMES",
    "CacheServer",
    "EXIT_AFTER_ENV",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RemoteSliceExecutor",
    "RemoteStore",
    "ServerThread",
    "WORKERS_ENV",
    "WorkerClient",
    "WorkerServer",
    "counters_snapshot",
    "metric_counters",
    "parse_address",
    "reset_counters",
    "resolve_cache_url",
    "resolve_workers",
    "serve_cache",
    "serve_worker",
]
