"""Process-wide cluster counters behind ``repro_remote_*`` metrics.

The remote cache tier and the remote slice executor are fail-open by
design: a dead peer degrades to a recompute instead of an error, which
means *observability is the only way to notice*.  These module-global
counters are the noticing: every remote hit, miss, put, fault,
dispatched chunk, re-dispatch and local-fallback chunk lands here, the
service's ``/metrics`` endpoint renders them as
``repro_remote_*_total`` counters, and the batch CLI's stderr summary
reads the same numbers for its ``remote hits`` field.

Module-global on purpose (like the per-worker caches of
:mod:`repro.parallel.worker`): remote stores and executors are created
per session, but a fleet operator needs one cumulative answer per
process.  Stdlib-only — importable by the service layer without
dragging the socket machinery in.
"""

from __future__ import annotations

import threading
from typing import Dict

#: Counter names, in render order.  Keys map to metric names as
#: ``repro_<key>_total``.
COUNTER_NAMES = (
    "remote_cache_hits",
    "remote_cache_misses",
    "remote_cache_puts",
    "remote_failures",
    "remote_chunks",
    "remote_redispatches",
    "remote_workers_lost",
    "remote_fallback_chunks",
)

_lock = threading.Lock()
_counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}


def increment(name: str, amount: int = 1) -> None:
    """Add to one cluster counter (thread-safe)."""
    if name not in _counters:
        raise KeyError(f"unknown cluster counter {name!r}")
    with _lock:
        _counters[name] += amount


def counters_snapshot() -> Dict[str, int]:
    """A consistent copy of every counter."""
    with _lock:
        return dict(_counters)


def metric_counters() -> Dict[str, float]:
    """The snapshot under Prometheus metric names (``repro_*_total``)."""
    return {
        f"repro_{name}_total": float(value)
        for name, value in counters_snapshot().items()
    }


def reset_counters() -> None:
    """Zero every counter (test hook)."""
    with _lock:
        for name in _counters:
            _counters[name] = 0
