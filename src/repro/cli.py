"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check``
    Decide epsilon-equivalence between an ideal OpenQASM 2 circuit and a
    noisy implementation (either a second QASM file plus a noise model,
    or random noise injected into the ideal circuit).
``fidelity``
    Print the Jamiolkowski fidelity with a chosen algorithm.
``bench-row``
    Run one Table I row (handy for quick scalability spot checks).
"""

from __future__ import annotations

import argparse
import sys

from .circuits import qasm
from .core import EquivalenceChecker, fidelity_collective, fidelity_individual
from .noise import (
    NoiseModel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    insert_random_noise,
    phase_damping,
    phase_flip,
)

CHANNELS = {
    "depolarizing": depolarizing,
    "bit_flip": bit_flip,
    "phase_flip": phase_flip,
    "bit_phase_flip": bit_phase_flip,
    "amplitude_damping": lambda p: amplitude_damping(1.0 - p),
    "phase_damping": lambda p: phase_damping(1.0 - p),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate equivalence checking of noisy quantum circuits",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="epsilon-equivalence check")
    _add_circuit_args(check)
    check.add_argument(
        "--epsilon", type=float, default=0.01, help="error threshold"
    )
    check.add_argument(
        "--algorithm", default="auto",
        choices=["auto", "alg1", "alg2", "dense"],
    )

    fidelity = sub.add_parser("fidelity", help="compute F_J")
    _add_circuit_args(fidelity)
    fidelity.add_argument(
        "--algorithm", default="alg2", choices=["alg1", "alg2"]
    )

    return parser


def _add_circuit_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("ideal", help="ideal circuit (OpenQASM 2 file)")
    sub.add_argument(
        "--noisy", default=None,
        help="noisy circuit QASM (noise applied on top per --channel)",
    )
    sub.add_argument(
        "--channel", default="depolarizing", choices=sorted(CHANNELS),
        help="noise channel type",
    )
    sub.add_argument(
        "--p", type=float, default=0.999,
        help="channel keep-probability (paper convention)",
    )
    sub.add_argument(
        "--noises", type=int, default=None,
        help="insert this many channels at random positions",
    )
    sub.add_argument(
        "--every-gate", action="store_true",
        help="attach a channel after every gate instead",
    )
    sub.add_argument("--seed", type=int, default=0, help="noise placement seed")


def load_noisy(args):
    """Materialise the (ideal, noisy) pair from CLI arguments."""
    ideal = qasm.load(args.ideal)
    base = qasm.load(args.noisy) if args.noisy else ideal
    factory = lambda: CHANNELS[args.channel](args.p)  # noqa: E731
    if args.every_gate:
        noisy = NoiseModel().set_default_error(factory).apply(base)
    elif args.noises is not None:
        noisy = insert_random_noise(
            base, args.noises, channel_factory=factory, seed=args.seed
        )
    else:
        noisy = base
    return ideal, noisy


def cmd_check(args) -> int:
    ideal, noisy = load_noisy(args)
    checker = EquivalenceChecker(
        epsilon=args.epsilon, algorithm=args.algorithm
    )
    result = checker.check(ideal, noisy)
    bound = " (lower bound)" if result.is_lower_bound else ""
    print(f"algorithm : {result.algorithm}")
    print(f"fidelity  : {result.fidelity:.6f}{bound}")
    print(f"epsilon   : {result.epsilon}")
    print(f"verdict   : {'EQUIVALENT' if result.equivalent else 'NOT EQUIVALENT'}")
    print(f"time      : {result.stats.time_seconds:.3f} s")
    if result.note:
        print(f"note      : {result.note}")
    return 0 if result.equivalent else 1


def cmd_fidelity(args) -> int:
    ideal, noisy = load_noisy(args)
    if args.algorithm == "alg1":
        result = fidelity_individual(noisy, ideal)
    else:
        result = fidelity_collective(noisy, ideal)
    print(f"{result.fidelity:.10f}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return cmd_check(args)
    if args.command == "fidelity":
        return cmd_fidelity(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
