"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check``
    Decide epsilon-equivalence between an ideal OpenQASM 2 circuit and a
    noisy implementation (either a second QASM file plus a noise model,
    or random noise injected into the ideal circuit).  ``--json`` emits
    the full machine-readable result.
``fidelity``
    Print the Jamiolkowski fidelity with a chosen algorithm
    ('alg1', 'alg2' or the dense-linalg baseline 'dense').
``batch``
    Check many QASM pairs listed in a manifest file through one shared
    :class:`~repro.core.session.CheckSession`, streaming one JSON result
    per line (JSONL).  ``--jobs N`` fans whole checks out to N worker
    processes (output order stays deterministic); a bad row — malformed
    manifest line, unreadable QASM, raising check — becomes an ``ERROR``
    record instead of aborting the batch, and a run summary lands on
    stderr.  Exit code: 0 all equivalent, 1 some non-equivalent, 2 any
    error records.
``plan``
    Build the contraction plan for the chosen algorithm's network and
    print a step/width/cost report — without contracting anything.  Use
    it to preview planner quality and slicing before committing to a
    heavy run.
``cache``
    Inspect and manage the content-addressed disk cache that ``check``,
    ``batch`` and ``plan`` fill when run with ``--cache``:
    ``cache stats`` (entries by kind, bytes, location), ``cache clear``
    and ``cache prune --max-bytes N`` (evict oldest entries down to a
    byte budget).  The directory is ``--cache-dir``,
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``, in that order.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .backends import available_backends
from .cache import CheckCache, DiskStore, count_by_kind
from .circuits import qasm
from .core import (
    CheckConfig,
    CheckError,
    CheckSession,
    RunStats,
    jamiolkowski_fidelity,
)
from .noise import (
    NoiseModel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    insert_random_noise,
    phase_damping,
    phase_flip,
)
from .tensornet.ordering import ORDER_HEURISTICS
from .tensornet.planner import PLANNERS, build_plan

CHANNELS = {
    "depolarizing": depolarizing,
    "bit_flip": bit_flip,
    "phase_flip": phase_flip,
    "bit_phase_flip": bit_phase_flip,
    "amplitude_damping": lambda p: amplitude_damping(1.0 - p),
    "phase_damping": lambda p: phase_damping(1.0 - p),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate equivalence checking of noisy quantum circuits",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="epsilon-equivalence check")
    _add_circuit_args(check)
    check.add_argument(
        "--epsilon", type=float, default=0.01, help="error threshold"
    )
    check.add_argument(
        "--algorithm", default="auto",
        choices=["auto", "alg1", "alg2", "dense"],
    )
    _add_engine_args(check)
    _add_cache_args(check)
    check.add_argument(
        "--json", action="store_true",
        help="emit the full result as one JSON object",
    )

    fidelity = sub.add_parser("fidelity", help="compute F_J")
    _add_circuit_args(fidelity)
    fidelity.add_argument(
        "--algorithm", default="alg2", choices=["alg1", "alg2", "dense"]
    )
    _add_engine_args(fidelity)

    batch = sub.add_parser(
        "batch", help="check a manifest of QASM pairs, streaming JSONL"
    )
    batch.add_argument(
        "manifest",
        help="text file: one 'ideal.qasm [noisy.qasm]' pair per line "
        "('#' starts a comment); as with 'check', the noise flags apply "
        "on top of the noisy circuit — or of the ideal one when noisy "
        "is omitted",
    )
    _add_noise_args(batch)
    batch.add_argument(
        "--epsilon", type=float, default=0.01, help="error threshold"
    )
    batch.add_argument(
        "--algorithm", default="auto",
        choices=["auto", "alg1", "alg2", "dense"],
    )
    _add_engine_args(batch)
    _add_cache_args(batch)
    batch.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run checks in N worker processes (results keep manifest "
        "order; default 1 = serial)",
    )

    plan = sub.add_parser(
        "plan",
        help="print the contraction plan (steps, width, predicted flops) "
        "without contracting",
    )
    _add_circuit_args(plan)
    plan.add_argument(
        "--algorithm", default="alg2", choices=["alg1", "alg2"],
        help="plan alg2's doubled network, or alg1's first trace-term "
        "network",
    )
    # Plans are backend-independent (every backend executes the same
    # plan object), so `plan` takes no --backend.
    _add_engine_args(plan, include_backend=False)
    _add_cache_args(plan)
    plan.add_argument(
        "--max-steps", type=int, default=None,
        help="truncate the per-step listing (all steps by default)",
    )
    plan.add_argument(
        "--json", action="store_true",
        help="emit the plan as one JSON object instead of the report",
    )

    cache = sub.add_parser(
        "cache", help="inspect and manage the content-addressed disk cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser(
        "stats", help="entry counts by kind, total bytes, location"
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the stats as one JSON object",
    )
    clear = cache_sub.add_parser("clear", help="remove every cached entry")
    prune = cache_sub.add_parser(
        "prune", help="evict oldest entries down to a byte budget"
    )
    prune.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="keep at most N bytes of cached payloads (oldest evicted "
        "first)",
    )
    for cache_command in (stats, clear, prune):
        cache_command.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)",
        )

    return parser


def _add_circuit_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("ideal", help="ideal circuit (OpenQASM 2 file)")
    sub.add_argument(
        "--noisy", default=None,
        help="noisy circuit QASM (noise applied on top per --channel)",
    )
    _add_noise_args(sub)


def _add_noise_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--channel", default="depolarizing", choices=sorted(CHANNELS),
        help="noise channel type",
    )
    sub.add_argument(
        "--p", type=float, default=0.999,
        help="channel keep-probability (paper convention)",
    )
    sub.add_argument(
        "--noises", type=int, default=None,
        help="insert this many channels at random positions",
    )
    sub.add_argument(
        "--every-gate", action="store_true",
        help="attach a channel after every gate instead",
    )
    sub.add_argument("--seed", type=int, default=0, help="noise placement seed")


def _add_engine_args(
    sub: argparse.ArgumentParser, include_backend: bool = True
) -> None:
    if include_backend:
        sub.add_argument(
            "--backend", default="tdd", choices=available_backends(),
            help="contraction backend",
        )
    sub.add_argument(
        "--order-method", default="tree_decomposition",
        choices=sorted(ORDER_HEURISTICS),
        help="index elimination order heuristic",
    )
    sub.add_argument(
        "--planner", default="order", choices=sorted(PLANNERS),
        help="contraction-plan strategy",
    )
    sub.add_argument(
        "--max-intermediate", type=int, default=None, metavar="SIZE",
        help="slice plans so no intermediate tensor exceeds SIZE elements",
    )


def _add_cache_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="consult and fill the content-addressed plan + result "
        "cache (--no-cache, the default, runs exactly as before)",
    )
    sub.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )


def _noisy_from(args, base):
    """Apply the CLI noise flags to a loaded base circuit."""
    factory = lambda: CHANNELS[args.channel](args.p)  # noqa: E731
    if args.every_gate:
        return NoiseModel().set_default_error(factory).apply(base)
    if args.noises is not None:
        return insert_random_noise(
            base, args.noises, channel_factory=factory, seed=args.seed
        )
    return base


def load_noisy(args):
    """Materialise the (ideal, noisy) pair from CLI arguments."""
    ideal = qasm.load(args.ideal)
    base = qasm.load(args.noisy) if args.noisy else ideal
    return ideal, _noisy_from(args, base)


def _session_from(args) -> CheckSession:
    return CheckSession(
        CheckConfig(
            epsilon=args.epsilon,
            algorithm=args.algorithm,
            backend=args.backend,
            order_method=args.order_method,
            planner=args.planner,
            max_intermediate_size=args.max_intermediate,
            cache=args.cache,
            cache_dir=args.cache_dir,
        )
    )


def cmd_check(args) -> int:
    ideal, noisy = load_noisy(args)
    result = _session_from(args).check(ideal, noisy)
    if args.json:
        print(result.to_json())
        return 0 if result.equivalent else 1
    bound = " (lower bound)" if result.is_lower_bound else ""
    print(f"algorithm : {result.algorithm}")
    print(f"backend   : {result.backend}")
    print(f"fidelity  : {result.fidelity:.6f}{bound}")
    print(f"epsilon   : {result.epsilon}")
    print(f"verdict   : {'EQUIVALENT' if result.equivalent else 'NOT EQUIVALENT'}")
    print(f"time      : {result.stats.time_seconds:.3f} s")
    if result.note:
        print(f"note      : {result.note}")
    return 0 if result.equivalent else 1


def cmd_fidelity(args) -> int:
    ideal, noisy = load_noisy(args)
    if args.algorithm == "dense":
        value = jamiolkowski_fidelity(noisy, ideal, algorithm="dense")
    else:
        value = jamiolkowski_fidelity(
            noisy, ideal,
            algorithm=args.algorithm,
            backend=args.backend,
            order_method=args.order_method,
            planner=args.planner,
            max_intermediate_size=args.max_intermediate,
        )
    print(f"{value:.10f}")
    return 0


def cmd_plan(args) -> int:
    from .core.miter import algorithm_network

    ideal, noisy = load_noisy(args)
    network = algorithm_network(noisy, ideal, args.algorithm)

    def build():
        return build_plan(
            network,
            planner=args.planner,
            order_method=args.order_method,
            max_intermediate_size=args.max_intermediate,
        )

    cache_state = None
    if args.cache:
        plan, cache_state = CheckCache.open(args.cache_dir).plans.get_or_build(
            network,
            build,
            planner=args.planner,
            order_method=args.order_method,
            max_intermediate_size=args.max_intermediate,
        )
    else:
        plan = build()
    # The greedy planner never consults the order heuristic.
    order_method = args.order_method if args.planner == "order" else None
    if args.json:
        record = plan.to_dict()
        record["algorithm"] = args.algorithm
        record["order_method"] = order_method
        record["plan_cache"] = cache_state
        print(json.dumps(record))
        return 0
    print(f"algorithm        : {args.algorithm}")
    if order_method is not None:
        print(f"order method     : {order_method}")
    if cache_state is not None:
        print(f"plan cache       : {cache_state}")
    print(plan.report(max_steps=args.max_steps))
    return 0


def cmd_cache(args) -> int:
    store = DiskStore(args.cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        kinds = count_by_kind(store.keys())
        if args.json:
            record = stats.to_dict()
            record["kinds"] = kinds
            print(json.dumps(record))
            return 0
        print(f"directory : {stats.directory}")
        print(
            f"entries   : {stats.entries} "
            f"({kinds['plans']} plans, {kinds['results']} results"
            + (f", {kinds['other']} other" if kinds["other"] else "")
            + ")"
        )
        print(f"bytes     : {stats.total_bytes}")
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.directory}")
        return 0
    if args.cache_command == "prune":
        if args.max_bytes < 0:
            print("--max-bytes must be non-negative", file=sys.stderr)
            return 2
        removed = store.prune(args.max_bytes)
        remaining = store.stats()
        print(
            f"pruned {removed} entries from {store.directory}; "
            f"{remaining.entries} entries / {remaining.total_bytes} bytes "
            "remain"
        )
        return 0
    raise AssertionError("unreachable")


def iter_manifest(path):
    """Yield ``(lineno, ideal, noisy_or_None, error_or_None)`` rows.

    Malformed rows are *reported*, not raised: batch runs isolate per-row
    failures, so a typo on line 40 cannot take down lines 1–39.
    """
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) > 2:
                yield lineno, None, None, (
                    f"{path}:{lineno}: expected 'ideal.qasm [noisy.qasm]', "
                    f"got {len(parts)} fields"
                )
                continue
            yield lineno, parts[0], (
                parts[1] if len(parts) == 2 else None
            ), None


def read_manifest(path):
    """Yield ``(ideal_path, noisy_path_or_None)`` entries of a manifest.

    The strict form of :func:`iter_manifest`: malformed rows raise
    ``ValueError`` (library callers who want fail-fast behaviour).
    """
    for _, ideal, noisy, error in iter_manifest(path):
        if error is not None:
            raise ValueError(error)
        yield ideal, noisy


def cmd_batch(args) -> int:
    session = _session_from(args)
    start = time.perf_counter()
    rows = list(iter_manifest(args.manifest))  # path metadata only

    totals = {"checked": 0, "equivalent": 0, "errors": 0}
    run_stats = []

    def load_pair(ideal_path, noisy_path):
        ideal = qasm.load(ideal_path)
        base = qasm.load(noisy_path) if noisy_path else ideal
        return ideal, _noisy_from(args, base)

    def error_record(error_type, message):
        return {
            "equivalent": False,
            "verdict": "ERROR",
            "error": message,
            "error_type": error_type,
        }

    def emit(lineno, ideal_path, noisy_path, record):
        if record["verdict"] == "ERROR":
            totals["errors"] += 1
        else:
            totals["checked"] += 1
            totals["equivalent"] += int(record["equivalent"])
        record["line"] = lineno
        record["ideal"] = ideal_path
        record["noisy"] = noisy_path or ideal_path
        print(json.dumps(record), flush=True)

    if args.jobs == 1:
        # Serial runs stay streaming: one pair lives at a time, and each
        # record prints as soon as its check finishes.
        for lineno, ideal_path, noisy_path, error in rows:
            if error is not None:
                emit(lineno, ideal_path, noisy_path,
                     error_record("ManifestError", error))
                continue
            try:
                result = session.check(*load_pair(ideal_path, noisy_path))
                run_stats.append(result.stats)
            except Exception as exc:
                result = CheckError(
                    error=str(exc), error_type=type(exc).__name__
                )
            emit(lineno, ideal_path, noisy_path, result.to_dict())
    else:
        # Parallel runs materialise circuits up front (the pool needs
        # every task to schedule) and capture per-row load failures.
        loaded = []  # (lineno, ideal_path, noisy_path, pair, error)
        for lineno, ideal_path, noisy_path, error in rows:
            pair = None
            if error is not None:
                error = ("ManifestError", error)
            else:
                try:
                    pair = load_pair(ideal_path, noisy_path)
                except Exception as exc:
                    error = (type(exc).__name__, str(exc))
            loaded.append((lineno, ideal_path, noisy_path, pair, error))
        outcomes = session.check_many(
            [row[3] for row in loaded if row[3] is not None],
            jobs=args.jobs,
            isolate_errors=True,
        )
        for lineno, ideal_path, noisy_path, pair, error in loaded:
            if error is not None:
                emit(lineno, ideal_path, noisy_path, error_record(*error))
                continue
            result = next(outcomes)
            if result.verdict != "ERROR":
                run_stats.append(result.stats)
            emit(lineno, ideal_path, noisy_path, result.to_dict())

    wall = time.perf_counter() - start
    merged = RunStats.merge(run_stats, wall_seconds=wall)
    cache_note = ""
    if args.cache:
        cache_note = (
            f", plan hits {merged.plan_cache_hit}, "
            f"result hits {merged.result_cache_hit}"
        )
    print(
        f"batch: {len(rows)} rows, {totals['checked']} checked, "
        f"{totals['equivalent']} equivalent, "
        f"{totals['checked'] - totals['equivalent']} not equivalent, "
        f"{totals['errors']} errors; wall {merged.time_seconds:.3f}s, "
        f"cpu {merged.cpu_seconds:.3f}s, jobs={args.jobs}{cache_note}",
        file=sys.stderr,
    )
    if totals["errors"]:
        return 2
    return 0 if totals["equivalent"] == totals["checked"] else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return cmd_check(args)
    if args.command == "fidelity":
        return cmd_fidelity(args)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "plan":
        return cmd_plan(args)
    if args.command == "cache":
        return cmd_cache(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
