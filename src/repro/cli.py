"""Command-line interface: ``python -m repro <command>``.

``check``, ``fidelity`` and ``batch`` are thin request builders over
:class:`repro.api.Engine`: each translates its flags into a frozen
:class:`~repro.api.request.CheckRequest` and prints the engine's
response — so the CLI and the API emit the *same* versioned wire schema
(``schema_version`` ``"1"``), and anything the CLI can do an HTTP/RPC
layer can do with the identical payloads.

Commands
--------
``check``
    Decide epsilon-equivalence between an ideal OpenQASM 2 circuit and a
    noisy implementation (either a second QASM file plus a noise model,
    or random noise injected into the ideal circuit).  ``--json`` emits
    the full machine-readable result (the version-``1`` response wire
    schema).
``fidelity``
    Print the Jamiolkowski fidelity with a chosen algorithm
    ('alg1', 'alg2' or the dense-linalg baseline 'dense').
``batch``
    Check many pairs listed in a manifest through one shared
    :class:`~repro.api.Engine`, streaming one JSON wire record per line
    (JSONL).  Manifest rows come in two forms, freely mixed: the classic
    ``ideal.qasm [noisy.qasm]`` pair (the CLI noise/epsilon flags apply),
    or a ``{...}`` JSON object parsed as a wire-schema
    :class:`~repro.api.request.CheckRequest` (absent fields inherit the
    CLI flags; explicit fields win).  ``--jobs N`` fans whole checks out
    to N worker processes (output order stays deterministic); a bad row —
    malformed manifest line, invalid request object, unreadable QASM,
    raising check — becomes an ``ERROR`` record with a machine-readable
    ``error_code`` instead of aborting the batch, and a run summary lands
    on stderr.  Exit code: 0 all equivalent, 1 some non-equivalent, 2 any
    error records.
``plan``
    Build the contraction plan for the chosen algorithm's network and
    print a step/width/cost report — without contracting anything.  Use
    it to preview planner quality and slicing before committing to a
    heavy run.
``serve``
    Run the asyncio HTTP service over one shared engine: the same wire
    schema over ``POST /v1/check`` / ``/v1/batch`` / ``/v1/jobs``, with
    Prometheus ``GET /metrics``, admission control (503 + Retry-After
    past ``--max-inflight``) and per-request deadlines
    (``--request-timeout`` / ``X-Repro-Timeout``).  See
    ``docs/service.md``.
``cache``
    Inspect and manage the content-addressed disk cache that ``check``,
    ``batch`` and ``plan`` fill when run with ``--cache``:
    ``cache stats`` (entries by kind, bytes, location, per-tier
    breakdown; ``--cache-url`` adds the shared remote tier),
    ``cache clear`` and ``cache prune --max-bytes N`` (evict oldest
    entries down to a byte budget).  The directory is ``--cache-dir``,
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``, in that order.
``cache-server``
    Run the shared remote cache daemon other machines' checks reach via
    ``--cache-url`` / ``$REPRO_CACHE_URL``.  See ``docs/cluster.md``.
``worker``
    Run one remote slice-execution daemon; point checks at a pool of
    them with ``--workers`` / ``$REPRO_WORKERS``.  See
    ``docs/cluster.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections import namedtuple
from typing import Optional

from .api import (
    CHANNELS,
    CheckRequest,
    CircuitSpec,
    Engine,
    InvalidRequestError,
    NoiseSpec,
    ReproError,
)
from .backends import available_backends, backend_availability
from .cache import CheckCache, DiskStore, count_by_kind
from .circuits import qasm
from .core import StatsAggregator
from .tensornet.ordering import ORDER_HEURISTICS
from .tensornet.planner import PLANNERS, build_plan


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate equivalence checking of noisy quantum circuits",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="epsilon-equivalence check")
    _add_circuit_args(check)
    check.add_argument(
        "--epsilon", type=float, default=0.01, help="error threshold"
    )
    check.add_argument(
        "--algorithm", default="auto",
        choices=["auto", "alg1", "alg2", "dense"],
    )
    _add_engine_args(check)
    _add_cache_args(check)
    _add_workers_arg(check)
    check.add_argument(
        "--json", action="store_true",
        help="emit the full result as one JSON object",
    )
    check.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span trace of the check and write Chrome "
        "trace-event JSON to FILE (open it at https://ui.perfetto.dev); "
        "--json output carries the span tree inline as 'trace'",
    )

    fidelity = sub.add_parser("fidelity", help="compute F_J")
    _add_circuit_args(fidelity)
    fidelity.add_argument(
        "--algorithm", default="alg2", choices=["alg1", "alg2", "dense"]
    )
    _add_engine_args(fidelity)

    batch = sub.add_parser(
        "batch", help="check a manifest of QASM pairs, streaming JSONL"
    )
    batch.add_argument(
        "manifest",
        help="text file, one row per line: 'ideal.qasm [noisy.qasm]' "
        "pairs ('#' starts a comment) and/or JSON wire-schema request "
        "objects, freely mixed; the noise/epsilon/engine flags apply to "
        "path rows and fill absent fields of JSON rows",
    )
    _add_noise_args(batch)
    batch.add_argument(
        "--epsilon", type=float, default=0.01, help="error threshold"
    )
    batch.add_argument(
        "--algorithm", default="auto",
        choices=["auto", "alg1", "alg2", "dense"],
    )
    _add_engine_args(batch)
    _add_cache_args(batch)
    _add_workers_arg(batch)
    batch.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run checks in N worker processes (results keep manifest "
        "order; default 1 = serial)",
    )

    plan = sub.add_parser(
        "plan",
        help="print the contraction plan (steps, width, predicted flops) "
        "without contracting",
    )
    _add_circuit_args(plan)
    plan.add_argument(
        "--algorithm", default="alg2", choices=["alg1", "alg2"],
        help="plan alg2's doubled network, or alg1's first trace-term "
        "network",
    )
    # Plans are backend-independent (every backend executes the same
    # plan object), so `plan` takes no --backend.
    _add_engine_args(plan, include_backend=False)
    _add_cache_args(plan)
    plan.add_argument(
        "--max-steps", type=int, default=None,
        help="truncate the per-step listing (all steps by default)",
    )
    plan.add_argument(
        "--json", action="store_true",
        help="emit the plan as one JSON object instead of the report",
    )
    plan.add_argument(
        "--compare", action="store_true",
        help="race every registered planner on the network and print a "
        "cost/time table instead of one plan report (ignores --cache)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP checking service (POST /v1/check, /v1/batch, "
        "/v1/jobs; GET /metrics, /healthz)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8000,
        help="port to bind (0 picks an ephemeral port, printed in the "
        "ready log line)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="admission-control bound: request N+1 is answered 503 + "
        "Retry-After instead of queued",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="default per-request deadline; the X-Repro-Timeout header "
        "can shorten but never extend it (expiry answers 504)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="engine worker processes for /v1/batch and /v1/jobs "
        "(default 1 = in-process)",
    )
    _add_cache_args(serve)
    _add_workers_arg(serve)

    cache_server = sub.add_parser(
        "cache-server",
        help="run the shared remote cache daemon (RemoteStore tier; see "
        "docs/cluster.md)",
    )
    cache_server.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback only — the protocol "
        "is unauthenticated; see docs/cluster.md)",
    )
    cache_server.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default 0 picks an ephemeral port, printed "
        "in the JSON ready line)",
    )
    cache_server.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="backing disk tier (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    cache_server.add_argument(
        "--memory-entries", type=int, default=None, metavar="N",
        help="size of the in-memory LRU tier in front of the disk store",
    )

    worker = sub.add_parser(
        "worker",
        help="run one remote slice-execution daemon (RemoteSliceExecutor "
        "target; see docs/cluster.md)",
    )
    worker.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback only — EXEC payloads "
        "are unpickled; never expose a worker to untrusted networks)",
    )
    worker.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default 0 picks an ephemeral port, printed "
        "in the JSON ready line)",
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=None,
        metavar="SECONDS",
        help="seconds between liveness heartbeats while a chunk computes",
    )

    backends = sub.add_parser(
        "backends",
        help="list registered contraction backends and their availability",
    )
    backends.add_argument(
        "--json", action="store_true",
        help="emit one JSON object mapping backend name to availability",
    )

    cache = sub.add_parser(
        "cache", help="inspect and manage the content-addressed disk cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser(
        "stats", help="entry counts by kind, total bytes, location"
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the stats as one JSON object",
    )
    clear = cache_sub.add_parser("clear", help="remove every cached entry")
    prune = cache_sub.add_parser(
        "prune", help="evict oldest entries down to a byte budget"
    )
    prune.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="keep at most N bytes of cached payloads (oldest evicted "
        "first)",
    )
    for cache_command in (stats, clear, prune):
        cache_command.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)",
        )
        cache_command.add_argument(
            "--cache-url", default=None, metavar="HOST:PORT",
            help="also inspect/manage this `repro cache-server`'s tier "
            "(admin path: an unreachable server is an error here, not "
            "fail-open)",
        )

    return parser


def _add_circuit_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("ideal", help="ideal circuit (OpenQASM 2 file)")
    sub.add_argument(
        "--noisy", default=None,
        help="noisy circuit QASM (noise applied on top per --channel)",
    )
    _add_noise_args(sub)


def _add_noise_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--channel", default="depolarizing", choices=sorted(CHANNELS),
        help="noise channel type",
    )
    sub.add_argument(
        "--p", type=float, default=0.999,
        help="channel keep-probability (paper convention)",
    )
    sub.add_argument(
        "--noises", type=int, default=None,
        help="insert this many channels at random positions",
    )
    sub.add_argument(
        "--every-gate", action="store_true",
        help="attach a channel after every gate instead",
    )
    sub.add_argument("--seed", type=int, default=0, help="noise placement seed")


def _add_engine_args(
    sub: argparse.ArgumentParser, include_backend: bool = True
) -> None:
    if include_backend:
        sub.add_argument(
            "--backend", default="tdd", choices=available_backends(),
            help="contraction backend",
        )
    sub.add_argument(
        "--order-method", default="tree_decomposition",
        choices=sorted(ORDER_HEURISTICS),
        help="index elimination order heuristic",
    )
    sub.add_argument(
        "--planner", default="order", choices=sorted(PLANNERS),
        help="contraction-plan strategy",
    )
    sub.add_argument(
        "--max-intermediate", type=int, default=None, metavar="SIZE",
        help="slice plans so no intermediate tensor exceeds SIZE elements",
    )
    sub.add_argument(
        "--plan-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget of the search planners (anneal/hyper); "
        "0 returns their heuristic baseline, default is the search "
        "default budget; ignored by order/greedy",
    )
    sub.add_argument(
        "--plan-seed", type=int, default=None, metavar="N",
        help="seed of the search planners' randomized trials (fixed "
        "seed = reproducible searched plans; ignored by order/greedy)",
    )
    if include_backend:
        sub.add_argument(
            "--device", default=None, metavar="DEVICE",
            help="device the backend's numerics run on (e.g. 'cpu', "
            "'cuda', 'cuda:1'; accelerator devices need the "
            "einsum-torch/einsum-cupy backend)",
        )
        sub.add_argument(
            "--slice-batch", type=int, default=None, metavar="N",
            help="slices contracted per batched kernel sweep (default: "
            "auto-size against the memory budget; 1 = per-slice loop)",
        )


def _add_cache_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="consult and fill the content-addressed plan + result "
        "cache (--no-cache, the default, runs exactly as before)",
    )
    sub.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    sub.add_argument(
        "--cache-url", default=None, metavar="HOST:PORT",
        help="shared remote cache tier (a `repro cache-server` address); "
        "implies --cache.  Default: $REPRO_CACHE_URL when --cache is on. "
        "The tier is fail-open — an unreachable server degrades to the "
        "local cache, never to an error",
    )


def _add_workers_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="ship slice execution to remote `repro worker` daemons "
        "(default: $REPRO_WORKERS; unset runs slices locally)",
    )


def _noise_spec_from(args) -> Optional[NoiseSpec]:
    """The CLI noise flags as a wire-schema :class:`NoiseSpec`."""
    if args.every_gate:
        return NoiseSpec(
            channel=args.channel, p=args.p, every_gate=True, seed=args.seed
        )
    if args.noises is not None:
        return NoiseSpec(
            channel=args.channel, p=args.p, noises=args.noises,
            seed=args.seed,
        )
    return None


def _noisy_from(args, base):
    """Apply the CLI noise flags to a loaded base circuit."""
    spec = _noise_spec_from(args)
    return spec.apply(base) if spec is not None else base


def load_noisy(args):
    """Materialise the (ideal, noisy) pair from CLI arguments."""
    ideal = qasm.load(args.ideal)
    base = qasm.load(args.noisy) if args.noisy else ideal
    return ideal, _noisy_from(args, base)


def _config_overrides(args) -> dict:
    """The CLI engine flags as CheckConfig overrides for a request."""
    overrides = {
        "order_method": args.order_method,
        "planner": args.planner,
        "max_intermediate_size": args.max_intermediate,
    }
    if getattr(args, "algorithm", None) is not None:
        overrides["algorithm"] = args.algorithm
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "device", None) is not None:
        overrides["device"] = args.device
    if getattr(args, "slice_batch", None) is not None:
        overrides["slice_batch"] = args.slice_batch
    if getattr(args, "plan_budget", None) is not None:
        overrides["plan_budget_seconds"] = args.plan_budget
    if getattr(args, "plan_seed", None) is not None:
        overrides["plan_seed"] = args.plan_seed
    if getattr(args, "trace", None) is not None:
        overrides["trace"] = True
    return overrides


def _request_from(args, ideal, noisy=None, mode="check") -> CheckRequest:
    """The CLI flags as a wire-schema :class:`CheckRequest`."""
    return CheckRequest(
        ideal=ideal,
        noisy=noisy,
        noise=_noise_spec_from(args),
        epsilon=getattr(args, "epsilon", 0.01),
        mode=mode,
        config=_config_overrides(args),
    )


def _engine_from(args, jobs: int = 1) -> Engine:
    cache_url = getattr(args, "cache_url", None)
    workers = getattr(args, "workers", None)
    if workers is None:
        # the CLI (not the library) is where $REPRO_WORKERS applies, so
        # plain API/test use never dials remote daemons implicitly
        from .cluster import WORKERS_ENV

        workers = os.environ.get(WORKERS_ENV) or None
    overrides = {"workers": workers} if workers else {}
    return Engine(
        jobs=jobs,
        # an explicit remote tier implies caching on
        cache=getattr(args, "cache", False) or bool(cache_url),
        cache_dir=getattr(args, "cache_dir", None),
        cache_url=cache_url,
        **overrides,
    )


def _print_error(error: ReproError) -> int:
    print(f"error [{error.code}]: {error}", file=sys.stderr)
    return 2


def cmd_check(args) -> int:
    try:
        # request construction validates the noise flags too — a bad
        # --noises/--p must take the typed-error exit, not a traceback
        request = _request_from(
            args,
            CircuitSpec.from_path(args.ideal),
            CircuitSpec.from_path(args.noisy) if args.noisy else None,
        )
        response = _engine_from(args).check(request)
    except ReproError as error:
        return _print_error(error)
    result = response.result
    trace_note = None
    if args.trace and result.trace is not None:
        from .trace import chrome_trace, tree_records

        spans = tree_records(result.trace)
        with open(args.trace, "w") as handle:
            json.dump(chrome_trace(spans), handle, indent=1)
            handle.write("\n")
        trace_note = f"{args.trace} ({len(spans)} spans)"
    if args.json:
        print(response.to_json())
        return 0 if result.equivalent else 1
    bound = " (lower bound)" if result.is_lower_bound else ""
    print(f"algorithm : {result.algorithm}")
    print(f"backend   : {result.backend}")
    print(f"fidelity  : {result.fidelity:.6f}{bound}")
    print(f"epsilon   : {result.epsilon}")
    print(f"verdict   : {'EQUIVALENT' if result.equivalent else 'NOT EQUIVALENT'}")
    print(f"time      : {result.stats.time_seconds:.3f} s")
    if result.note:
        print(f"note      : {result.note}")
    if trace_note is not None:
        print(f"trace     : {trace_note}")
    return 0 if result.equivalent else 1


def cmd_fidelity(args) -> int:
    try:
        request = _request_from(
            args,
            CircuitSpec.from_path(args.ideal),
            CircuitSpec.from_path(args.noisy) if args.noisy else None,
            mode="fidelity",
        )
        response = _engine_from(args).check(request)
    except ReproError as error:
        return _print_error(error)
    print(f"{response.fidelity:.10f}")
    return 0


def cmd_plan(args) -> int:
    from .core.miter import algorithm_network

    ideal, noisy = load_noisy(args)
    network = algorithm_network(noisy, ideal, args.algorithm)
    plan_seed = args.plan_seed if args.plan_seed is not None else 0
    if args.compare:
        return _cmd_plan_compare(args, network, plan_seed)

    def build():
        return build_plan(
            network,
            planner=args.planner,
            order_method=args.order_method,
            max_intermediate_size=args.max_intermediate,
            plan_budget_seconds=args.plan_budget,
            plan_seed=plan_seed,
        )

    cache_state = None
    if args.cache:
        plan, cache_state = CheckCache.open(args.cache_dir).plans.get_or_build(
            network,
            build,
            planner=args.planner,
            order_method=args.order_method,
            max_intermediate_size=args.max_intermediate,
            plan_budget_seconds=args.plan_budget,
            plan_seed=plan_seed,
        )
    else:
        plan = build()
    # The greedy planner never consults the order heuristic.
    order_method = args.order_method if args.planner == "order" else None
    if args.json:
        record = plan.to_dict()
        record["algorithm"] = args.algorithm
        record["order_method"] = order_method
        record["plan_cache"] = cache_state
        print(json.dumps(record))
        return 0
    print(f"algorithm        : {args.algorithm}")
    if order_method is not None:
        print(f"order method     : {order_method}")
    if cache_state is not None:
        print(f"plan cache       : {cache_state}")
    print(plan.report(max_steps=args.max_steps))
    return 0


def _cmd_plan_compare(args, network, plan_seed: int) -> int:
    """Race every registered planner on one network (``plan --compare``).

    Search planners run under ``--plan-budget``/``--plan-seed``; the
    heuristic planners plan as usual.  The cheapest plan is starred.
    Every row carries a span trace of its planning run (``trace`` in the
    JSON form, a summary section in the report) — the search planners'
    ``plan.search`` spans show where the budget went.
    """
    from .trace import TraceRecorder, recording, span as trace_span, span_tree

    rows = []
    traces = []
    for planner in PLANNERS:
        recorder = TraceRecorder()
        started = time.perf_counter()
        with recording(recorder):
            with trace_span("plan.build", planner=planner) as build_span:
                plan = build_plan(
                    network,
                    planner=planner,
                    order_method=args.order_method,
                    max_intermediate_size=args.max_intermediate,
                    plan_budget_seconds=args.plan_budget,
                    plan_seed=plan_seed,
                )
                build_span.set(
                    cost=plan.total_cost(), slices=plan.num_slices()
                )
        seconds = time.perf_counter() - started
        report = plan.search_report
        rows.append({
            "planner": planner,
            "order_method": (
                args.order_method if planner == "order" else None
            ),
            "total_cost": plan.total_cost(),
            "peak_intermediate_size": plan.peak_size(),
            "num_slices": plan.num_slices(),
            "plan_seconds": seconds,
            "trials": report.trials if report is not None else None,
            "trace": span_tree(recorder),
        })
        traces.append(recorder)
    best_cost = min(row["total_cost"] for row in rows)
    for row in rows:
        row["best"] = row["total_cost"] == best_cost
    if args.json:
        print(json.dumps({"algorithm": args.algorithm, "planners": rows}))
        return 0
    print(f"algorithm        : {args.algorithm}")
    print(
        f"{'planner':<10} {'cost':>14} {'peak':>10} {'slices':>7} "
        f"{'time_s':>8} {'trials':>7}"
    )
    for row in rows:
        name = row["planner"] + ("*" if row["best"] else "")
        trials = "-" if row["trials"] is None else str(row["trials"])
        print(
            f"{name:<10} {row['total_cost']:>14} "
            f"{row['peak_intermediate_size']:>10} "
            f"{row['num_slices']:>7} {row['plan_seconds']:>8.3f} "
            f"{trials:>7}"
        )
    print("trace:")
    for row, recorder in zip(rows, traces):
        # top-level spans only: trial batches would drown the summary
        parts = []
        for span in recorder.spans:
            if span.name == "plan.search.trials":
                continue
            attrs = ", ".join(
                f"{key}={value}"
                for key, value in span.attributes.items()
                if key != "planner"
            )
            note = f" ({attrs})" if attrs else ""
            parts.append(
                f"{span.name} {span.duration_ns / 1e6:.1f}ms{note}"
            )
        print(f"  {row['planner']:<10} {'; '.join(parts)}")
    return 0


def cmd_backends(args) -> int:
    availability = backend_availability()
    if args.json:
        print(json.dumps({
            name: {"available": missing is None, "missing": missing}
            for name, missing in availability.items()
        }))
        return 0
    for name, missing in availability.items():
        if missing is None:
            print(f"{name:14s} available")
        else:
            print(f"{name:14s} unavailable ({missing})")
    return 0


def _cache_stats(args, store, remote) -> int:
    stats = store.stats()
    kinds = count_by_kind(store.keys())
    # Per-tier breakdown: the local disk tier plus (when --cache-url is
    # given) the shared remote tier, each in CacheStats wire form.  The
    # raw server record rides along as "remote" so operators see the
    # server's own hit/miss/request counters, not just this client's.
    tiers = [stats] + ([] if remote is None else [remote.stats()])
    server = remote.server_stats() if remote is not None else None
    if args.json:
        record = stats.to_dict()
        record["kinds"] = kinds
        record["tiers"] = [tier.to_dict() for tier in tiers]
        if server is not None:
            record["remote"] = server
        print(json.dumps(record))
        return 0
    print(f"directory : {stats.directory}")
    print(
        f"entries   : {stats.entries} "
        f"({kinds['plans']} plans, {kinds['results']} results"
        + (f", {kinds['other']} other" if kinds["other"] else "")
        + ")"
    )
    print(f"bytes     : {stats.total_bytes}")
    if server is not None:
        remote_stats = server.get("stats", {})
        requests = server.get("requests", {})
        print(
            f"remote    : {args.cache_url} — "
            f"{remote_stats.get('entries', 0)} entries, "
            f"{remote_stats.get('total_bytes', 0)} bytes, "
            f"{remote_stats.get('hits', 0)} hits, "
            f"{remote_stats.get('misses', 0)} misses"
        )
        if requests:
            print(
                "requests  : " + ", ".join(
                    f"{name} {count}"
                    for name, count in sorted(requests.items())
                )
            )
    return 0


def cmd_cache(args) -> int:
    store = DiskStore(args.cache_dir)
    remote = None
    if getattr(args, "cache_url", None):
        # Admin commands want the truth: an unreachable server is a
        # typed error here, not the checker's silent fail-open fallback.
        from .cluster import RemoteStore

        remote = RemoteStore(args.cache_url, fail_open=False)
    try:
        if args.cache_command == "stats":
            return _cache_stats(args, store, remote)
        if args.cache_command == "clear":
            removed = store.clear()
            remote_note = ""
            if remote is not None:
                remote_note = (
                    f" and {remote.clear()} entries from {args.cache_url}"
                )
            print(
                f"removed {removed} entries from {store.directory}"
                + remote_note
            )
            return 0
        if args.cache_command == "prune":
            if args.max_bytes < 0:
                print("--max-bytes must be non-negative", file=sys.stderr)
                return 2
            removed = store.prune(args.max_bytes)
            remaining = store.stats()
            print(
                f"pruned {removed} entries from {store.directory}; "
                f"{remaining.entries} entries / {remaining.total_bytes} "
                "bytes remain"
            )
            if remote is not None:
                removed = remote.prune(args.max_bytes)
                remaining = remote.stats()
                print(
                    f"pruned {removed} entries from {args.cache_url}; "
                    f"{remaining.entries} entries / "
                    f"{remaining.total_bytes} bytes remain"
                )
            return 0
        raise AssertionError("unreachable")
    except ReproError as exc:
        return _print_error(exc)
    finally:
        if remote is not None:
            remote.close()


def cmd_cache_server(args) -> int:
    import asyncio

    from .cluster import serve_cache

    if args.memory_entries is not None and args.memory_entries < 1:
        print("--memory-entries must be at least 1", file=sys.stderr)
        return 2
    kwargs = {"cache_dir": args.cache_dir}
    if args.memory_entries is not None:
        kwargs["memory_entries"] = args.memory_entries
    try:
        asyncio.run(serve_cache(host=args.host, port=args.port, **kwargs))
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # port in use, privileged bind, ...
        print(f"error [serve_failed]: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_worker(args) -> int:
    import asyncio

    from .cluster import EXIT_AFTER_ENV, serve_worker

    if args.heartbeat_interval is not None and args.heartbeat_interval <= 0:
        print("--heartbeat-interval must be positive", file=sys.stderr)
        return 2
    fail_after = os.environ.get(EXIT_AFTER_ENV)
    kwargs = {}
    if args.heartbeat_interval is not None:
        kwargs["heartbeat_interval"] = args.heartbeat_interval
    if fail_after:
        kwargs["fail_after_chunks"] = int(fail_after)
    try:
        asyncio.run(serve_worker(host=args.host, port=args.port, **kwargs))
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # port in use, privileged bind, ...
        print(f"error [serve_failed]: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .service import ServiceConfig, serve as run_service

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            request_timeout=args.request_timeout,
        )
    except ValueError as exc:
        print(f"error [invalid_request]: {exc}", file=sys.stderr)
        return 2
    engine = _engine_from(args, jobs=args.jobs)
    try:
        asyncio.run(run_service(engine, config))
    except KeyboardInterrupt:
        # SIGINT between requests on platforms without loop signal
        # handlers; the engine still closes deterministically
        engine.close()
    except OSError as exc:  # port in use, privileged bind, ...
        engine.close()
        print(f"error [serve_failed]: {exc}", file=sys.stderr)
        return 2
    return 0


#: One parsed manifest row.  Exactly one of ``error`` (unparseable row),
#: ``request`` (a JSON wire-schema request object) or ``ideal`` (a
#: classic path pair, ``noisy`` optional) is populated.
ManifestRow = namedtuple("ManifestRow", "lineno ideal noisy error request")


def iter_manifest(path):
    """Yield one :class:`ManifestRow` per non-blank manifest line.

    Two row forms, freely mixed: classic ``ideal.qasm [noisy.qasm]``
    pairs ('#' starts a comment), and JSON objects (lines starting with
    ``{``) parsed as wire-schema check requests.  Malformed rows are
    *reported*, not raised: batch runs isolate per-row failures, so a
    typo on line 40 cannot take down lines 1–39.
    """
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if stripped.startswith("{"):
                # JSON rows skip comment stripping: '#' may legitimately
                # appear inside QASM text or parameter strings.
                try:
                    payload = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    yield ManifestRow(lineno, None, None, (
                        f"{path}:{lineno}: bad JSON request row: {exc}"
                    ), None)
                    continue
                yield ManifestRow(lineno, None, None, None, payload)
                continue
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) > 2:
                yield ManifestRow(lineno, None, None, (
                    f"{path}:{lineno}: expected 'ideal.qasm [noisy.qasm]' "
                    f"or a JSON request object, got {len(parts)} fields"
                ), None)
                continue
            yield ManifestRow(lineno, parts[0], (
                parts[1] if len(parts) == 2 else None
            ), None, None)


def read_manifest(path):
    """Yield ``(ideal_path, noisy_path_or_None)`` entries of a manifest.

    The strict path-pair form of :func:`iter_manifest`: malformed rows
    raise ``ValueError`` (library callers who want fail-fast behaviour),
    and JSON request rows are rejected — parse those with
    :meth:`repro.api.CheckRequest.from_dict` via :func:`iter_manifest`.
    """
    for row in iter_manifest(path):
        if row.error is not None:
            raise ValueError(row.error)
        if row.request is not None:
            raise ValueError(
                "manifest contains JSON request rows; iterate with "
                "iter_manifest and parse them with CheckRequest.from_dict"
            )
        yield row.ideal, row.noisy


def cmd_batch(args) -> int:
    # The engine owns the --jobs worker pool; close it deterministically
    # rather than racing interpreter teardown.
    with _engine_from(args, jobs=args.jobs) as engine:
        try:
            return _run_batch(args, engine)
        except ReproError as error:
            # a bad *flag* (e.g. --noises -1) fails before any row runs;
            # per-row failures are isolated into ERROR records inside
            return _print_error(error)


def _run_batch(args, engine: Engine) -> int:
    start = time.perf_counter()
    if engine.cache_url is not None:
        from .cluster import metrics as cluster_metrics

        remote_before = cluster_metrics.counters_snapshot()
    rows = list(iter_manifest(args.manifest))  # row metadata only

    totals = {"checked": 0, "equivalent": 0, "errors": 0}
    # the same cumulative counter the service's /metrics endpoint uses
    aggregate = StatsAggregator()

    # JSON rows inherit absent fields from the CLI flags.  The base
    # request needs *some* ideal spec to construct; rows are required
    # to name their own (checked against the raw payload below), so
    # this placeholder never resolves.
    base_request = _request_from(args, CircuitSpec.inline(""))

    def manifest_error(message):
        # One wire shape for every error record: the same
        # ReproError.to_dict the engine path uses, with the historical
        # "ManifestError" type label for unparseable rows.
        return InvalidRequestError(
            message, error_type="ManifestError"
        ).to_dict()

    # One entry per manifest row: (lineno, ideal-label, noisy-label,
    # request-or-None, error-record-or-None).  Requests stay lazy —
    # circuits load inside the engine — so serial runs keep streaming.
    entries = []
    for row in rows:
        if row.error is not None:
            entries.append((row.lineno, row.ideal, row.noisy, None,
                            manifest_error(row.error)))
            continue
        if row.request is not None:
            try:
                # the raw payload must name its own ideal — the base
                # request's placeholder never stands in for it
                if not isinstance(row.request, dict) or row.request.get(
                    "ideal"
                ) is None:
                    raise InvalidRequestError(
                        f"{args.manifest}:{row.lineno}: request row is "
                        "missing 'ideal'"
                    )
                request = CheckRequest.from_dict(
                    row.request, base=base_request
                )
            except ReproError as exc:
                entries.append((row.lineno, None, None, None,
                                exc.to_dict()))
                continue
            noisy_label = (request.noisy or request.ideal).describe()
            entries.append((row.lineno, request.ideal.describe(),
                            noisy_label, request, None))
        else:
            request = _request_from(
                args,
                CircuitSpec.from_path(row.ideal),
                CircuitSpec.from_path(row.noisy) if row.noisy else None,
            )
            entries.append((row.lineno, row.ideal, row.noisy or row.ideal,
                            request, None))

    def emit(position, lineno, ideal_label, noisy_label, record):
        if record["verdict"] == "ERROR":
            totals["errors"] += 1
        else:
            totals["checked"] += 1
            totals["equivalent"] += int(record["equivalent"])
        # index = position in the manifest (error rows included), so it
        # stays joinable to the input; engine-stream indices would skip
        # the rows that never reached the engine.
        record["index"] = position
        record["line"] = lineno
        record["ideal"] = ideal_label
        record["noisy"] = noisy_label or ideal_label
        print(json.dumps(record), flush=True)

    # Every check routes through the engine: error-isolating, input
    # order preserved, fanned out to the shared pool when --jobs > 1
    # (each record still prints as soon as its check finishes on the
    # serial path).
    responses = engine.check_iter(
        entry[3] for entry in entries if entry[3] is not None
    )
    for position, (lineno, ideal_label, noisy_label, request,
                   error) in enumerate(entries):
        if error is not None:
            emit(position, lineno, ideal_label, noisy_label, error)
            continue
        response = next(responses)
        aggregate.add(response.stats)
        emit(position, lineno, ideal_label, noisy_label,
             response.to_dict())

    wall = time.perf_counter() - start
    snapshot = aggregate.snapshot()
    cache_note = ""
    if engine.cache is not None:
        cache_note = (
            f", plan hits {int(snapshot['plan_cache_hits'])}, "
            f"result hits {int(snapshot['result_cache_hits'])}"
        )
        if engine.cache_url is not None:
            # process-wide cluster counters; the delta over this batch
            from .cluster import metrics as cluster_metrics

            after = cluster_metrics.counters_snapshot()
            remote_hits = (
                after["remote_cache_hits"]
                - remote_before["remote_cache_hits"]
            )
            cache_note += f", remote hits {remote_hits}"
    print(
        f"batch: {len(rows)} rows, {totals['checked']} checked, "
        f"{totals['equivalent']} equivalent, "
        f"{totals['checked'] - totals['equivalent']} not equivalent, "
        f"{totals['errors']} errors; wall {wall:.3f}s, "
        f"cpu {snapshot['cpu_seconds']:.3f}s, jobs={args.jobs}{cache_note}",
        file=sys.stderr,
    )
    if totals["errors"]:
        return 2
    return 0 if totals["equivalent"] == totals["checked"] else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return cmd_check(args)
    if args.command == "fidelity":
        return cmd_fidelity(args)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "plan":
        return cmd_plan(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "cache-server":
        return cmd_cache_server(args)
    if args.command == "worker":
        return cmd_worker(args)
    if args.command == "cache":
        return cmd_cache(args)
    if args.command == "backends":
        return cmd_backends(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
