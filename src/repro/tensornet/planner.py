"""The shared contraction-plan IR: plan once, execute anywhere.

A :class:`ContractionPlan` is an executable, backend-independent record of
*how* a closed tensor network will be contracted: an ordered list of
pairwise :class:`ContractionStep`\\ s carrying the eliminated index set,
the output index tuple and per-step flop / intermediate-size estimates.
Every :class:`~repro.backends.base.ContractionBackend` executes the same
plan object — the TDD engine contracts decision diagrams along it, the
dense and einsum engines contract ndarrays along it — so planning cost is
paid once per network structure and plan quality is measurable before any
numerics run.

Three planners produce plans:

* :func:`plan_from_order` — wraps the elimination-order heuristics of
  :mod:`repro.tensornet.ordering` (``sequential``, ``min_fill``,
  ``tree_decomposition``), simulating the pairwise merge sequence the
  order induces;
* :func:`greedy_plan` — a cost-greedy pairwise planner that repeatedly
  merges the connected pair with the smallest output tensor;
* :func:`repro.planning.search_plan` — budgeted anytime search
  (``anneal``/``hyper``, see :data:`SEARCH_PLANNERS`) that spends a
  wall-clock budget on randomized restarts and never returns a plan
  worse than the greedy/min_fill baseline;
* :func:`slice_plan` — rewrites any plan into a sum over index-fixed
  subplans so that no intermediate exceeds a ``max_intermediate_size``
  bound (memory-bounded contraction, the standard slicing trick of
  large-scale tensor-network simulators).

Step positions follow the ``np.einsum_path`` convention: each step names
two positions in the *current* operand list; both operands are removed
(higher position first) and the merged operand is appended at the end.
"""

from __future__ import annotations

import hashlib
import itertools
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .network import TensorNetwork
from .ordering import contraction_order
from .tensor import Tensor

#: Planner values served by the budgeted anytime search driver of
#: :mod:`repro.planning` — ``"anneal"`` (annealed random-greedy
#: restarts) and ``"hyper"`` (recursive hypergraph bisection).  Both
#: start from the greedy/min_fill baseline, so a zero budget degrades to
#: heuristic quality; their plans carry a
#: :class:`~repro.planning.PlanSearchReport` in ``search_report``.
SEARCH_PLANNERS = ("anneal", "hyper")

#: Registry of planner strategies understood by :func:`build_plan` (and by
#: the ``planner=`` knob of backends, ``CheckConfig`` and the CLI).
#: ``"order"`` derives the pairwise sequence from an elimination-order
#: heuristic; ``"greedy"`` picks pairs by smallest merged tensor; the
#: :data:`SEARCH_PLANNERS` trade a time budget for cheaper plans.
PLANNERS = ("order", "greedy") + SEARCH_PLANNERS

#: :func:`slice_plan` warns when a bound implies more subplan executions
#: than this — each slice multiplies runtime, and a very tight bound can
#: silently turn one contraction into billions.
SLICE_WARN_THRESHOLD = 65536

#: Default hard cap on subplan executions: :func:`slice_plan` *raises*
#: (not just warns) when a bound implies more slices than this, because a
#: contraction that needs tens of millions of subplan runs will never
#: finish and should fail at planning time, not hours into execution.
#: Override per call via the ``max_slices`` argument.
SLICE_HARD_LIMIT = 1 << 24


@dataclass(frozen=True)
class ContractionStep:
    """One pairwise contraction of a plan.

    ``lhs``/``rhs`` are positions in the operand list *at step time*
    (einsum-path convention — see module docstring).  ``eliminated`` are
    the labels summed over in this step; ``output`` is the merged
    operand's label tuple (lhs survivors first, then rhs survivors, the
    order :meth:`Tensor.contract` produces).
    """

    lhs: int
    rhs: int
    eliminated: frozenset
    output: Tuple[str, ...]
    #: number of entries of the merged intermediate tensor
    output_size: int
    #: scalar multiply-add estimate: output_size * prod(eliminated dims)
    flops: int


@dataclass(frozen=True)
class ContractionPlan:
    """An executable contraction schedule for one network structure.

    ``inputs`` holds the label tuple of every input tensor *after
    self-tracing* (a label paired within one tensor never reaches the
    pairwise engine) but *before* slicing: the ``slices`` labels are fixed
    to one value per subplan execution and therefore absent from every
    step's ``eliminated``/``output`` sets.  ``dims`` maps every label —
    sliced ones included — to its dimension.
    """

    inputs: Tuple[Tuple[str, ...], ...]
    dims: Dict[str, int] = field(hash=False)
    steps: Tuple[ContractionStep, ...]
    #: global elimination order behind the plan (feeds the TDD manager's
    #: variable order and the deprecated ``order_for`` shim)
    order: Tuple[str, ...]
    #: labels fixed-and-summed outside the plan (empty = unsliced)
    slices: Tuple[str, ...] = ()
    #: name of the planner that produced the plan
    planner: str = "order"
    #: search provenance (a :class:`repro.planning.PlanSearchReport`)
    #: when the plan came from a budgeted search; ``None`` for the
    #: heuristic planners.  Provenance, not structure: excluded from
    #: equality and from :meth:`digest`, but pickled with the plan so
    #: plan-cache hits still report how the plan was found.
    search_report: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    # --- cost model -----------------------------------------------------------

    def num_slices(self) -> int:
        """Number of index-fixed subplan executions (1 when unsliced)."""
        count = 1
        for label in self.slices:
            count *= self.dims[label]
        return count

    def peak_size(self) -> int:
        """Largest intermediate tensor any single subplan materialises.

        Counts merge outputs only (matching
        ``ContractionStats.max_intermediate_size``); the caller's input
        tensors are not the plan's to bound.
        """
        return max((step.output_size for step in self.steps), default=1)

    def width(self) -> int:
        """Largest intermediate rank (the contraction-tree width)."""
        return max((len(step.output) for step in self.steps), default=0)

    def total_cost(self) -> int:
        """Predicted scalar multiply-adds across *all* slices."""
        return self.num_slices() * sum(step.flops for step in self.steps)

    def all_labels(self) -> Set[str]:
        """Every label the pairwise engine sees (sliced ones included)."""
        labels: Set[str] = set(self.slices)
        for labs in self.inputs:
            labels.update(labs)
        return labels

    def digest(self) -> str:
        """Content digest of the plan's executable structure.

        The memo key backends use for per-plan lowered forms (compiled
        einsum subscripts, batch layouts): two plans with the same
        inputs, dims, steps and slices share a digest, whatever network
        object they were built from.  Computed once and cached on the
        instance (plans are frozen; the cache rides along through
        pickling to worker processes).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            payload = repr((
                self.inputs,
                tuple(sorted(self.dims.items())),
                tuple(
                    (s.lhs, s.rhs, tuple(sorted(s.eliminated)), s.output)
                    for s in self.steps
                ),
                self.slices,
            )).encode()
            cached = hashlib.sha1(payload).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    # --- reporting ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "planner": self.planner,
            "num_inputs": len(self.inputs),
            "num_indices": len(self.all_labels()),
            "num_steps": len(self.steps),
            "width": self.width(),
            "peak_intermediate_size": self.peak_size(),
            "total_cost": self.total_cost(),
            "num_slices": self.num_slices(),
            "slices": list(self.slices),
            "steps": [
                {
                    "lhs": step.lhs,
                    "rhs": step.rhs,
                    "eliminated": sorted(step.eliminated),
                    "output_rank": len(step.output),
                    "output_size": step.output_size,
                    "flops": step.flops,
                }
                for step in self.steps
            ],
            "search": (
                self.search_report.to_dict() if self.search_report else None
            ),
        }

    def report(self, max_steps: Optional[int] = None) -> str:
        """Human-readable step/cost report (the ``repro plan`` output)."""
        lines = [
            f"planner          : {self.planner}",
            f"inputs           : {len(self.inputs)} tensors, "
            f"{len(self.all_labels())} indices",
            f"steps            : {len(self.steps)}",
            f"width            : {self.width()}",
            f"peak intermediate: {self.peak_size()} elements",
            f"predicted flops  : {self.total_cost()}",
            f"slices           : {self.num_slices()}"
            + (f" over {list(self.slices)}" if self.slices else ""),
        ]
        if self.search_report is not None:
            record = self.search_report
            lines.append(
                f"search           : {record.trials} trials in "
                f"{record.search_seconds:.3f}s (seed {record.seed}), "
                f"baseline {record.baseline_planner} cost "
                f"{record.baseline_cost} -> best {record.best_cost}"
            )
        shown = self.steps if max_steps is None else self.steps[:max_steps]
        for number, step in enumerate(shown):
            eliminated = ",".join(sorted(step.eliminated)) or "(outer)"
            lines.append(
                f"  step {number:3d}: ({step.lhs},{step.rhs}) "
                f"sum[{eliminated}] -> rank {len(step.output)}, "
                f"size {step.output_size}, flops {step.flops}"
            )
        if max_steps is not None and len(self.steps) > max_steps:
            lines.append(f"  ... {len(self.steps) - max_steps} more steps")
        return "\n".join(lines)

    def validate(self) -> None:
        """Check the plan invariant: every label handled exactly once.

        Each label is either a slice label or eliminated by exactly one
        step; no label is both, none is dropped.
        """
        seen: Dict[str, int] = {}
        for label in self.slices:
            seen[label] = seen.get(label, 0) + 1
        for step in self.steps:
            for label in step.eliminated:
                seen[label] = seen.get(label, 0) + 1
        labels = self.all_labels()
        multiple = sorted(lab for lab, count in seen.items() if count > 1)
        missing = sorted(labels - seen.keys())
        if multiple or missing:
            raise ValueError(
                f"invalid plan: handled more than once {multiple}, "
                f"never handled {missing}"
            )


# --- plan construction ------------------------------------------------------


def _plan_inputs(
    network: TensorNetwork,
) -> Tuple[Tuple[Tuple[str, ...], ...], Dict[str, int]]:
    """Self-traced label tuples + label dimensions of a closed network."""
    network.validate()
    open_labels = network.open_indices()
    if open_labels:
        raise ValueError(
            f"network has open indices {open_labels}; contraction plans "
            "cover closed networks only"
        )
    dims: Dict[str, int] = {}
    inputs: List[Tuple[str, ...]] = []
    for tensor in network.tensors:
        counts: Dict[str, int] = {}
        for label in tensor.indices:
            counts[label] = counts.get(label, 0) + 1
        kept = tuple(lab for lab in tensor.indices if counts[lab] == 1)
        for label, dim in zip(tensor.indices, tensor.data.shape):
            if counts[label] == 1:
                dims[label] = dim
        inputs.append(kept)
    return tuple(inputs), dims


def _make_step(
    ops: List[Tuple[str, ...]], i: int, j: int, dims: Dict[str, int]
) -> ContractionStep:
    """Merge operands ``i < j`` in-place and record the step."""
    a, b = ops[i], ops[j]
    shared = frozenset(a) & frozenset(b)
    output = tuple(lab for lab in a if lab not in shared) + tuple(
        lab for lab in b if lab not in shared
    )
    size = 1
    for label in output:
        size *= dims[label]
    flops = size
    for label in shared:
        flops *= dims[label]
    del ops[j]
    del ops[i]
    ops.append(output)
    return ContractionStep(
        lhs=i, rhs=j, eliminated=shared, output=output,
        output_size=size, flops=flops,
    )


def _steps_from_order(
    inputs: Sequence[Tuple[str, ...]],
    dims: Dict[str, int],
    order: Sequence[str],
) -> List[ContractionStep]:
    """Simulate the dense engine's merge sequence along ``order``."""
    ops: List[Tuple[str, ...]] = list(inputs)
    steps: List[ContractionStep] = []
    for label in order:
        holders = [idx for idx, labs in enumerate(ops) if label in labs]
        if len(holders) == 2:
            steps.append(_make_step(ops, holders[0], holders[1], dims))
    while len(ops) > 1:  # outer-product disconnected components
        steps.append(_make_step(ops, 0, 1, dims))
    return steps


def plan_from_order(
    network: TensorNetwork,
    order: Optional[Sequence[str]] = None,
    method: str = "tree_decomposition",
) -> ContractionPlan:
    """Plan the pairwise merge sequence an elimination order induces.

    ``order`` wins when given; otherwise the ``method`` heuristic (one of
    :data:`repro.tensornet.ordering.ORDER_HEURISTICS`) derives it.
    """
    inputs, dims = _plan_inputs(network)
    if order is None:
        order = contraction_order(network, method)
    else:
        order = list(order)
    seen = set(order)
    full = list(order) + [i for i in network.all_indices() if i not in seen]
    steps = _steps_from_order(inputs, dims, full)
    return ContractionPlan(
        inputs=inputs, dims=dims, steps=tuple(steps),
        order=tuple(full), planner="order",
    )


def greedy_plan(network: TensorNetwork) -> ContractionPlan:
    """Cost-greedy pairwise planner.

    Repeatedly merges the connected pair whose output tensor is smallest
    (ties broken by position for determinism), then outer-products any
    disconnected remainders.  Often beats order-derived plans on networks
    whose interaction graph fools the ordering heuristics, at the price of
    O(t^3) planning time in the tensor count.
    """
    inputs, dims = _plan_inputs(network)
    ops: List[Tuple[str, ...]] = list(inputs)
    steps: List[ContractionStep] = []
    while True:
        best: Optional[Tuple[int, int, int]] = None  # (size, i, j)
        for i, j in itertools.combinations(range(len(ops)), 2):
            shared = frozenset(ops[i]) & frozenset(ops[j])
            if not shared:
                continue
            size = 1
            for label in ops[i] + ops[j]:
                if label not in shared:
                    size *= dims[label]
            if best is None or (size, i, j) < best:
                best = (size, i, j)
        if best is None:
            break
        steps.append(_make_step(ops, best[1], best[2], dims))
    while len(ops) > 1:
        steps.append(_make_step(ops, 0, 1, dims))
    # A global elimination order consistent with the merge sequence (the
    # TDD manager needs one); leftovers are self-loop labels absent from
    # the pairwise engine.
    order: List[str] = []
    for step in steps:
        order.extend(sorted(step.eliminated))
    remaining = [i for i in network.all_indices() if i not in set(order)]
    return ContractionPlan(
        inputs=inputs, dims=dims, steps=tuple(steps),
        order=tuple(order + remaining), planner="greedy",
    )


def build_plan(
    network: TensorNetwork,
    planner: str = "order",
    order_method: str = "tree_decomposition",
    max_intermediate_size: Optional[int] = None,
    max_slices: Optional[int] = None,
    plan_budget_seconds: Optional[float] = None,
    plan_seed: int = 0,
    plan_trials: Optional[int] = None,
) -> ContractionPlan:
    """One-stop plan construction: pick a planner, optionally slice.

    The search planners (:data:`SEARCH_PLANNERS`) additionally honour
    ``plan_budget_seconds`` (wall-clock search budget; ``None`` means
    the default budget, ``0`` means baseline only), ``plan_seed``
    (deterministic trial seeding) and ``plan_trials`` (exact trial
    count, overriding the clock — the fully deterministic mode); the
    heuristic planners ignore all three.
    """
    if planner in SEARCH_PLANNERS:
        from ..planning import search_plan

        return search_plan(
            network,
            planner,
            budget_seconds=plan_budget_seconds,
            seed=plan_seed,
            trials=plan_trials,
            max_intermediate_size=max_intermediate_size,
            max_slices=max_slices,
        )
    if planner == "order":
        plan = plan_from_order(network, method=order_method)
    elif planner == "greedy":
        plan = greedy_plan(network)
    else:
        raise ValueError(
            f"unknown planner {planner!r}; choose from {sorted(PLANNERS)}"
        )
    if max_intermediate_size is not None:
        plan = slice_plan(plan, max_intermediate_size, max_slices=max_slices)
    return plan


# --- slicing ----------------------------------------------------------------


def _resliced_steps(
    plan: ContractionPlan, sliced: Set[str]
) -> List[ContractionStep]:
    """Replay the plan's merge positions with ``sliced`` labels removed."""
    ops: List[Tuple[str, ...]] = [
        tuple(lab for lab in labs if lab not in sliced) for labs in plan.inputs
    ]
    return [
        _make_step(ops, step.lhs, step.rhs, plan.dims) for step in plan.steps
    ]


def slice_plan(
    plan: ContractionPlan,
    max_intermediate_size: int,
    max_slices: Optional[int] = None,
) -> ContractionPlan:
    """Bound every intermediate by fixing (slicing) chosen indices.

    Greedily picks slice labels — the label occurring in the most
    oversized intermediates, largest dimension first — until no step's
    output exceeds ``max_intermediate_size``, and rewrites the plan into a
    sum over index-fixed subplans: execution runs the same step positions
    once per joint slice-index assignment and sums the scalars.  Returns
    ``plan`` unchanged when it already fits the bound.

    ``max_slices`` caps the number of subplan executions the bound may
    imply (default :data:`SLICE_HARD_LIMIT`); a tighter-than-feasible
    ``max_intermediate_size`` raises ``ValueError`` instead of silently
    scheduling a contraction that would never finish.
    """
    if max_intermediate_size < 1:
        raise ValueError("max_intermediate_size must be at least 1")
    if max_slices is None:
        max_slices = SLICE_HARD_LIMIT
    elif max_slices < 1:
        raise ValueError("max_slices must be at least 1")
    if plan.peak_size() <= max_intermediate_size:
        return plan
    sliced: Set[str] = set(plan.slices)
    steps = list(plan.steps)
    while True:
        oversized = [
            step for step in steps
            if step.output_size > max_intermediate_size
        ]
        if not oversized:
            break
        occurrences: Dict[str, int] = {}
        for step in oversized:
            for label in step.output:
                if plan.dims[label] > 1:
                    occurrences[label] = occurrences.get(label, 0) + 1
        # occurrences cannot be empty: an output larger than the bound
        # (>= 1) must contain a label of dimension > 1.  Occurrence and
        # size ties break on the label name itself — never on dict/set
        # iteration order — so the sliced plan, and therefore its digest
        # and every cache key derived from it, is identical across
        # Python hash seeds and processes.
        best = min(
            occurrences,
            key=lambda lab: (-occurrences[lab], -plan.dims[lab], lab),
        )
        sliced.add(best)
        steps = _resliced_steps(plan, sliced)
    result = replace(
        plan, steps=tuple(steps), slices=tuple(sorted(sliced))
    )
    if result.num_slices() > max_slices:
        raise ValueError(
            f"slicing to max_intermediate_size={max_intermediate_size} "
            f"requires {result.num_slices()} subplan executions over the "
            f"{len(result.slices)} sliced indices {list(result.slices)}, "
            f"above the max_slices cap of {max_slices}; loosen the bound "
            "or raise max_slices"
        )
    if result.num_slices() > SLICE_WARN_THRESHOLD:
        warnings.warn(
            f"slicing to max_intermediate_size={max_intermediate_size} "
            f"requires {result.num_slices()} subplan executions over the "
            f"{len(result.slices)} sliced indices {list(result.slices)}; "
            "expect runtime to scale accordingly (loosen the bound to "
            "trade memory back for time)",
            RuntimeWarning,
            stacklevel=2,
        )
    return result


# --- execution helpers ------------------------------------------------------


def iter_slice_assignments(
    plan: ContractionPlan,
) -> Iterator[Dict[str, int]]:
    """Yield one ``{label: value}`` assignment per subplan execution.

    Unsliced plans yield a single empty assignment, so executors can use
    one uniform loop.
    """
    if not plan.slices:
        yield {}
        return
    ranges = [range(plan.dims[label]) for label in plan.slices]
    for values in itertools.product(*ranges):
        yield dict(zip(plan.slices, values))


class SliceApplier:
    """Precomputed slice-fixing of a network's tensors.

    Self-tracing and the per-tensor bookkeeping (which axes carry sliced
    labels, which labels survive) are assignment-independent, so they are
    derived once at construction; applying one of potentially millions of
    slice assignments then only indexes ndarrays.
    """

    def __init__(self, tensors: Sequence[Tensor], slices: Sequence[str]):
        self.flat: List[Tensor] = [t.self_trace() for t in tensors]
        sliced = set(slices)
        #: per tensor: (positions of sliced axes, surviving labels)
        self._layout: List[Tuple[List[int], List[str]]] = [
            (
                [ax for ax, lab in enumerate(t.indices) if lab in sliced],
                [lab for lab in t.indices if lab not in sliced],
            )
            for t in self.flat
        ]

    def __call__(self, assignment: Dict[str, int]) -> List[Tensor]:
        """Operands with every sliced axis fixed to its assigned value."""
        if not assignment:
            return list(self.flat)
        operands: List[Tensor] = []
        for tensor, (positions, kept) in zip(self.flat, self._layout):
            if not positions:
                operands.append(tensor)
                continue
            indexer: List[object] = [slice(None)] * tensor.rank
            for axis in positions:
                indexer[axis] = assignment[tensor.indices[axis]]
            operands.append(Tensor(tensor.data[tuple(indexer)], kept))
        return operands


class BatchedSliceApplier:
    """Slice-fixing with a leading batch axis, for batched execution.

    The batched counterpart of :class:`SliceApplier`: instead of
    producing one operand set per assignment, :meth:`gather` produces
    one operand set per *chunk* of assignments, where every
    slice-varying tensor gains a leading batch axis of length
    ``len(chunk)`` and slice-independent tensors pass through unchanged
    (einsum broadcasting mixes the two freely).

    All assignment-independent work happens once at construction:
    self-tracing, finding which tensors carry sliced axes, and
    pre-transposing those tensors so their sliced axes lead — which
    turns per-chunk stacking into a single advanced-indexing gather per
    tensor.  Device placement also happens once: the first
    :meth:`gather` against a namespace moves every base tensor to the
    device, and later chunks only gather on-device (the "one host↔device
    transfer per plan execution" rule of :mod:`repro.backends.xp`).
    """

    def __init__(self, tensors: Sequence[Tensor], slices: Sequence[str]):
        sliced = set(slices)
        #: per tensor: (host base array, sliced-label order or None,
        #: surviving labels)
        self._layout: List[Tuple[np.ndarray, Optional[List[str]],
                                 List[str]]] = []
        for tensor in (t.self_trace() for t in tensors):
            positions = [
                ax for ax, lab in enumerate(tensor.indices) if lab in sliced
            ]
            kept = [lab for lab in tensor.indices if lab not in sliced]
            if not positions:
                self._layout.append((tensor.data, None, kept))
                continue
            labels = [tensor.indices[ax] for ax in positions]
            moved = np.ascontiguousarray(np.moveaxis(
                tensor.data, positions, range(len(positions))
            ))
            self._layout.append((moved, labels, kept))
        self._device_xp = None
        self._device_ops: List[object] = []

    def gather(self, xp, chunk: Sequence[Dict[str, int]]) -> List[object]:
        """Operands for one chunk: batched where sliced, shared where not.

        Returns one operand per tensor, ordered like the plan's inputs;
        batched operands have shape ``(len(chunk), *kept_axes)``.
        """
        if self._device_xp is not xp:
            self._device_ops = [
                xp.from_host(data) for data, _, _ in self._layout
            ]
            self._device_xp = xp
        operands: List[object] = []
        for base, (_, labels, _) in zip(self._device_ops, self._layout):
            if labels is None:
                operands.append(base)
                continue
            indexer = tuple(
                xp.index_array([assignment[lab] for assignment in chunk])
                for lab in labels
            )
            operands.append(base[indexer])
        return operands


def execute_plan(
    plan, network, *, load, merge, scalar, assignments=None
) -> complex:
    """Drive a plan over a network with backend-supplied callbacks.

    The one place that owns the step-position protocol (remove rhs then
    lhs, append the merged operand) and the slice-summation loop, so the
    three engines cannot drift apart on it.

    Parameters
    ----------
    load:
        ``load(tensors) -> list`` turning the (self-traced, slice-fixed)
        :class:`Tensor` operands into backend operands.
    merge:
        ``merge(a, b, step) -> operand`` executing one
        :class:`ContractionStep` on two backend operands.
    scalar:
        ``scalar(operand) -> complex`` extracting the final value of one
        subplan execution; results are summed over all slices.
    assignments:
        Execute only these slice assignments (a subset of
        :func:`iter_slice_assignments`) and return their partial sum —
        the hook :mod:`repro.parallel` uses to fan independent slices
        out to workers.  ``None`` (the default) executes every slice.
    """
    applier = SliceApplier(network.tensors, plan.slices)
    if assignments is None:
        assignments = iter_slice_assignments(plan)
    total = 0j
    for assignment in assignments:
        ops = load(applier(assignment))
        for step in plan.steps:
            a, b = ops[step.lhs], ops[step.rhs]
            del ops[step.rhs]
            del ops[step.lhs]
            ops.append(merge(a, b, step))
        total += scalar(ops[0])
    return total


def _apply_assignment(
    flat: Sequence[Tensor], assignment: Dict[str, int]
) -> List[Tensor]:
    """Fix sliced axes of already-self-traced tensors (dropping them)."""
    return SliceApplier(flat, list(assignment))(assignment)
