"""Tensor-network substrate: tensors, networks, orders, circuit conversion."""

from .circuit_tn import (
    CircuitNetwork,
    circuit_to_network,
    circuit_trace,
    close_trace,
    connect,
)
from .network import ContractionStats, TensorNetwork
from .planner import (
    PLANNERS,
    SLICE_HARD_LIMIT,
    BatchedSliceApplier,
    ContractionPlan,
    ContractionStep,
    SliceApplier,
    build_plan,
    execute_plan,
    greedy_plan,
    iter_slice_assignments,
    plan_from_order,
    slice_plan,
)
from .ordering import (
    ORDER_HEURISTICS,
    contraction_order,
    interaction_graph,
    min_fill_order,
    sequential_order,
    tree_decomposition_order,
)
from .tensor import Tensor, gate_tensor, identity_tensor, scalar_tensor

__all__ = [
    "ORDER_HEURISTICS",
    "PLANNERS",
    "SLICE_HARD_LIMIT",
    "BatchedSliceApplier",
    "CircuitNetwork",
    "ContractionPlan",
    "ContractionStats",
    "ContractionStep",
    "SliceApplier",
    "Tensor",
    "TensorNetwork",
    "build_plan",
    "execute_plan",
    "iter_slice_assignments",
    "circuit_to_network",
    "circuit_trace",
    "close_trace",
    "connect",
    "contraction_order",
    "greedy_plan",
    "plan_from_order",
    "slice_plan",
    "gate_tensor",
    "identity_tensor",
    "interaction_graph",
    "min_fill_order",
    "scalar_tensor",
    "sequential_order",
    "tree_decomposition_order",
]
