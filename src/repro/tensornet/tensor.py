"""Dense tensors with named indices.

A :class:`Tensor` wraps an ndarray whose axes are addressed by string
labels.  Two tensors sharing a label are connected by an edge of the
tensor network; a label occurring twice *within* one tensor is a self-loop
and is summed out by :meth:`Tensor.self_trace`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..linalg import COMPLEX


class Tensor:
    """An ndarray with one string label per axis."""

    def __init__(self, data: np.ndarray, indices: Sequence[str]):
        data = np.asarray(data, dtype=COMPLEX)
        indices = tuple(str(i) for i in indices)
        if data.ndim != len(indices):
            raise ValueError(
                f"tensor of rank {data.ndim} given {len(indices)} index labels"
            )
        self.data = data
        self.indices = indices

    @property
    def rank(self) -> int:
        """Number of axes."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of entries."""
        return int(self.data.size)

    def copy(self) -> "Tensor":
        """Deep copy."""
        return Tensor(self.data.copy(), self.indices)

    def conjugate(self) -> "Tensor":
        """Entry-wise complex conjugate, same labels."""
        return Tensor(np.conjugate(self.data), self.indices)

    def relabel(self, mapping: Dict[str, str]) -> "Tensor":
        """Rename indices; duplicates created here become self-loops."""
        return Tensor(self.data, [mapping.get(i, i) for i in self.indices])

    def duplicate_indices(self) -> List[str]:
        """Labels appearing more than once in this tensor."""
        seen, dups = set(), []
        for label in self.indices:
            if label in seen and label not in dups:
                dups.append(label)
            seen.add(label)
        return dups

    def self_trace(self) -> "Tensor":
        """Sum out every label that appears exactly twice in this tensor."""
        tensor = self
        while True:
            dups = tensor.duplicate_indices()
            if not dups:
                return tensor
            label = dups[0]
            axes = [ax for ax, lab in enumerate(tensor.indices) if lab == label]
            if len(axes) != 2:
                raise ValueError(
                    f"index {label!r} appears {len(axes)} times; "
                    "only pairwise self-loops are supported"
                )
            data = np.trace(tensor.data, axis1=axes[0], axis2=axes[1])
            remaining = [
                lab for ax, lab in enumerate(tensor.indices) if ax not in axes
            ]
            tensor = Tensor(data, remaining)

    def contract(self, other: "Tensor") -> "Tensor":
        """Contract with ``other`` over all shared labels.

        Labels must be unique within each operand (call
        :meth:`self_trace` first if not).  Disjoint label sets produce the
        outer product.
        """
        shared = [i for i in self.indices if i in other.indices]
        axes_self = [self.indices.index(i) for i in shared]
        axes_other = [other.indices.index(i) for i in shared]
        data = np.tensordot(self.data, other.data, axes=(axes_self, axes_other))
        rest_self = [i for i in self.indices if i not in shared]
        rest_other = [i for i in other.indices if i not in shared]
        return Tensor(data, rest_self + rest_other)

    def transpose(self, new_order: Sequence[str]) -> "Tensor":
        """Reorder axes to match ``new_order`` (a permutation of labels)."""
        if sorted(new_order) != sorted(self.indices):
            raise ValueError(
                f"{tuple(new_order)} is not a permutation of {self.indices}"
            )
        perm = [self.indices.index(i) for i in new_order]
        return Tensor(np.transpose(self.data, perm), list(new_order))

    def scalar(self) -> complex:
        """The value of a rank-0 tensor."""
        if self.rank != 0:
            raise ValueError(f"tensor still has open indices {self.indices}")
        return complex(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(indices={self.indices}, shape={self.data.shape})"


def gate_tensor(matrix: np.ndarray, out_indices: Sequence[str],
                in_indices: Sequence[str]) -> Tensor:
    """Reshape a ``2^k x 2^k`` gate matrix into a rank-2k tensor.

    Axis order is ``(*out_indices, *in_indices)`` with qubit significance
    matching the matrix's big-endian convention: ``matrix[row, col]`` with
    row bits = out indices, col bits = in indices.
    """
    k = len(out_indices)
    if len(in_indices) != k:
        raise ValueError("gate tensors need matching in/out index counts")
    matrix = np.asarray(matrix, dtype=COMPLEX)
    if matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"matrix shape {matrix.shape} incompatible with {k} qubit labels"
        )
    data = matrix.reshape([2] * (2 * k))
    return Tensor(data, list(out_indices) + list(in_indices))


def identity_tensor(out_index: str, in_index: str) -> Tensor:
    """Rank-2 identity wire tensor."""
    return Tensor(np.eye(2, dtype=COMPLEX), [out_index, in_index])


def scalar_tensor(value: complex) -> Tensor:
    """Rank-0 tensor holding a scalar factor."""
    return Tensor(np.asarray(value, dtype=COMPLEX), [])
