"""Contraction-order heuristics.

The quality of a tensor-network contraction is governed by the order in
which indices are eliminated; the optimal order derives from a minimum-width
tree decomposition of the index interaction graph (Markov & Shi, SIAM J.
Comput. 2008) — the approach the paper adopts.  Exact treewidth is NP-hard,
so we provide:

* :func:`sequential_order` — first-occurrence (circuit time) order;
* :func:`min_fill_order` — the classic greedy min-fill elimination
  heuristic, implemented here directly;
* :func:`tree_decomposition_order` — an elimination order extracted from
  networkx's approximate minimum-width tree decomposition.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from .network import TensorNetwork


def sequential_order(network: TensorNetwork) -> List[str]:
    """Indices in first-occurrence (construction/time) order."""
    return network.all_indices()


def interaction_graph(network: TensorNetwork) -> nx.Graph:
    """Index co-occurrence graph of the network (Markov–Shi line graph)."""
    graph = nx.Graph()
    graph.add_nodes_from(network.all_indices())
    for edge in network.line_graph_edges():
        a, b = tuple(edge)
        graph.add_edge(a, b)
    return graph


def _fill_count(adjacency: Dict[str, Set[str]], vertex: str) -> int:
    """Missing edges among ``vertex``'s neighbourhood (its fill-in)."""
    fill = 0
    nbr_list = list(adjacency[vertex])
    for i, a in enumerate(nbr_list):
        fill += sum(1 for b in nbr_list[i + 1:] if b not in adjacency[a])
    return fill


def min_fill_order(network: TensorNetwork) -> List[str]:
    """Greedy min-fill elimination order on the interaction graph.

    At each step, eliminate the vertex whose elimination adds the fewest
    fill-in edges (ties broken by smaller degree, then label for
    determinism), then connect its neighbourhood into a clique.

    Fill counts are maintained *incrementally*: eliminating ``u`` can
    only change the fill of vertices whose neighbourhood (or adjacency
    among its members) changed — ``u``'s neighbours, which lose ``u`` and
    may gain clique edges, and their neighbours, which may see one of the
    new clique edges appear inside their own neighbourhood.  Only that
    2-neighbourhood is recounted per round instead of every remaining
    vertex, turning the quadratic full recount into work proportional to
    the eliminated vertex's locality.  Selection uses the same
    ``(fill, degree, label)`` key as the naive scan and the key is unique
    per vertex, so the output is byte-identical to the reference
    implementation (asserted in the test suite).
    """
    graph = interaction_graph(network)
    adjacency: Dict[str, Set[str]] = {v: set(graph[v]) for v in graph.nodes}
    fill: Dict[str, int] = {v: _fill_count(adjacency, v) for v in adjacency}
    order: List[str] = []
    while adjacency:
        best = min(
            adjacency,
            key=lambda v: (fill[v], len(adjacency[v]), v),
        )
        order.append(best)
        nbrs = adjacency.pop(best)
        del fill[best]
        for a in nbrs:
            adjacency[a].discard(best)
        nbr_list = list(nbrs)
        for i, a in enumerate(nbr_list):
            for b in nbr_list[i + 1:]:
                adjacency[a].add(b)
                adjacency[b].add(a)
        touched: Set[str] = set(nbrs)
        for a in nbrs:
            touched.update(adjacency[a])
        touched &= adjacency.keys()
        for vertex in touched:
            fill[vertex] = _fill_count(adjacency, vertex)
    return order


def tree_decomposition_order(network: TensorNetwork) -> List[str]:
    """Elimination order from networkx's approximate tree decomposition.

    The decomposition is computed with the min-fill-in heuristic; the
    elimination order is recovered by repeatedly peeling a leaf bag and
    eliminating the vertices private to it — the standard way to turn a
    tree decomposition into an elimination order of the same width.
    """
    graph = interaction_graph(network)
    if graph.number_of_nodes() == 0:
        return []
    order: List[str] = []
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component).copy()
        _, tree = nx.approximation.treewidth_min_fill_in(sub)
        order.extend(_elimination_order_from_tree(tree, set(component)))
    return order


def _elimination_order_from_tree(tree: nx.Graph, vertices: Set[str]) -> List[str]:
    order: List[str] = []
    tree = tree.copy()
    eliminated: Set[str] = set()
    while tree.number_of_nodes() > 1:
        leaf = next(bag for bag in tree.nodes if tree.degree(bag) == 1)
        parent = next(iter(tree[leaf]))
        private = [v for v in leaf if v not in parent and v not in eliminated]
        order.extend(sorted(private))
        eliminated.update(private)
        tree.remove_node(leaf)
    if tree.number_of_nodes() == 1:
        last_bag = next(iter(tree.nodes))
        order.extend(sorted(v for v in last_bag if v not in eliminated))
        eliminated.update(last_bag)
    # Isolated vertices may not appear in any bag edge traversal.
    order.extend(sorted(vertices - eliminated))
    return order


ORDER_HEURISTICS = {
    "sequential": sequential_order,
    "min_fill": min_fill_order,
    "tree_decomposition": tree_decomposition_order,
}


def contraction_order(
    network: TensorNetwork, method: str = "tree_decomposition"
) -> List[str]:
    """Dispatch on a named ordering heuristic."""
    try:
        heuristic = ORDER_HEURISTICS[method]
    except KeyError:
        raise ValueError(
            f"unknown ordering method {method!r}; "
            f"choose from {sorted(ORDER_HEURISTICS)}"
        ) from None
    return heuristic(network)
