"""Tensor networks and the dense contraction engine.

A :class:`TensorNetwork` is a bag of :class:`Tensor` objects; shared index
labels are the edges.  Circuit-derived networks have every label appearing
at most twice, which the pairwise contraction engine relies on (and
asserts).  Contraction follows an *index elimination order* produced by
:mod:`repro.tensornet.ordering`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .tensor import Tensor


@dataclass
class ContractionStats:
    """Bookkeeping collected during one network contraction."""

    num_pairwise_contractions: int = 0
    max_intermediate_rank: int = 0
    max_intermediate_size: int = 0
    #: backend-specific peak (TDD backend stores max node count here)
    max_nodes: int = 0
    #: plan-predicted scalar multiply-adds (all slices; see ContractionPlan)
    predicted_cost: int = 0
    #: plan-predicted peak intermediate size per slice
    predicted_peak_size: int = 0
    #: number of index-fixed subplan executions (1 = unsliced)
    slice_count: int = 0
    #: batched einsum sweeps over slice chunks (0 = looped or unsliced)
    batched_slice_calls: int = 0
    extra: dict = field(default_factory=dict)

    def observe(self, tensor: Tensor) -> None:
        """Record an intermediate tensor."""
        self.num_pairwise_contractions += 1
        self.max_intermediate_rank = max(self.max_intermediate_rank, tensor.rank)
        self.max_intermediate_size = max(self.max_intermediate_size, tensor.size)


class TensorNetwork:
    """A multiset of tensors connected by shared index labels."""

    def __init__(self, tensors: Sequence[Tensor] | None = None):
        self.tensors: List[Tensor] = list(tensors or [])

    def add(self, tensor: Tensor) -> "TensorNetwork":
        """Append a tensor; returns self."""
        self.tensors.append(tensor)
        return self

    def all_indices(self) -> List[str]:
        """All labels in first-occurrence order."""
        seen: Dict[str, None] = {}
        for tensor in self.tensors:
            for label in tensor.indices:
                seen.setdefault(label, None)
        return list(seen)

    def index_degree(self) -> Dict[str, int]:
        """How many tensor axes carry each label."""
        degree: Dict[str, int] = {}
        for tensor in self.tensors:
            for label in tensor.indices:
                degree[label] = degree.get(label, 0) + 1
        return degree

    def open_indices(self) -> List[str]:
        """Labels appearing exactly once (the network's free legs)."""
        degree = self.index_degree()
        return [i for i in self.all_indices() if degree[i] == 1]

    def validate(self) -> None:
        """Check the at-most-twice property the engine relies on."""
        for label, deg in self.index_degree().items():
            if deg > 2:
                raise ValueError(
                    f"index {label!r} appears {deg} times; tensor networks "
                    "from circuits must use each label at most twice"
                )

    def copy(self) -> "TensorNetwork":
        """Shallow copy of the tensor list."""
        return TensorNetwork(list(self.tensors))

    def structure_key(self) -> tuple:
        """Hashable fingerprint of the index structure.

        The per-tensor label tuples capture the full connectivity (which
        tensor carries which index, in which axis order).  Contraction
        backends key order/path caches on it, so Algorithm I's
        structurally identical per-term networks plan their contraction
        once while differently-wired networks never share a plan.
        """
        return tuple(tensor.indices for tensor in self.tensors)

    # --- contraction -----------------------------------------------------------

    def contract(
        self,
        order: Optional[Sequence[str]] = None,
        stats: Optional[ContractionStats] = None,
    ) -> Tensor:
        """Contract the whole network densely.

        Parameters
        ----------
        order:
            Index elimination order.  Defaults to first-occurrence order.
            Labels missing from ``order`` are eliminated last, open labels
            are kept.
        stats:
            Optional stats collector.

        Returns
        -------
        Tensor
            The contracted result; rank 0 when the network is closed.
        """
        self.validate()
        stats = stats if stats is not None else ContractionStats()
        work = [t.self_trace() for t in self.tensors]
        order = list(order) if order is not None else []
        remaining = [i for i in self.all_indices() if i not in set(order)]
        full_order = order + remaining

        for label in full_order:
            holders = [t for t in work if label in t.indices]
            if not holders:
                continue
            if len(holders) == 1:
                # Either an open leg (kept) or a self-loop created by an
                # earlier merge (already removed by self_trace).
                continue
            a, b = holders
            work.remove(a)
            work.remove(b)
            merged = a.contract(b).self_trace()
            stats.observe(merged)
            work.append(merged)

        # Outer-product whatever is left (disconnected components/scalars).
        result = work[0]
        for tensor in work[1:]:
            result = result.contract(tensor)
            stats.observe(result)
        return result

    def contract_scalar(
        self,
        order: Optional[Sequence[str]] = None,
        stats: Optional[ContractionStats] = None,
    ) -> complex:
        """Contract a closed network to its scalar value."""
        result = self.contract(order=order, stats=stats)
        return result.scalar()

    def line_graph_edges(self) -> Set[frozenset]:
        """Edges of the index interaction graph (co-occurrence in a tensor).

        This is the graph whose tree decomposition drives the contraction
        order, following Markov–Shi.
        """
        edges: Set[frozenset] = set()
        for tensor in self.tensors:
            labels = list(dict.fromkeys(tensor.indices))
            for i, a in enumerate(labels):
                for b in labels[i + 1:]:
                    edges.add(frozenset((a, b)))
        return edges

    def __len__(self) -> int:
        return len(self.tensors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TensorNetwork({len(self.tensors)} tensors, "
            f"{len(self.all_indices())} indices)"
        )
