"""Circuit → tensor-network conversion and trace closure.

Every instruction becomes one rank-2k tensor; wires are tracked as index
labels ``{prefix}q{j}.{t}`` where ``t`` increments each time an operation
touches qubit ``j``.  :func:`close_trace` implements the paper's Fig. 3:
connect each input to the corresponding output (optionally through a wire
permutation, which is how SWAP elimination re-routes outputs) so that the
contracted scalar equals ``tr(E)`` of the circuit's functionality matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..circuits import QuantumCircuit
from .network import TensorNetwork
from .tensor import Tensor, gate_tensor, identity_tensor


@dataclass
class CircuitNetwork:
    """A circuit's tensor network plus its open wire labels."""

    network: TensorNetwork
    input_labels: List[str]
    output_labels: List[str]


def circuit_to_network(
    circuit: QuantumCircuit, prefix: str = ""
) -> CircuitNetwork:
    """Convert a circuit of matrix-valued instructions to a tensor network.

    All instructions must be :class:`repro.gates.Gate` objects (possibly
    non-unitary, e.g. a selected Kraus operator or a channel's ``M_N``
    matrix rep wrapped as a gate).  Noise channels must be lowered first —
    see :mod:`repro.core.miter`.
    """
    network = TensorNetwork()
    wire_time = [0] * circuit.num_qubits
    labels = [f"{prefix}q{j}.0" for j in range(circuit.num_qubits)]
    input_labels = list(labels)
    for inst in circuit:
        if inst.is_noise:
            raise ValueError(
                "lower noise channels (select Kraus / matrix rep) before "
                "tensor-network conversion"
            )
        out_labels = []
        for q in inst.qubits:
            wire_time[q] += 1
            out_labels.append(f"{prefix}q{q}.{wire_time[q]}")
        in_labels = [labels[q] for q in inst.qubits]
        network.add(gate_tensor(inst.operation.matrix, out_labels, in_labels))
        for q, lab in zip(inst.qubits, out_labels):
            labels[q] = lab
    return CircuitNetwork(network, input_labels, list(labels))


def close_trace(
    cnet: CircuitNetwork, permutation: Optional[Sequence[int]] = None
) -> TensorNetwork:
    """Connect outputs back to inputs, yielding a closed trace network.

    With ``permutation`` (from :func:`repro.circuits.eliminate_final_swaps`)
    the closed value equals ``tr(P C)`` where ``P`` routes wire ``q`` to
    ``permutation[q]`` — i.e. the trace of the original circuit before the
    SWAPs were stripped.
    """
    n = len(cnet.input_labels)
    perm = list(permutation) if permutation is not None else list(range(n))
    if sorted(perm) != list(range(n)):
        raise ValueError(f"{perm} is not a permutation of {list(range(n))}")
    closed = TensorNetwork()
    # Identity tensors on untouched wires keep the bookkeeping uniform and
    # make permutation cycles among empty wires contract to the right
    # power of two.
    patched: List[Tensor] = list(cnet.network.tensors)
    output_labels = list(cnet.output_labels)
    for q in range(n):
        if cnet.input_labels[q] == cnet.output_labels[q]:
            out_label = f"{cnet.input_labels[q]}#out"
            patched.append(identity_tensor(out_label, cnet.input_labels[q]))
            output_labels[q] = out_label
    # tr(P C): identify output of wire q with input of wire perm[q].
    relabel = {output_labels[q]: cnet.input_labels[perm[q]] for q in range(n)}
    for tensor in patched:
        closed.add(tensor.relabel(relabel).self_trace())
    return closed


def connect(
    first: CircuitNetwork, second: CircuitNetwork
) -> CircuitNetwork:
    """Wire ``first``'s outputs into ``second``'s inputs (serial compose)."""
    if len(first.output_labels) != len(second.input_labels):
        raise ValueError("mismatched widths in network composition")
    relabel = dict(zip(second.input_labels, first.output_labels))
    merged = TensorNetwork(list(first.network.tensors))
    for tensor in second.network.tensors:
        merged.add(tensor.relabel(relabel).self_trace())
    new_inputs = list(first.input_labels)
    new_outputs = [relabel.get(lab, lab) for lab in second.output_labels]
    return CircuitNetwork(merged, new_inputs, new_outputs)


def circuit_trace(
    circuit: QuantumCircuit,
    order_method: str = "tree_decomposition",
    stats=None,
) -> complex:
    """Trace of a (matrix-instruction) circuit via network contraction."""
    from .ordering import contraction_order

    closed = close_trace(circuit_to_network(circuit))
    order = contraction_order(closed, order_method)
    return closed.contract_scalar(order=order, stats=stats)
