"""repro — Approximate Equivalence Checking of Noisy Quantum Circuits.

A from-scratch reproduction of Hong, Ying, Feng, Zhou & Li (DAC 2021):
Jamiolkowski-fidelity-based approximate equivalence checking of noisy
quantum circuits via tensor-network contraction on Tensor Decision
Diagrams, with the dense Qiskit-style ``process_fidelity`` baseline.

Quick start
-----------
>>> from repro import qft, insert_random_noise, EquivalenceChecker
>>> ideal = qft(5)
>>> noisy = insert_random_noise(ideal, num_noises=3, seed=7)
>>> result = EquivalenceChecker(epsilon=0.01).check(ideal, noisy)
>>> result.equivalent
True
"""

from .baseline import (
    MemoryLimitExceeded,
    Operator,
    SuperOp,
    average_gate_fidelity,
    process_fidelity,
)
from .circuits import QuantumCircuit
from .core import (
    CheckResult,
    EquivalenceChecker,
    FidelityResult,
    approx_equivalent,
    average_fidelity_from_jamiolkowski,
    fidelity_collective,
    fidelity_individual,
    jamiolkowski_distance,
    jamiolkowski_fidelity,
    jamiolkowski_fidelity_dense,
)
from .gates import Gate
from .library import (
    bernstein_vazirani,
    grover,
    mod_mult_7x15,
    qft,
    quantum_volume,
    randomized_benchmarking,
)
from .noise import (
    KrausChannel,
    NoiseModel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    insert_random_noise,
    pauli_channel,
    phase_damping,
    phase_flip,
)
from .tdd import Tdd, TddManager

__version__ = "0.1.0"

__all__ = [
    "CheckResult",
    "EquivalenceChecker",
    "FidelityResult",
    "Gate",
    "KrausChannel",
    "MemoryLimitExceeded",
    "NoiseModel",
    "Operator",
    "QuantumCircuit",
    "SuperOp",
    "Tdd",
    "TddManager",
    "amplitude_damping",
    "approx_equivalent",
    "average_fidelity_from_jamiolkowski",
    "average_gate_fidelity",
    "bernstein_vazirani",
    "bit_flip",
    "bit_phase_flip",
    "depolarizing",
    "fidelity_collective",
    "fidelity_individual",
    "grover",
    "insert_random_noise",
    "jamiolkowski_distance",
    "jamiolkowski_fidelity",
    "jamiolkowski_fidelity_dense",
    "mod_mult_7x15",
    "pauli_channel",
    "phase_damping",
    "phase_flip",
    "process_fidelity",
    "qft",
    "quantum_volume",
    "randomized_benchmarking",
]
