"""repro — Approximate Equivalence Checking of Noisy Quantum Circuits.

A from-scratch reproduction of Hong, Ying, Feng, Zhou & Li (DAC 2021):
Jamiolkowski-fidelity-based approximate equivalence checking of noisy
quantum circuits via tensor-network contraction, with the dense
Qiskit-style ``process_fidelity`` baseline.

Quick start
-----------
The typed front door — one declarative request in, one versioned
response out (:class:`Engine` owns sessions, the worker pool and the
shared cache):

>>> from repro import CheckRequest, CircuitSpec, Engine, NoiseSpec
>>> engine = Engine()
>>> request = CheckRequest(
...     ideal=CircuitSpec.from_library("qft", num_qubits=5),
...     noise=NoiseSpec(noises=3, seed=7),
...     epsilon=0.01,
... )
>>> engine.check(request).equivalent
True
>>> engine.check(request).to_json()  # doctest: +SKIP
'{"schema_version": "1", "equivalent": true, ...}'

The supported lower layer, for callers already holding circuit
objects — backend state (TDD computed tables, contraction orders,
einsum paths) stays warm across pairs:

>>> from repro import CheckConfig, CheckSession, qft, insert_random_noise
>>> ideal = qft(5)
>>> session = CheckSession(CheckConfig(epsilon=0.01))
>>> pairs = [(ideal, insert_random_noise(ideal, 2, seed=s)) for s in (1, 2)]
>>> [r.verdict for r in session.check_many(pairs)]
['EQUIVALENT', 'EQUIVALENT']

Contraction engines are pluggable: ``CheckConfig(backend="tdd")`` (the
paper's Tensor Decision Diagrams), ``"dense"`` (pairwise tensordot) or
``"einsum"`` (one ``numpy.einsum`` expression with an optimised path);
register your own via :func:`repro.backends.register_backend`.  The
kwargs-style :class:`EquivalenceChecker` front end is deprecated (its
warning names :class:`Engine`) but fully supported — see
``docs/api.md`` for the migration table and the wire-schema reference.
"""

from .api import (
    SCHEMA_VERSION,
    CheckRequest,
    CheckResponse,
    CircuitSpec,
    Engine,
    JobHandle,
    NoiseSpec,
    ReproError,
    Verdict,
)
from .backends import (
    ContractionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .cache import CheckCache
from .baseline import (
    MemoryLimitExceeded,
    Operator,
    SuperOp,
    average_gate_fidelity,
    process_fidelity,
)
from .circuits import QuantumCircuit
from .core import (
    CheckConfig,
    CheckError,
    CheckResult,
    CheckSession,
    EquivalenceChecker,
    FidelityResult,
    approx_equivalent,
    average_fidelity_from_jamiolkowski,
    fidelity_collective,
    fidelity_individual,
    jamiolkowski_distance,
    jamiolkowski_fidelity,
    jamiolkowski_fidelity_dense,
)
from .gates import Gate
from .library import (
    bernstein_vazirani,
    grover,
    mod_mult_7x15,
    qft,
    quantum_volume,
    randomized_benchmarking,
)
from .noise import (
    KrausChannel,
    NoiseModel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    insert_random_noise,
    pauli_channel,
    phase_damping,
    phase_flip,
)
from .tdd import Tdd, TddManager

__version__ = "0.1.0"

__all__ = [
    "SCHEMA_VERSION",
    "CheckCache",
    "CheckConfig",
    "CheckError",
    "CheckRequest",
    "CheckResponse",
    "CheckResult",
    "CheckSession",
    "CircuitSpec",
    "ContractionBackend",
    "Engine",
    "EquivalenceChecker",
    "FidelityResult",
    "Gate",
    "JobHandle",
    "NoiseSpec",
    "ReproError",
    "Verdict",
    "KrausChannel",
    "MemoryLimitExceeded",
    "NoiseModel",
    "Operator",
    "QuantumCircuit",
    "SuperOp",
    "Tdd",
    "TddManager",
    "amplitude_damping",
    "approx_equivalent",
    "available_backends",
    "average_fidelity_from_jamiolkowski",
    "average_gate_fidelity",
    "bernstein_vazirani",
    "bit_flip",
    "bit_phase_flip",
    "depolarizing",
    "fidelity_collective",
    "fidelity_individual",
    "get_backend",
    "grover",
    "insert_random_noise",
    "jamiolkowski_distance",
    "jamiolkowski_fidelity",
    "jamiolkowski_fidelity_dense",
    "mod_mult_7x15",
    "pauli_channel",
    "phase_damping",
    "phase_flip",
    "process_fidelity",
    "qft",
    "quantum_volume",
    "randomized_benchmarking",
    "register_backend",
]
