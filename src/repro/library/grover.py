"""Grover search circuits.

``grover(n)`` searches for a marked computational-basis item among
``2^(n-1)`` entries using ``n - 1`` search qubits and one oracle ancilla,
with the textbook phase-kickback oracle and diffusion operator.  The
multi-controlled NOTs are decomposed down to {h, cx, ccx, cp}, so gate
counts grow quickly — mirroring the paper's 96-gate 3-qubit instance
being its largest-|G| small benchmark.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..circuits import QuantumCircuit


def grover(
    num_qubits: int,
    marked: Optional[int] = None,
    iterations: Optional[int] = None,
) -> QuantumCircuit:
    """Grover search over ``num_qubits - 1`` data qubits plus an ancilla.

    Parameters
    ----------
    marked:
        Index of the marked item (default: the all-ones item).
    iterations:
        Number of Grover iterations; default is the optimal
        ``round(pi/4 * sqrt(N))``.
    """
    if num_qubits < 2:
        raise ValueError("Grover needs at least 2 qubits")
    data = num_qubits - 1
    size = 2**data
    if marked is None:
        marked = size - 1
    if not 0 <= marked < size:
        raise ValueError(f"marked item {marked} out of range for {data} qubits")
    if iterations is None:
        iterations = max(1, int(math.pi / 4 * math.sqrt(size)))
    ancilla = num_qubits - 1

    circuit = QuantumCircuit(num_qubits, f"grover{num_qubits}")
    for q in range(data):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for _ in range(iterations):
        _oracle(circuit, data, ancilla, marked)
        _diffusion(circuit, data)
    return circuit


def _oracle(
    circuit: QuantumCircuit, data: int, ancilla: int, marked: int
) -> None:
    """Phase-kickback oracle flipping the ancilla on the marked item."""
    zeros = [q for q in range(data) if not (marked >> (data - 1 - q)) & 1]
    for q in zeros:
        circuit.x(q)
    multi_controlled_x(circuit, list(range(data)), ancilla)
    for q in zeros:
        circuit.x(q)


def _diffusion(circuit: QuantumCircuit, data: int) -> None:
    """Inversion about the mean on the data qubits."""
    for q in range(data):
        circuit.h(q)
        circuit.x(q)
    if data == 1:
        circuit.z(0)
    else:
        # Multi-controlled Z on the all-ones state via an H-sandwiched MCX.
        circuit.h(data - 1)
        multi_controlled_x(circuit, list(range(data - 1)), data - 1)
        circuit.h(data - 1)
    for q in range(data):
        circuit.x(q)
        circuit.h(q)


def multi_controlled_x(
    circuit: QuantumCircuit, controls: List[int], target: int
) -> None:
    """Append C^k(X) decomposed to {x, cx, ccx, h, cp}.

    Uses ``X^t = H P(pi t) H`` and the standard recursion
    ``C^k(P(a)) = cp(a/2)[c_k,t] . C^{k-1}(X)[..,c_k] . cp(-a/2)[c_k,t]
    . C^{k-1}(X)[..,c_k] . C^{k-1}(P(a/2))[..,t]`` — exact, no ancillae.
    """
    if not controls:
        circuit.x(target)
    elif len(controls) == 1:
        circuit.cx(controls[0], target)
    elif len(controls) == 2:
        circuit.ccx(controls[0], controls[1], target)
    else:
        circuit.h(target)
        multi_controlled_phase(circuit, controls, target, math.pi)
        circuit.h(target)


def multi_controlled_phase(
    circuit: QuantumCircuit, controls: List[int], target: int, angle: float
) -> None:
    """Append C^k(P(angle)) decomposed to {cp, cx, ccx, h}."""
    if not controls:
        circuit.p(angle, target)
        return
    if len(controls) == 1:
        circuit.cp(angle, controls[0], target)
        return
    head, last = controls[:-1], controls[-1]
    circuit.cp(angle / 2, last, target)
    multi_controlled_x(circuit, head, last)
    circuit.cp(-angle / 2, last, target)
    multi_controlled_x(circuit, head, last)
    multi_controlled_phase(circuit, head, target, angle / 2)
