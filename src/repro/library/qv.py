"""Quantum-volume model circuits.

The quantum-volume workload (Moll et al. / Cross et al.) applies ``depth``
layers; each layer permutes the qubits at random, pairs neighbours and
applies an independent Haar-random SU(4) block to every pair.  By default
each block is lowered to the realistic 3-CX + single-qubit-unitary form,
giving dense gate counts comparable to the paper's ``qv_nXdY`` rows.
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from ..gates import unitary_gate
from ..linalg import random_unitary


def quantum_volume(
    num_qubits: int,
    depth: int | None = None,
    seed: int | None = None,
    decompose: bool = True,
) -> QuantumCircuit:
    """A quantum-volume model circuit ``qv_n{num_qubits}d{depth}``.

    Parameters
    ----------
    depth:
        Number of permute-and-entangle layers (defaults to ``num_qubits``,
        the square QV shape).
    seed:
        RNG seed for both the permutations and the random blocks.
    decompose:
        Lower each two-qubit block to 3 CX + 8 random single-qubit
        unitaries (the canonical KAK gate shape); otherwise keep it as a
        single opaque SU(4) gate.
    """
    if num_qubits < 2:
        raise ValueError("quantum volume needs at least 2 qubits")
    depth = depth if depth is not None else num_qubits
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"qv_n{num_qubits}d{depth}")
    for _ in range(depth):
        perm = rng.permutation(num_qubits)
        for i in range(0, num_qubits - 1, 2):
            a, b = int(perm[i]), int(perm[i + 1])
            if decompose:
                _kak_shaped_block(circuit, a, b, rng)
            else:
                circuit.append(
                    unitary_gate(random_unitary(4, rng), "su4"), [a, b]
                )
    return circuit


def _kak_shaped_block(
    circuit: QuantumCircuit, a: int, b: int, rng: np.random.Generator
) -> None:
    """Random two-qubit block in the 3-CX canonical gate shape."""
    for q in (a, b):
        circuit.append(unitary_gate(random_unitary(2, rng), "u2x2"), [q])
    circuit.cx(a, b)
    for q in (a, b):
        circuit.append(unitary_gate(random_unitary(2, rng), "u2x2"), [q])
    circuit.cx(b, a)
    for q in (a, b):
        circuit.append(unitary_gate(random_unitary(2, rng), "u2x2"), [q])
    circuit.cx(a, b)
    for q in (a, b):
        circuit.append(unitary_gate(random_unitary(2, rng), "u2x2"), [q])
