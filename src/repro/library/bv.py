"""Bernstein–Vazirani circuits.

``bernstein_vazirani(n)`` builds the textbook oracle circuit on ``n``
qubits (``n - 1`` data qubits plus one ancilla).  With the default
all-ones secret the gate count is ``3(n-1) + 2``, matching the paper's
benchmark sizes (bv4 → 11 gates, bv5 → 14, bv6 → 17, ...).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuits import QuantumCircuit


def bernstein_vazirani(
    num_qubits: int, secret: Optional[Sequence[int]] = None
) -> QuantumCircuit:
    """The Bernstein–Vazirani circuit for a hidden bit string.

    Parameters
    ----------
    num_qubits:
        Total qubit count including the ancilla (the paper's ``bvN``).
    secret:
        Hidden string over the ``num_qubits - 1`` data qubits; defaults to
        all ones (the hardest oracle, one CX per data qubit).
    """
    if num_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least 2 qubits")
    data = num_qubits - 1
    bits = list(secret) if secret is not None else [1] * data
    if len(bits) != data or any(b not in (0, 1) for b in bits):
        raise ValueError(f"secret must be {data} bits of 0/1")
    ancilla = num_qubits - 1
    circuit = QuantumCircuit(num_qubits, f"bv{num_qubits}")
    for q in range(data):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q in range(data):
        if bits[q]:
            circuit.cx(q, ancilla)
    for q in range(data):
        circuit.h(q)
    return circuit
