"""Quantum Fourier transform circuits.

``qft(n)`` is the textbook construction: a Hadamard plus controlled-phase
ladder per qubit followed by the output-reversing SWAP layer.  Set
``decompose=True`` to lower the controlled phases to {p, cx} and SWAPs to
three CXs, approximating the compiled gate counts of the paper's
benchmark suite.
"""

from __future__ import annotations

import math

from ..circuits import QuantumCircuit


def qft(
    num_qubits: int, with_swaps: bool = True, decompose: bool = False
) -> QuantumCircuit:
    """The ``num_qubits``-qubit quantum Fourier transform.

    Parameters
    ----------
    with_swaps:
        Include the final qubit-reversal SWAP layer (paper Fig. 1 keeps
        it; the SWAP-elimination optimisation strips it during checking).
    decompose:
        Lower cp/swap to the {p, cx} basis.
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, f"qft{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(
            range(target + 1, num_qubits), start=2
        ):
            angle = 2 * math.pi / (2**offset)
            if decompose:
                _decomposed_cp(circuit, angle, control, target)
            else:
                circuit.cp(angle, control, target)
    if with_swaps:
        for q in range(num_qubits // 2):
            partner = num_qubits - 1 - q
            if decompose:
                circuit.cx(q, partner).cx(partner, q).cx(q, partner)
            else:
                circuit.swap(q, partner)
    return circuit


def _decomposed_cp(
    circuit: QuantumCircuit, angle: float, control: int, target: int
) -> None:
    """cp(angle) as p/cx primitives (standard 5-gate identity)."""
    circuit.p(angle / 2, control)
    circuit.cx(control, target)
    circuit.p(-angle / 2, target)
    circuit.cx(control, target)
    circuit.p(angle / 2, target)


def qft_dagger(num_qubits: int, with_swaps: bool = True) -> QuantumCircuit:
    """The inverse QFT (used by arithmetic/phase-estimation workloads)."""
    return qft(num_qubits, with_swaps=with_swaps).inverse()
