"""Modular-multiplication circuit: the paper's ``7x1mod15`` benchmark.

The controlled modular multiplier ``U_7 : |y> -> |7 y mod 15>`` on four
target qubits — the order-finding kernel of Shor's factorisation of 15 —
with one control qubit prepared in ``|+>``.  The multiplier itself is the
textbook permutation network (three SWAPs and four Xs); the controlled
form lowers controlled-SWAPs through CX/CCX, giving 14 gates on 5 qubits,
matching the paper's row.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit


def mod_mult_7x15(controlled: bool = True) -> QuantumCircuit:
    """``7 * y mod 15`` modular multiplication (optionally controlled).

    With ``controlled=True`` (the benchmark form) the circuit has five
    qubits: qubit 0 is the control (prepared with an H), qubits 1-4 hold
    ``y``.  Each controlled-SWAP is lowered to ``cx . ccx . cx``.
    """
    if controlled:
        circuit = QuantumCircuit(5, "7x1mod15")
        circuit.h(0)
        targets = [1, 2, 3, 4]
        # U_7 = (swap q2,q3)(swap q1,q2)(swap q0,q1) then X on all, on the
        # 4 target qubits (big-endian bit order of y).
        for a, b in ((targets[2], targets[3]), (targets[1], targets[2]),
                     (targets[0], targets[1])):
            _controlled_swap(circuit, 0, a, b)
        for q in targets:
            circuit.cx(0, q)
        return circuit
    circuit = QuantumCircuit(4, "u7mod15")
    circuit.swap(2, 3)
    circuit.swap(1, 2)
    circuit.swap(0, 1)
    for q in range(4):
        circuit.x(q)
    return circuit


def _controlled_swap(
    circuit: QuantumCircuit, control: int, a: int, b: int
) -> None:
    """Fredkin via the standard cx-ccx-cx identity."""
    circuit.cx(b, a)
    circuit.ccx(control, a, b)
    circuit.cx(b, a)
