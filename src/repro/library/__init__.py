"""Benchmark circuit generators used in the paper's evaluation."""

from .arithmetic import mod_mult_7x15
from .bv import bernstein_vazirani
from .grover import grover, multi_controlled_phase, multi_controlled_x
from .qft import qft, qft_dagger
from .qv import quantum_volume
from .rb import randomized_benchmarking

__all__ = [
    "bernstein_vazirani",
    "grover",
    "mod_mult_7x15",
    "multi_controlled_phase",
    "multi_controlled_x",
    "qft",
    "qft_dagger",
    "quantum_volume",
    "randomized_benchmarking",
]
