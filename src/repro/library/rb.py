"""Randomised-benchmarking sequences.

A standard RB sequence: a random word of Clifford-generator layers
followed by the single recovery gate that inverts the composition, so the
ideal circuit implements the identity (up to global phase).  The default
2-qubit, length-6 sequence matches the paper's ``rb`` row (7 gates).
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from ..gates import unitary_gate
from ..linalg import dagger

#: One-qubit Clifford-generator names available to a layer.
_ONE_QUBIT = ("h", "s", "sdg", "x", "y", "z")


def randomized_benchmarking(
    num_qubits: int = 2,
    length: int = 6,
    seed: int | None = None,
    two_qubit_prob: float = 0.5,
) -> QuantumCircuit:
    """A random Clifford word of ``length`` gates plus its inverse.

    Each step is either a random one-qubit Clifford generator on a random
    qubit, or (with probability ``two_qubit_prob`` when the register
    allows) a CX on a random ordered pair.  The final instruction is the
    exact inverse of the composition as one opaque ``recovery`` gate, so
    the whole circuit equals the identity.
    """
    if num_qubits < 1:
        raise ValueError("RB needs at least one qubit")
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"rb{num_qubits}_l{length}")
    for _ in range(length):
        use_two = num_qubits >= 2 and rng.random() < two_qubit_prob
        if use_two:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            name = _ONE_QUBIT[int(rng.integers(len(_ONE_QUBIT)))]
            getattr(circuit, name)(int(rng.integers(num_qubits)))
    recovery = dagger(circuit.to_matrix())
    circuit.append(unitary_gate(recovery, "recovery"), list(range(num_qubits)))
    return circuit
