"""Worker-process entry points for the parallel subsystem.

Everything submitted to a :class:`concurrent.futures.ProcessPoolExecutor`
must be picklable and importable by name, so the functions here are plain
module-level callables and their payloads are plain data: a backend
*spec* (the dict :meth:`ContractionBackend.describe` returns), a
:class:`~repro.tensornet.TensorNetwork` (tensors pickle as ndarrays +
label tuples), a :class:`~repro.tensornet.planner.ContractionPlan` and a
chunk of slice assignments — or, for batch-level parallelism, a frozen
:class:`~repro.core.session.CheckConfig` plus one circuit pair.

Workers keep module-global caches (one backend instance per spec, one
:class:`CheckSession` per config) that live for the worker process's
lifetime, so consecutive chunks dispatched to the same worker reuse warm
state — cached contraction plans, a warm TDD manager with populated
computed tables — exactly like a serial session would.

Caching composes with both transports: a backend spec may carry a
``plan_cache`` directory (see
:meth:`~repro.backends.base.ContractionBackend.describe`) and a
:class:`CheckConfig` carries its ``cache``/``cache_dir`` fields, so
every worker re-opens the same disk tier of :mod:`repro.cache` and the
pool warms itself — a plan or verdict computed by one worker is a hash
lookup for all the others.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from .. import trace as _trace
from ..tensornet import ContractionStats, TensorNetwork
from ..tensornet.planner import ContractionPlan

#: Per-worker backend instances, keyed by frozen spec.  Module-global on
#: purpose: the cache *is* the per-worker state reuse.
_WORKER_BACKENDS: Dict[tuple, object] = {}

#: Per-worker CheckSession instances, keyed by their frozen CheckConfig.
_WORKER_SESSIONS: Dict[object, object] = {}

#: Per-worker (network, plan) payloads, keyed by blob digest.  Kept to a
#: single entry: all chunks of one contraction share one payload, and
#: the next contraction replaces it.
_WORKER_PAYLOADS: Dict[str, Tuple[TensorNetwork, ContractionPlan]] = {}


def backend_for_spec(spec: Dict[str, object]):
    """The worker's cached backend instance for a describe()-style spec."""
    from ..backends import get_backend  # deferred: avoid an import cycle

    key = tuple(sorted(spec.items()))
    backend = _WORKER_BACKENDS.get(key)
    if backend is None:
        options = dict(spec)
        name = options.pop("name")
        backend = get_backend(name, **options)
        _WORKER_BACKENDS[key] = backend
    return backend


def run_slice_chunk(
    spec: Dict[str, object],
    network: TensorNetwork,
    plan: ContractionPlan,
    assignments: Sequence[Dict[str, int]],
    trace_spans: bool = False,
) -> Tuple[complex, ContractionStats]:
    """Contract one chunk of slice assignments; return (partial sum, stats).

    The returned stats carry the chunk's *measured* fields (peak nodes /
    intermediate sizes); the caller folds them into its own collector.
    With ``trace_spans`` the chunk records its own span trace (rooted at
    ``slices.worker``) and ships the picklable records back in
    ``stats.extra["trace_spans"]`` for the dispatching executor to fold
    into the parent trace.
    """
    backend = backend_for_spec(spec)
    stats = ContractionStats()
    if not trace_spans:
        value = backend.contract_scalar(
            network, stats=stats, plan=plan, assignments=list(assignments)
        )
        return value, stats
    recorder = _trace.TraceRecorder()
    with _trace.recording(recorder):
        with _trace.span("slices.worker", slices=len(assignments)):
            value = backend.contract_scalar(
                network, stats=stats, plan=plan,
                assignments=list(assignments),
            )
    stats.extra["trace_spans"] = recorder.export_records()
    return value, stats


def run_slice_chunk_blob(
    spec: Dict[str, object],
    digest: str,
    blob: bytes,
    assignments: Sequence[Dict[str, int]],
    trace_spans: bool = False,
) -> Tuple[complex, ContractionStats]:
    """:func:`run_slice_chunk` with a shared pre-pickled payload.

    Every chunk of one contraction carries the same ``(network, plan)``
    payload; the dispatching executor pickles it once and each worker
    unpickles it once (cached by ``digest``) instead of once per chunk.
    """
    payload = _WORKER_PAYLOADS.get(digest)
    if payload is None:
        _WORKER_PAYLOADS.clear()  # one workload at a time: bound memory
        payload = pickle.loads(blob)
        _WORKER_PAYLOADS[digest] = payload
    network, plan = payload
    return run_slice_chunk(
        spec, network, plan, assignments, trace_spans=trace_spans
    )


def session_for_config(config):
    """The worker's cached CheckSession for a frozen CheckConfig."""
    from ..core.session import CheckSession  # deferred: import cycle

    session = _WORKER_SESSIONS.get(config)
    if session is None:
        session = CheckSession(config)
        _WORKER_SESSIONS[config] = session
    return session


def run_check_item(
    config,
    index: int,
    ideal,
    noisy,
    isolate_errors: bool,
    mode: str = "check",
) -> Tuple[int, Optional[object], Optional[Tuple[str, str]]]:
    """Run one equivalence check in a worker process.

    Returns ``(index, CheckResult, None)`` on success and — when
    ``isolate_errors`` — ``(index, None, (error_type, message))`` on
    failure, so one bad item surfaces as a record instead of poisoning
    the whole pool.  Without ``isolate_errors`` the exception propagates
    through the future to the parent.  ``mode`` follows
    :meth:`~repro.core.session.CheckSession.run` ("check"/"fidelity"),
    so request-driven batches can mix both.
    """
    session = session_for_config(config)
    try:
        return index, session.run(ideal, noisy, mode), None
    except Exception as exc:
        if not isolate_errors:
            raise
        return index, None, (type(exc).__name__, str(exc))


def reset_worker_caches() -> None:
    """Drop all per-worker cached state (test hook)."""
    _WORKER_BACKENDS.clear()
    _WORKER_SESSIONS.clear()


def _list_worker_cache_keys() -> Tuple[List[tuple], List[object]]:
    """Snapshot of the worker's cache keys (test/diagnostic hook)."""
    return list(_WORKER_BACKENDS), list(_WORKER_SESSIONS)
