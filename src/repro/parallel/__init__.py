"""The parallel execution subsystem.

Two levels of parallelism, matching the two levels of independent work
the contraction-plan IR exposes:

* **slice-level** — a sliced
  :class:`~repro.tensornet.planner.ContractionPlan` is a sum over
  independent index-fixed subplan executions; a :class:`SliceExecutor`
  (attach one to any backend via the ``executor=`` constructor keyword)
  fans those assignments out to a worker-process pool in amortising
  chunks and sums the partial scalars;
* **batch-level** — a batch of equivalence checks is a set of
  independent whole computations;
  :func:`~repro.parallel.batch.iter_parallel_checks` (behind
  ``CheckSession.check_many(jobs=N)`` and the CLI's ``batch --jobs N``)
  runs each check in a worker pool with deterministic result ordering
  and per-item error isolation.

Both levels transport plain picklable payloads and keep per-worker
state (backend instances, sessions, TDD managers, plan caches) warm in
module-global caches inside each worker process.
"""

from .batch import iter_parallel_checks, iter_parallel_items
from .executors import (
    CHUNKS_PER_JOB,
    ProcessSliceExecutor,
    SerialExecutor,
    SliceExecutor,
    chunk_assignments,
    make_executor,
)

__all__ = [
    "CHUNKS_PER_JOB",
    "ProcessSliceExecutor",
    "SerialExecutor",
    "SliceExecutor",
    "chunk_assignments",
    "iter_parallel_checks",
    "iter_parallel_items",
    "make_executor",
]
