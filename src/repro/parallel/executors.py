"""Slice-level parallel execution: the :class:`SliceExecutor` protocol.

A sliced :class:`~repro.tensornet.planner.ContractionPlan` is a sum over
independent index-fixed subplan executions — embarrassingly parallel
work.  A :class:`SliceExecutor` owns the strategy for running those
assignments: :class:`SerialExecutor` runs them in-process (the reference
implementation), :class:`ProcessSliceExecutor` fans chunks of
assignments out to a worker-process pool and sums the partial scalars.

Backends hold an optional executor (the ``executor=`` constructor
keyword of :class:`~repro.backends.base.ContractionBackend`); whenever a
backend is asked to contract a sliced plan it delegates the slice loop
to its executor.  Dispatch is *chunked* — many small slices travel in
one task — so IPC and pickling overhead amortise over real work, and
each worker keeps its backend instance (plans, TDD manager, computed
tables) warm across chunks.

Determinism: partial sums are reduced in chunk-submission order, so the
result is independent of worker scheduling (floating-point association
differs from the serial loop only at the chunk boundaries, well inside
the 1e-9 agreement bound the test suite enforces).
"""

from __future__ import annotations

import abc
import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from .. import trace as _trace
from ..tensornet import ContractionStats, TensorNetwork
from ..tensornet.planner import ContractionPlan, iter_slice_assignments
from .worker import run_slice_chunk_blob

#: Auto-chunking splits the assignments into this many chunks per worker,
#: so an unlucky mix of fast and slow slices still load-balances.
CHUNKS_PER_JOB = 4


def chunk_assignments(
    assignments: Sequence[Dict[str, int]],
    jobs: int,
    chunk_size: Optional[int] = None,
    align: int = 1,
) -> List[List[Dict[str, int]]]:
    """Split slice assignments into dispatch chunks.

    ``chunk_size`` wins when given; otherwise the chunk size targets
    :data:`CHUNKS_PER_JOB` chunks per worker (at least one assignment
    per chunk).  ``align`` rounds the *auto-sized* chunk up to a whole
    multiple, so chunks dispatched to batching backends carry complete
    batch groups and only the final chunk runs a ragged batch.
    """
    total = len(assignments)
    if align < 1:
        raise ValueError("align must be at least 1")
    if chunk_size is None:
        chunk_size = max(1, -(-total // max(1, jobs * CHUNKS_PER_JOB)))
        if align > 1:
            chunk_size = -(-chunk_size // align) * align
    elif chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    return [
        list(assignments[i:i + chunk_size])
        for i in range(0, total, chunk_size)
    ]


def fold_measured_stats(
    stats: Optional[ContractionStats], chunk: Optional[ContractionStats]
) -> None:
    """Merge a chunk's *measured* fields into the caller's collector.

    Plan-derived predictions (``predicted_cost`` etc.) are recorded once
    by the dispatching backend and deliberately not folded here.
    """
    if stats is None or chunk is None:
        return
    stats.num_pairwise_contractions += chunk.num_pairwise_contractions
    stats.max_intermediate_rank = max(
        stats.max_intermediate_rank, chunk.max_intermediate_rank
    )
    stats.max_intermediate_size = max(
        stats.max_intermediate_size, chunk.max_intermediate_size
    )
    stats.max_nodes = max(stats.max_nodes, chunk.max_nodes)
    stats.batched_slice_calls += chunk.batched_slice_calls


class SliceExecutor(abc.ABC):
    """Strategy for executing a sliced plan's independent assignments."""

    @abc.abstractmethod
    def contract(
        self,
        backend,
        network: TensorNetwork,
        plan: ContractionPlan,
        stats: Optional[ContractionStats] = None,
    ) -> complex:
        """Sum the plan's subplan executions and return the scalar.

        ``backend`` is the dispatching
        :class:`~repro.backends.base.ContractionBackend`; executors call
        back into ``backend.contract_scalar(..., assignments=chunk)``
        (in-process or in a worker), which never re-dispatches.
        """

    def close(self) -> None:
        """Release executor resources (worker pools).  Idempotent."""

    def __enter__(self) -> "SliceExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(SliceExecutor):
    """Run every slice in-process — the reference executor.

    Exists so code can be written against the executor seam and switched
    to process-parallel execution by swapping one object, and so tests
    can pin the decomposed (chunk-summed) code path without any pool.
    """

    def __init__(self, chunk_size: Optional[int] = None):
        self.chunk_size = chunk_size

    def contract(self, backend, network, plan, stats=None):
        assignments = list(iter_slice_assignments(plan))
        if self.chunk_size is None:
            return backend.contract_scalar(
                network, stats=stats, plan=plan, assignments=assignments
            )
        total = 0j
        for chunk in chunk_assignments(assignments, 1, self.chunk_size):
            total += backend.contract_scalar(
                network, stats=stats, plan=plan, assignments=chunk
            )
        return total


class ProcessSliceExecutor(SliceExecutor):
    """Fan slice chunks out to a ``ProcessPoolExecutor``.

    Parameters
    ----------
    jobs:
        Worker-process count (default: ``os.cpu_count()``).
    chunk_size:
        Assignments per dispatched task; ``None`` auto-sizes to
        :data:`CHUNKS_PER_JOB` chunks per worker.  Chunking is what lets
        thousands of *small* slices amortise pickling and IPC.

    The pool is created lazily on first use and reused for the
    executor's lifetime (workers keep backend state warm between
    contractions); call :meth:`close` — or use the executor as a context
    manager — to shut it down.
    """

    def __init__(
        self, jobs: Optional[int] = None, chunk_size: Optional[int] = None
    ):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def contract(self, backend, network, plan, stats=None):
        assignments = list(iter_slice_assignments(plan))
        if len(assignments) < 2 or self.jobs == 1:
            # Nothing to parallelise: skip the pool (and its pickling).
            return backend.contract_scalar(
                network, stats=stats, plan=plan, assignments=assignments
            )
        # Align dispatch chunks to the backend's slice batch (whole batch
        # groups per payload), capped so alignment never starves a worker
        # of its chunk.
        batch = backend.effective_slice_batch(plan)
        align = max(1, min(batch, len(assignments) // self.jobs))
        chunks = chunk_assignments(
            assignments, self.jobs, self.chunk_size, align=align
        )
        spec = backend.describe()
        # Every chunk shares one (network, plan): pickle it once here and
        # let each worker cache its deserialisation by digest, instead of
        # paying the full payload serialisation per chunk.
        blob = pickle.dumps((network, plan), pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha1(blob).hexdigest()
        pool = self._ensure_pool()
        recorder = _trace.current_recorder()
        tracing = recorder is not None
        with _trace.span("slices.dispatch") as dispatch_span:
            dispatch_span.set(chunks=len(chunks), jobs=self.jobs)
            futures = [
                pool.submit(
                    run_slice_chunk_blob, spec, digest, blob, chunk, tracing
                )
                for chunk in chunks
            ]
            total = 0j
            # submission order: deterministic reduce — and the order
            # worker span records fold into the parent trace, exactly
            # like the stats merge below.
            for worker_index, future in enumerate(futures):
                value, chunk_stats = future.result()
                total += value
                fold_measured_stats(stats, chunk_stats)
                if tracing:
                    records = chunk_stats.extra.pop("trace_spans", None)
                    if records:
                        # Worker clocks are not ours: re-anchor each
                        # chunk's spans at the dispatch span's start so
                        # they nest inside the dispatch window.
                        recorder.fold(
                            records,
                            attributes={"worker": worker_index},
                            align_start_ns=dispatch_span.span.start_ns,
                        )
        return total

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessSliceExecutor(jobs={self.jobs}, "
            f"chunk_size={self.chunk_size})"
        )


def make_executor(
    jobs: Optional[int], chunk_size: Optional[int] = None
) -> Optional[SliceExecutor]:
    """Executor for a ``jobs`` knob: None/1 → None (inline), N → process.

    Returning ``None`` for the serial case keeps single-job backends on
    the zero-overhead inline slice loop rather than the decomposed
    executor path.
    """
    if jobs is None or jobs == 1:
        return None
    return ProcessSliceExecutor(jobs=jobs, chunk_size=chunk_size)
