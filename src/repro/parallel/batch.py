"""Batch-level parallelism: many whole checks across a worker pool.

The paper frames equivalence checking of noisy circuits as many
independent computations, and a batch manifest is exactly that: each
``(ideal, noisy)`` pair can run on its own core.  This module is the
driver behind ``CheckSession.check_many(jobs=N)`` and the CLI's
``batch --jobs N``: it submits every pair to a
``ProcessPoolExecutor`` (one :class:`CheckSession` per worker process,
cached in :mod:`repro.parallel.worker`, so backend state stays warm
within each worker) and yields results **in input order** regardless of
completion order — parallel output is byte-comparable with serial
output.

Error isolation: with ``isolate_errors`` a raising check yields a
:class:`~repro.core.stats.CheckError` record carrying the item's index
and the exception, and the remaining items still run; without it the
first failure propagates (after the pool drains) exactly like the
serial path.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Iterable, Iterator, Optional, Tuple, Union

from ..backends import ContractionBackend
from ..core.stats import CheckError, CheckResult
from .worker import run_check_item

BatchOutcome = Union[CheckResult, CheckError]


def _reject_instance_backend(config) -> None:
    if isinstance(config.backend, ContractionBackend):
        raise ValueError(
            "parallel check_many cannot ship a live backend instance to "
            "worker processes; configure the backend by registry name "
            "(e.g. backend='tdd') instead"
        )


def iter_parallel_checks(
    config,
    pairs: Iterable[Tuple[object, object]],
    jobs: int,
    isolate_errors: bool = False,
    pool: Optional[Executor] = None,
) -> Iterator[BatchOutcome]:
    """Run every ``(ideal, noisy)`` pair under ``config`` on ``jobs`` workers.

    Yields one outcome per pair, in input order.  Validation and the
    materialisation of ``pairs`` happen *at call time* (this is a plain
    function returning a generator, not itself a generator), so a bad
    config fails at the call site and later mutation of the input
    iterable cannot change what runs.  With no ``pool`` one is created
    lazily and lives exactly as long as the returned generator; a caller
    supplying its own pool (the :class:`repro.api.Engine` reuses one
    across calls) keeps ownership — it is never shut down here.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    _reject_instance_backend(config)
    items = [
        (config, ideal, noisy, "check") for ideal, noisy in pairs
    ]
    return iter_parallel_items(items, jobs, isolate_errors, pool)


def iter_parallel_items(
    items: Iterable[Tuple[object, object, object, str]],
    jobs: int,
    isolate_errors: bool = False,
    pool: Optional[Executor] = None,
) -> Iterator[BatchOutcome]:
    """Heterogeneous form: one ``(config, ideal, noisy, mode)`` per item.

    Each item carries its own frozen config and run mode (worker
    sessions are cached per config, so mixed-config batches still reuse
    warm state for repeated configs).  The result cache a config may
    enable keys each worker lookup off the item's request fingerprint
    — circuits plus config — so identical items dedup across the pool's
    shared disk tier.
    """
    items = list(items)
    for config, _, _, _ in items:
        _reject_instance_backend(config)
    return _drain_pool(items, jobs, isolate_errors, pool)


def _drain_pool(
    items, jobs: int, isolate_errors: bool, pool: Optional[Executor]
) -> Iterator[BatchOutcome]:
    if not items:
        return
    own_pool = pool is None
    if own_pool:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
    try:
        futures = [
            pool.submit(run_check_item, config, index, ideal, noisy,
                        isolate_errors, mode)
            for index, (config, ideal, noisy, mode) in enumerate(items)
        ]
        # Futures are consumed in submission order, so results stream in
        # input order no matter which worker finishes first.
        for future in futures:
            index, result, error = future.result()
            if error is not None:
                error_type, message = error
                yield CheckError(
                    error=message, error_type=error_type, index=index
                )
            else:
                yield result
    finally:
        if own_pool:
            pool.shutdown()
