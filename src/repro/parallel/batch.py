"""Batch-level parallelism: many whole checks across a worker pool.

The paper frames equivalence checking of noisy circuits as many
independent computations, and a batch manifest is exactly that: each
``(ideal, noisy)`` pair can run on its own core.  This module is the
driver behind ``CheckSession.check_many(jobs=N)`` and the CLI's
``batch --jobs N``: it submits every pair to a
``ProcessPoolExecutor`` (one :class:`CheckSession` per worker process,
cached in :mod:`repro.parallel.worker`, so backend state stays warm
within each worker) and yields results **in input order** regardless of
completion order — parallel output is byte-comparable with serial
output.

Error isolation: with ``isolate_errors`` a raising check yields a
:class:`~repro.core.stats.CheckError` record carrying the item's index
and the exception, and the remaining items still run; without it the
first failure propagates (after the pool drains) exactly like the
serial path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, Tuple, Union

from ..backends import ContractionBackend
from ..core.stats import CheckError, CheckResult
from .worker import run_check_item

BatchOutcome = Union[CheckResult, CheckError]


def iter_parallel_checks(
    config,
    pairs: Iterable[Tuple[object, object]],
    jobs: int,
    isolate_errors: bool = False,
) -> Iterator[BatchOutcome]:
    """Run every ``(ideal, noisy)`` pair under ``config`` on ``jobs`` workers.

    Yields one outcome per pair, in input order.  Validation and the
    materialisation of ``pairs`` happen *at call time* (this is a plain
    function returning a generator, not itself a generator), so a bad
    config fails at the call site and later mutation of the input
    iterable cannot change what runs.  The pool is created lazily and
    lives exactly as long as the returned generator.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if isinstance(config.backend, ContractionBackend):
        raise ValueError(
            "parallel check_many cannot ship a live backend instance to "
            "worker processes; configure the backend by registry name "
            "(e.g. backend='tdd') instead"
        )
    items = list(pairs)
    return _drain_pool(config, items, jobs, isolate_errors)


def _drain_pool(
    config, items, jobs: int, isolate_errors: bool
) -> Iterator[BatchOutcome]:
    if not items:
        return
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = [
            pool.submit(run_check_item, config, index, ideal, noisy,
                        isolate_errors)
            for index, (ideal, noisy) in enumerate(items)
        ]
        # Futures are consumed in submission order, so results stream in
        # input order no matter which worker finishes first.
        for future in futures:
            index, result, error = future.result()
            if error is not None:
                error_type, message = error
                yield CheckError(
                    error=message, error_type=error_type, index=index
                )
            else:
                yield result
