"""Unit tests for the Monte-Carlo trajectory simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import bit_flip, depolarizing, evolve_density
from repro.simulation import TrajectorySimulator, run_trajectory


def noisy_bell():
    circuit = QuantumCircuit(2).h(0)
    circuit.append(depolarizing(0.9), [0])
    circuit.cx(0, 1)
    circuit.append(bit_flip(0.85), [1])
    return circuit


class TestRunTrajectory:
    def test_noiseless_is_deterministic(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        traj = run_trajectory(circuit, rng=np.random.default_rng(0))
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(traj.state, expected)
        assert traj.selections == []
        assert traj.probability == 1.0

    def test_state_normalised(self):
        traj = run_trajectory(noisy_bell(), rng=np.random.default_rng(3))
        assert np.isclose(np.linalg.norm(traj.state), 1.0)

    def test_selections_recorded(self):
        traj = run_trajectory(noisy_bell(), rng=np.random.default_rng(3))
        assert len(traj.selections) == 2
        assert 0.0 < traj.probability <= 1.0

    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1).x(0)
        initial = np.array([0, 1], dtype=complex)
        traj = run_trajectory(circuit, initial=initial,
                              rng=np.random.default_rng(0))
        assert np.allclose(traj.state, [1, 0])

    def test_unnormalised_initial_rejected(self):
        with pytest.raises(ValueError):
            run_trajectory(QuantumCircuit(1), initial=np.array([1.0, 1.0]))


class TestTrajectorySimulator:
    def test_density_matrix_converges(self):
        """Ensemble average matches the exact density-matrix evolution."""
        circuit = noisy_bell()
        exact = evolve_density(circuit)
        approx = TrajectorySimulator(shots=3000, seed=7).density_matrix(
            circuit
        )
        assert np.max(np.abs(approx - exact)) < 0.05

    def test_counts_sum_to_shots(self):
        sim = TrajectorySimulator(shots=200, seed=1)
        counts = sim.sample_counts(noisy_bell())
        assert sum(counts.values()) == 200
        assert all(len(key) == 2 for key in counts)

    def test_bell_counts_correlated(self):
        sim = TrajectorySimulator(shots=500, seed=2)
        counts = sim.sample_counts(QuantumCircuit(2).h(0).cx(0, 1))
        assert set(counts) == {"00", "11"}

    def test_expected_fidelity_tracks_noise(self):
        ideal = QuantumCircuit(2).h(0).cx(0, 1)
        light = QuantumCircuit(2).h(0)
        light.append(depolarizing(0.99), [0])
        light.cx(0, 1)
        heavy = QuantumCircuit(2).h(0)
        heavy.append(depolarizing(0.6), [0])
        heavy.cx(0, 1)
        sim = TrajectorySimulator(shots=400, seed=5)
        f_light = sim.expected_fidelity(light, ideal)
        f_heavy = sim.expected_fidelity(heavy, ideal)
        assert f_light > f_heavy

    def test_fidelity_matches_density_matrix_path(self):
        """E[|<target|psi>|^2] equals <target| rho |target>."""
        ideal = QuantumCircuit(2).h(0).cx(0, 1)
        noisy = noisy_bell()
        target = ideal.statevector()
        rho = evolve_density(noisy)
        exact = float(np.real(np.conjugate(target) @ rho @ target))
        sim = TrajectorySimulator(shots=4000, seed=11)
        estimate = sim.expected_fidelity(noisy, ideal)
        assert abs(estimate - exact) < 0.03

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            TrajectorySimulator(shots=0)
