"""Tests for the array-namespace layer and batched slice execution.

Three concerns, mirroring the layers of :mod:`repro.backends.xp`:

* **truthful availability** — optional namespaces probe without import,
  registry entries for torch/cupy backends always exist, and a missing
  library surfaces as :class:`MissingDependencyError` at construction,
  never as an import error at ``import repro.backends`` time;
* **compiled plans** — subscripts are lowered once per plan digest and
  memoised process-wide (the per-call label remap fix);
* **batched == looped == unsliced** — property tests pin the batched
  kernel to the reference loop and to the unsliced contraction within
  1e-9 on every backend, including ragged final chunks
  (``num_slices % slice_batch != 0``) and the ``slice_batch=1``
  degenerate chunking.
"""

import subprocess
import sys
import types
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.backends import (
    AUTO_SLICE_BATCH_BUDGET,
    DenseBackend,
    MissingDependencyError,
    NumpyEinsumBackend,
    TddBackend,
    TorchEinsumBackend,
    available_backends,
    backend_availability,
    get_backend,
    namespace_available,
    registered_backends,
    resolve_namespace,
)
from repro.backends.xp import _COMPILED_MEMO, compile_plan, compiled_for
from repro.core import fidelity_collective, jamiolkowski_fidelity_dense
from repro.core.session import CheckConfig
from repro.library import qft
from repro.noise import depolarizing, insert_random_noise
from repro.tensornet import Tensor, TensorNetwork, build_plan

TORCH_MISSING = namespace_available("torch")

requires_torch = pytest.mark.skipif(
    TORCH_MISSING is not None, reason=TORCH_MISSING or "torch installed"
)
requires_no_torch = pytest.mark.skipif(
    TORCH_MISSING is None, reason="torch is installed on this host"
)


# --- availability truth -----------------------------------------------------


class TestNamespaceAvailability:
    def test_numpy_always_available(self):
        assert namespace_available("numpy") is None

    def test_unknown_namespace_reports_reason(self):
        reason = namespace_available("tensorflow")
        assert reason is not None and "unknown" in reason

    @pytest.mark.parametrize("name", ["torch", "cupy"])
    def test_probe_matches_find_spec(self, name):
        import importlib.util

        missing = namespace_available(name)
        if importlib.util.find_spec(name) is None:
            assert missing is not None
            assert f"repro[{name}]" in missing
        else:
            assert missing is None

    def test_resolve_unknown_namespace(self):
        with pytest.raises(ValueError):
            resolve_namespace("tensorflow")

    def test_numpy_rejects_accelerator_device(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_namespace("numpy", device="cuda")
        assert "einsum-torch" in str(excinfo.value)

    @requires_no_torch
    def test_missing_namespace_raises_typed_import_error(self):
        with pytest.raises(MissingDependencyError) as excinfo:
            resolve_namespace("torch")
        assert issubclass(MissingDependencyError, ImportError)
        assert "repro[torch]" in str(excinfo.value)


class TestRegistryTruth:
    def test_optional_backends_always_registered(self):
        names = registered_backends()
        assert {"einsum-torch", "einsum-cupy"} <= set(names)

    def test_availability_table_covers_registry(self):
        table = backend_availability()
        assert set(table) == set(registered_backends())
        for name in ("tdd", "dense", "einsum"):
            assert table[name] is None
        assert table["einsum-torch"] == namespace_available("torch")
        assert table["einsum-cupy"] == namespace_available("cupy")

    def test_available_backends_are_instantiable(self):
        for name in available_backends():
            assert get_backend(name).name == name

    @requires_no_torch
    def test_unavailable_backend_fails_at_construction(self):
        # Registered (so the error is the dependency, not the name) but
        # constructing it raises the typed, hint-carrying ImportError.
        assert "einsum-torch" in registered_backends()
        assert "einsum-torch" not in available_backends()
        with pytest.raises(MissingDependencyError):
            get_backend("einsum-torch")

    def test_importing_backends_never_imports_optional_deps(self):
        root = str(Path(repro.__file__).resolve().parents[1])
        code = (
            f"import sys; sys.path.insert(0, {root!r}); "
            "import repro.backends; "
            "assert 'torch' not in sys.modules, 'torch imported eagerly'; "
            "assert 'cupy' not in sys.modules, 'cupy imported eagerly'"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


class TestConfigValidation:
    def test_unavailable_backend_named_in_config_error(self):
        table = backend_availability()
        unavailable = [n for n, why in table.items() if why is not None]
        if not unavailable:
            pytest.skip("every registered backend is available here")
        with pytest.raises(ValueError) as excinfo:
            CheckConfig(backend=unavailable[0])
        assert "unavailable" in str(excinfo.value)

    def test_slice_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckConfig(slice_batch=0)

    def test_cpu_backend_rejects_cuda_device(self):
        with pytest.raises(ValueError) as excinfo:
            CheckConfig(backend="einsum", device="cuda")
        assert "einsum-torch" in str(excinfo.value)


# --- compiled plans ---------------------------------------------------------


def _tiny_sliced_plan():
    rng = np.random.default_rng(7)
    # A triangle of bond-4 edges: merging any pair leaves a rank-2
    # intermediate of 16 elements, so a bound of 4 forces slicing.
    tensors = [
        Tensor(rng.standard_normal((4, 4)), ["a", "b"]),
        Tensor(rng.standard_normal((4, 4)), ["b", "c"]),
        Tensor(rng.standard_normal((4, 4)), ["c", "a"]),
    ]
    network = TensorNetwork(tensors)
    plan = build_plan(network, max_intermediate_size=4)
    assert plan.slices, "fixture must force slicing"
    return network, plan


class TestCompiledPlans:
    def test_batch_label_reserved(self):
        _, plan = _tiny_sliced_plan()
        compiled = compile_plan(plan)
        assert any(compiled.input_batched)
        for cstep in compiled.steps:
            for subs in cstep.subscripts:
                assert 0 not in subs
            lhs, rhs, out = cstep.batched_subscripts
            assert (0 in lhs or 0 in rhs) == cstep.out_batched or (
                not cstep.out_batched
            )
            if cstep.out_batched:
                assert out[0] == 0

    def test_compiled_for_memoises_by_digest(self):
        _, plan = _tiny_sliced_plan()
        _COMPILED_MEMO.pop(plan.digest(), None)
        first = compiled_for(plan)
        assert compiled_for(plan) is first
        assert plan.digest() in _COMPILED_MEMO

    def test_einsum_path_reuses_compiled_plan(self):
        network, plan = _tiny_sliced_plan()
        backend = NumpyEinsumBackend(max_intermediate_size=4)
        value = backend.contract_scalar(network, plan=plan)
        assert compiled_for(plan) is compiled_for(plan)
        ref = DenseBackend().contract_scalar(network)
        assert abs(value - ref) < 1e-9


class TestEffectiveSliceBatch:
    def test_unsliced_plan_never_batches(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        backend = NumpyEinsumBackend()
        from repro.core.miter import algorithm_network

        network = algorithm_network(noisy, ideal, "alg2")
        plan = backend.plan_for(network)
        assert not plan.slices
        assert backend.effective_slice_batch(plan) == 1

    def test_explicit_slice_batch_pins(self):
        _, plan = _tiny_sliced_plan()
        assert NumpyEinsumBackend(slice_batch=5).effective_slice_batch(
            plan
        ) == 5
        assert NumpyEinsumBackend(slice_batch=1).effective_slice_batch(
            plan
        ) == 1

    def test_auto_batch_respects_budget_and_slice_count(self):
        _, plan = _tiny_sliced_plan()
        batch = NumpyEinsumBackend().effective_slice_batch(plan)
        assert 1 <= batch <= plan.num_slices()
        assert batch * plan.peak_size() <= max(
            AUTO_SLICE_BATCH_BUDGET, plan.peak_size()
        )

    def test_non_batching_backend_always_loops(self):
        _, plan = _tiny_sliced_plan()
        assert not TddBackend.supports_batched_slices
        assert TddBackend(slice_batch=64).effective_slice_batch(plan) == 1

    def test_bad_slice_batch_rejected_at_construction(self):
        with pytest.raises(ValueError):
            NumpyEinsumBackend(slice_batch=0)


# --- batched == looped == unsliced ------------------------------------------


@st.composite
def closed_networks(draw):
    """A random closed network: each label lands on exactly two slots."""
    num_tensors = draw(st.integers(min_value=2, max_value=4))
    num_edges = draw(st.integers(min_value=2, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    slots = [[] for _ in range(num_tensors)]
    dims = {}
    for e in range(num_edges):
        label = f"e{e}"
        dims[label] = int(rng.integers(2, 4))
        a, b = rng.integers(0, num_tensors, size=2)
        slots[int(a)].append(label)
        slots[int(b)].append(label)
    tensors = []
    for labels in slots:
        shape = tuple(dims[lab] for lab in labels)
        data = rng.uniform(-1, 1, size=shape) + 1j * rng.uniform(
            -1, 1, size=shape
        )
        tensors.append(Tensor(data, labels))
    return TensorNetwork(tensors)


class TestBatchedAgreesWithLooped:
    """The satellite invariant: batched == looped == unsliced to 1e-9."""

    @settings(max_examples=40, deadline=None)
    @given(
        network=closed_networks(),
        backend_cls=st.sampled_from([DenseBackend, NumpyEinsumBackend]),
        slice_batch=st.sampled_from([1, 2, 3, 7, None]),
        bound=st.sampled_from([2, 4, 16]),
    )
    def test_property(self, network, backend_cls, slice_batch, bound):
        reference = DenseBackend().contract_scalar(network)
        scale = max(1.0, abs(reference))
        looped = backend_cls(
            max_intermediate_size=bound, slice_batch=1
        ).contract_scalar(network)
        under_test = backend_cls(
            max_intermediate_size=bound, slice_batch=slice_batch
        ).contract_scalar(network)
        assert abs(looped - reference) < 1e-9 * scale
        assert abs(under_test - reference) < 1e-9 * scale
        assert abs(under_test - looped) < 1e-9 * scale

    @pytest.mark.parametrize("backend_name", ["tdd", "dense", "einsum"])
    @pytest.mark.parametrize("slice_batch", [1, 3, None])
    def test_circuit_fidelity_all_backends(self, backend_name, slice_batch):
        # 3 is deliberately ragged: the slice counts here are powers of
        # two, so the final chunk is short.  tdd accepts the knob but
        # loops regardless — agreement must hold either way.
        ideal = qft(3)
        noisy = insert_random_noise(
            ideal, 2, channel_factory=lambda: depolarizing(0.98), seed=13
        )
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        backend = get_backend(
            backend_name, max_intermediate_size=8, slice_batch=slice_batch
        )
        result = fidelity_collective(noisy, ideal, backend=backend)
        assert abs(result.fidelity - ref) < 1e-9
        assert result.stats.slice_count > 1
        if backend.supports_batched_slices and slice_batch != 1:
            assert result.stats.batched_slice_calls > 0
        else:
            assert result.stats.batched_slice_calls == 0

    def test_oversized_slice_batch_is_one_chunk(self):
        network, plan = _tiny_sliced_plan()
        ref = DenseBackend().contract_scalar(network)
        value = NumpyEinsumBackend(
            max_intermediate_size=4, slice_batch=10**6
        ).contract_scalar(network)
        assert abs(value - ref) < 1e-9

    def test_stats_keep_per_slice_semantics(self):
        from repro.tensornet import ContractionStats

        network, plan = _tiny_sliced_plan()
        stats = ContractionStats()
        NumpyEinsumBackend(
            max_intermediate_size=4, slice_batch=4
        ).contract_scalar(network, stats=stats)
        assert 0 < stats.max_intermediate_size <= plan.peak_size()
        assert stats.batched_slice_calls >= 1


# --- the torch path ---------------------------------------------------------


def _install_fake_torch(monkeypatch):
    """A numpy-backed stand-in exposing the slice of torch the kernels use."""

    class _Device:
        def __init__(self, spec):
            spec = str(spec)
            if not spec or spec.split(":")[0] not in ("cpu", "cuda"):
                raise RuntimeError(f"Expected cpu or cuda, got {spec}")
            self.type = spec.split(":")[0]
            self._spec = spec

        def __str__(self):
            return self._spec

    fake = types.ModuleType("torch")
    fake.device = _Device
    fake.cuda = types.SimpleNamespace(is_available=lambda: False)
    fake.as_tensor = lambda array, device=None: np.asarray(array)
    fake.einsum = np.einsum
    monkeypatch.setitem(sys.modules, "torch", fake)
    return fake


class TestTorchBackend:
    def test_fake_torch_drives_batched_contraction(self, monkeypatch):
        _install_fake_torch(monkeypatch)
        network, _ = _tiny_sliced_plan()
        ref = DenseBackend().contract_scalar(network)
        backend = TorchEinsumBackend(max_intermediate_size=4, slice_batch=3)
        assert backend.name == "einsum-torch"
        assert backend.resolved_device == "cpu"
        value = backend.contract_scalar(network)
        assert abs(value - ref) < 1e-9

    def test_fake_torch_rejects_unavailable_cuda(self, monkeypatch):
        _install_fake_torch(monkeypatch)
        with pytest.raises(ValueError) as excinfo:
            TorchEinsumBackend(device="cuda")
        assert "CUDA" in str(excinfo.value)

    @requires_torch
    def test_real_torch_agrees_with_numpy(self):
        ideal = qft(3)
        noisy = insert_random_noise(
            ideal, 2, channel_factory=lambda: depolarizing(0.98), seed=13
        )
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        for slice_batch in (1, None):
            backend = get_backend(
                "einsum-torch",
                max_intermediate_size=64,
                slice_batch=slice_batch,
            )
            value = fidelity_collective(noisy, ideal, backend=backend)
            assert abs(value.fidelity - ref) < 1e-9
