"""Unit tests for the contraction-backend protocol and registry."""

import numpy as np
import pytest

from repro.backends import (
    ContractionBackend,
    DenseBackend,
    NumpyEinsumBackend,
    TddBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.core import (
    EquivalenceChecker,
    fidelity_collective,
    fidelity_individual,
    jamiolkowski_fidelity_dense,
)
from repro.library import qft
from repro.noise import depolarizing, insert_random_noise


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert {"tdd", "dense", "einsum"} <= set(names)
        assert names == sorted(names)

    def test_get_backend_instantiates(self):
        backend = get_backend("tdd", order_method="min_fill")
        assert isinstance(backend, TddBackend)
        assert backend.name == "tdd"
        assert backend.order_method == "min_fill"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("sparse-gpu")
        message = str(excinfo.value)
        assert "sparse-gpu" in message
        for name in ("tdd", "dense", "einsum"):
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("tdd", TddBackend)

    def test_register_unregister_roundtrip(self):
        class NullBackend(ContractionBackend):
            name = "null-test"

            def contract_scalar(self, network, stats=None,
                                cacheable_tensor_ids=None):
                return 0.0

        register_backend("null-test", NullBackend)
        try:
            assert "null-test" in available_backends()
            assert isinstance(get_backend("null-test"), NullBackend)
        finally:
            unregister_backend("null-test")
        assert "null-test" not in available_backends()

    def test_resolve_backend_passthrough(self):
        instance = DenseBackend()
        assert resolve_backend(instance) is instance
        assert isinstance(resolve_backend("dense"), DenseBackend)
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_bad_order_method_rejected_at_construction(self):
        with pytest.raises(ValueError):
            DenseBackend(order_method="tree_decompositon")  # typo


class TestCustomBackend:
    def test_custom_backend_drives_the_checker(self):
        calls = []

        class CountingDense(DenseBackend):
            name = "counting-dense"

            def contract_scalar(self, network, stats=None,
                                cacheable_tensor_ids=None):
                calls.append(len(network.tensors))
                return super().contract_scalar(
                    network, stats=stats,
                    cacheable_tensor_ids=cacheable_tensor_ids,
                )

        register_backend("counting-dense", CountingDense)
        try:
            ideal = qft(2)
            noisy = insert_random_noise(ideal, 1, seed=0)
            out = EquivalenceChecker(
                epsilon=0.05, backend="counting-dense"
            ).check(ideal, noisy)
            assert out.equivalent
            assert out.backend == "counting-dense"
            assert out.stats.backend == "counting-dense"
            assert calls, "custom backend was never invoked"
        finally:
            unregister_backend("counting-dense")


class TestCrossBackendAgreement:
    @pytest.fixture
    def pair(self):
        ideal = qft(3)
        noisy = insert_random_noise(
            ideal, 2, channel_factory=lambda: depolarizing(0.98), seed=13
        )
        return ideal, noisy

    @pytest.mark.parametrize("backend", ["tdd", "dense", "einsum"])
    def test_alg2_matches_dense_reference(self, pair, backend):
        ideal, noisy = pair
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        value = fidelity_collective(noisy, ideal, backend=backend).fidelity
        assert np.isclose(value, ref, atol=1e-9), backend

    @pytest.mark.parametrize("backend", ["tdd", "dense", "einsum"])
    def test_alg1_matches_dense_reference(self, pair, backend):
        ideal, noisy = pair
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        value = fidelity_individual(noisy, ideal, backend=backend).fidelity
        assert np.isclose(value, ref, atol=1e-9), backend

    def test_all_three_within_1e9_of_each_other(self, pair):
        ideal, noisy = pair
        values = [
            fidelity_collective(noisy, ideal, backend=b).fidelity
            for b in ("tdd", "dense", "einsum")
        ]
        assert max(values) - min(values) < 1e-9


class TestBackendState:
    def test_tdd_backend_reuses_manager(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 1, seed=0)
        backend = TddBackend()
        fidelity_collective(noisy, ideal, backend=backend)
        first_manager = backend.manager
        assert first_manager is not None
        fidelity_collective(noisy, ideal, backend=backend)
        assert backend.manager is first_manager
        backend.reset()
        assert backend.manager is None

    def test_einsum_backend_caches_plans(self):
        ideal = qft(2)
        noisy = insert_random_noise(ideal, 2, seed=0)
        backend = NumpyEinsumBackend()
        result = fidelity_individual(noisy, ideal, backend=backend)
        # One structure shared by all trace terms -> one cached plan.
        assert result.stats.terms_computed > 1
        assert len(backend._plan_cache) == 1

    def test_einsum_rejects_open_networks(self):
        from repro.tensornet import Tensor, TensorNetwork

        network = TensorNetwork([Tensor(np.eye(2), ["a", "b"])])
        with pytest.raises(ValueError):
            NumpyEinsumBackend().contract_scalar(network)
