"""Unit tests for repro.linalg.states."""

import numpy as np
import pytest

from repro.linalg import (
    basis_state,
    maximally_entangled_state,
    plus_state,
    projector,
    purity,
    random_density_matrix,
    state_fidelity,
    zero_state,
)


class TestBasisStates:
    def test_zero_state(self):
        vec = zero_state(3)
        assert vec[0] == 1 and np.isclose(np.linalg.norm(vec), 1)

    def test_basis_state_index(self):
        vec = basis_state(5, 3)
        assert vec[5] == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            basis_state(8, 3)

    def test_plus_state_uniform(self):
        vec = plus_state(2)
        assert np.allclose(np.abs(vec) ** 2, 0.25)


class TestMaximallyEntangled:
    def test_normalised(self):
        psi = maximally_entangled_state(2)
        assert np.isclose(np.linalg.norm(psi), 1)

    def test_schmidt_structure(self):
        psi = maximally_entangled_state(1)
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(psi, expected)

    def test_reduced_state_maximally_mixed(self):
        n = 2
        d = 2**n
        psi = maximally_entangled_state(n)
        rho = projector(psi).reshape(d, d, d, d)
        reduced = np.einsum("ijkj->ik", rho)
        assert np.allclose(reduced, np.eye(d) / d)


class TestStateFidelity:
    def test_identical_pure(self):
        psi = np.array([1, 1j]) / np.sqrt(2)
        assert np.isclose(state_fidelity(psi, psi), 1.0)

    def test_orthogonal_pure(self):
        assert np.isclose(
            state_fidelity(np.array([1, 0]), np.array([0, 1])), 0.0
        )

    def test_pure_vs_mixed(self):
        psi = np.array([1, 0])
        rho = np.diag([0.5, 0.5])
        assert np.isclose(state_fidelity(psi, rho), 0.5)

    def test_symmetry_mixed(self, rng):
        rho = random_density_matrix(4, rng=rng)
        sigma = random_density_matrix(4, rng=rng)
        f1 = state_fidelity(rho, sigma)
        f2 = state_fidelity(sigma, rho)
        assert np.isclose(f1, f2, atol=1e-8)

    def test_bounds(self, rng):
        for _ in range(5):
            rho = random_density_matrix(4, rng=rng)
            sigma = random_density_matrix(4, rng=rng)
            f = state_fidelity(rho, sigma)
            assert -1e-9 <= f <= 1 + 1e-9


class TestPurity:
    def test_pure(self):
        assert np.isclose(purity(np.array([1, 0])), 1.0)

    def test_maximally_mixed(self):
        assert np.isclose(purity(np.eye(4) / 4), 0.25)
