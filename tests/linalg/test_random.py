"""Unit tests for repro.linalg.random."""

import numpy as np

from repro.linalg import (
    dagger,
    is_density_matrix,
    is_unitary,
    random_density_matrix,
    random_kraus_set,
    random_statevector,
    random_unitary,
)


class TestRandomUnitary:
    def test_is_unitary(self, rng):
        for dim in (2, 4, 8):
            assert is_unitary(random_unitary(dim, rng))

    def test_deterministic_with_seed(self):
        u1 = random_unitary(4, np.random.default_rng(7))
        u2 = random_unitary(4, np.random.default_rng(7))
        assert np.allclose(u1, u2)


class TestRandomState:
    def test_normalised(self, rng):
        vec = random_statevector(8, rng)
        assert np.isclose(np.linalg.norm(vec), 1.0)


class TestRandomDensity:
    def test_valid_density(self, rng):
        rho = random_density_matrix(4, rng=rng)
        assert is_density_matrix(rho, atol=1e-8)

    def test_rank_limits_purity(self, rng):
        rho = random_density_matrix(8, rank=1, rng=rng)
        assert np.isclose(np.real(np.trace(rho @ rho)), 1.0, atol=1e-8)


class TestRandomKraus:
    def test_completeness(self, rng):
        kraus = random_kraus_set(2, 3, rng)
        acc = sum(dagger(k) @ k for k in kraus)
        assert np.allclose(acc, np.eye(2), atol=1e-10)

    def test_number_of_operators(self, rng):
        assert len(random_kraus_set(4, 5, rng)) == 5
