"""Unit tests for repro.linalg.matrices."""

import numpy as np
import pytest

from repro.linalg import (
    allclose_up_to_global_phase,
    as_matrix,
    dagger,
    embed_operator,
    is_density_matrix,
    is_hermitian,
    is_positive_semidefinite,
    is_unitary,
    kron_all,
    num_qubits_of,
    projector,
    trace_distance,
)


class TestAsMatrix:
    def test_accepts_square(self):
        mat = as_matrix([[1, 0], [0, 1]])
        assert mat.shape == (2, 2)
        assert mat.dtype == np.complex128

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            as_matrix([[1, 0, 0], [0, 1, 0]])

    def test_dim_check(self):
        with pytest.raises(ValueError):
            as_matrix(np.eye(2), dim=4)


class TestDagger:
    def test_involution(self):
        mat = np.array([[1, 2j], [3, 4]], dtype=complex)
        assert np.allclose(dagger(dagger(mat)), mat)

    def test_conjugate_transpose(self):
        mat = np.array([[0, 1j], [0, 0]], dtype=complex)
        expected = np.array([[0, 0], [-1j, 0]], dtype=complex)
        assert np.allclose(dagger(mat), expected)


class TestKronAll:
    def test_empty_is_identity(self):
        assert np.allclose(kron_all([]), np.eye(1))

    def test_two_factors(self):
        x = np.array([[0, 1], [1, 0]])
        z = np.diag([1, -1])
        assert np.allclose(kron_all([x, z]), np.kron(x, z))


class TestPredicates:
    def test_unitary(self):
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert is_unitary(h)
        assert not is_unitary(np.array([[1, 0], [0, 2]]))

    def test_hermitian(self):
        assert is_hermitian(np.array([[1, 1j], [-1j, 2]]))
        assert not is_hermitian(np.array([[1, 1j], [1j, 2]]))

    def test_psd(self):
        assert is_positive_semidefinite(np.diag([1, 0]))
        assert not is_positive_semidefinite(np.diag([1, -1]))

    def test_density_matrix(self):
        assert is_density_matrix(np.diag([0.5, 0.5]))
        assert not is_density_matrix(np.diag([0.5, 0.6]))


class TestNumQubits:
    def test_powers_of_two(self):
        assert num_qubits_of(np.eye(8)) == 3

    def test_non_power(self):
        with pytest.raises(ValueError):
            num_qubits_of(np.eye(3))


class TestGlobalPhase:
    def test_equal_up_to_phase(self):
        mat = np.array([[1, 2], [3, 4]], dtype=complex)
        assert allclose_up_to_global_phase(np.exp(0.7j) * mat, mat)

    def test_not_equal(self):
        mat = np.eye(2, dtype=complex)
        assert not allclose_up_to_global_phase(mat, np.diag([1, -1]))

    def test_different_magnitudes(self):
        mat = np.eye(2, dtype=complex)
        assert not allclose_up_to_global_phase(2 * mat, mat)


class TestEmbedOperator:
    def test_single_qubit_on_msb(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        full = embed_operator(x, [0], 2)
        assert np.allclose(full, np.kron(x, np.eye(2)))

    def test_single_qubit_on_lsb(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        full = embed_operator(x, [1], 2)
        assert np.allclose(full, np.kron(np.eye(2), x))

    def test_two_qubit_ordered(self):
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
        assert np.allclose(embed_operator(cx, [0, 1], 2), cx)

    def test_two_qubit_reversed(self):
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
        # CX with control=1, target=0: |a b> -> |a xor b, b>.
        full = embed_operator(cx, [1, 0], 2)
        expected = np.zeros((4, 4))
        for a in range(2):
            for b in range(2):
                src = 2 * a + b
                dst = 2 * (a ^ b) + b
                expected[dst, src] = 1
        assert np.allclose(full, expected)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            embed_operator(np.eye(4), [0, 0], 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            embed_operator(np.eye(2), [5], 2)

    def test_composition_matches_kron(self, rng):
        a = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        lhs = embed_operator(a, [0], 2) @ embed_operator(b, [1], 2)
        assert np.allclose(lhs, np.kron(a, b))


class TestProjectorAndDistance:
    def test_projector(self):
        vec = np.array([1, 1j]) / np.sqrt(2)
        proj = projector(vec)
        assert np.allclose(proj @ proj, proj)
        assert np.isclose(np.trace(proj), 1)

    def test_trace_distance_orthogonal(self):
        rho = np.diag([1.0, 0.0])
        sigma = np.diag([0.0, 1.0])
        assert np.isclose(trace_distance(rho, sigma), 1.0)

    def test_trace_distance_self(self):
        rho = np.diag([0.3, 0.7])
        assert np.isclose(trace_distance(rho, rho), 0.0)
