"""End-to-end checks with multi-qubit noise channels.

The paper's experiments use 1-qubit depolarising noise, but the
algorithms are defined for arbitrary-width channels: Algorithm II's
``M_N`` then spans 2l qubits.  These tests pin that path against the
dense reference.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.core import (
    EquivalenceChecker,
    fidelity_collective,
    fidelity_individual,
    jamiolkowski_fidelity_dense,
)
from repro.linalg import random_kraus_set
from repro.noise import KrausChannel, two_qubit_depolarizing


def ghz(n):
    circuit = QuantumCircuit(n, f"ghz{n}").h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


class TestTwoQubitDepolarizing:
    def test_alg2_matches_dense(self):
        ideal = ghz(3)
        noisy = QuantumCircuit(3).h(0)
        noisy.append(two_qubit_depolarizing(0.98), [0, 1])
        noisy.cx(0, 1).cx(1, 2)
        ref = jamiolkowski_fidelity_dense(noisy, ideal, max_terms=None)
        result = fidelity_collective(noisy, ideal)
        assert np.isclose(result.fidelity, ref, atol=1e-8)

    def test_alg1_matches_dense(self):
        ideal = ghz(2)
        noisy = QuantumCircuit(2).h(0).cx(0, 1)
        noisy.append(two_qubit_depolarizing(0.95), [0, 1])
        ref = jamiolkowski_fidelity_dense(noisy, ideal, max_terms=None)
        result = fidelity_individual(noisy, ideal)
        assert result.stats.terms_total == 16
        assert np.isclose(result.fidelity, ref, atol=1e-8)

    def test_non_adjacent_qubits(self):
        """Channel on non-adjacent qubits (0, 2) exercises embedding."""
        ideal = ghz(3)
        noisy = ghz(3)
        noisy.append(two_qubit_depolarizing(0.97), [0, 2])
        ref = jamiolkowski_fidelity_dense(noisy, ideal, max_terms=None)
        result = fidelity_collective(noisy, ideal)
        assert np.isclose(result.fidelity, ref, atol=1e-8)

    def test_reversed_qubit_order(self):
        ideal = ghz(2)
        noisy = ghz(2)
        noisy.append(two_qubit_depolarizing(0.97), [1, 0])
        ref = jamiolkowski_fidelity_dense(noisy, ideal, max_terms=None)
        result = fidelity_collective(noisy, ideal)
        assert np.isclose(result.fidelity, ref, atol=1e-8)


class TestArbitraryKrausChannels:
    def test_random_two_qubit_channel(self, rng):
        """A Haar-random CPTP channel (not mixed-unitary, 3 Kraus ops)."""
        channel = KrausChannel(random_kraus_set(4, 3, rng), "rand2q")
        ideal = ghz(2)
        noisy = ghz(2)
        noisy.append(channel, [0, 1])
        ref = jamiolkowski_fidelity_dense(noisy, ideal, max_terms=None)
        f1 = fidelity_individual(noisy, ideal).fidelity
        f2 = fidelity_collective(noisy, ideal).fidelity
        assert np.isclose(f1, ref, atol=1e-8)
        assert np.isclose(f2, ref, atol=1e-8)

    def test_mixed_widths_in_one_circuit(self, rng):
        from repro.noise import bit_flip

        ideal = ghz(3)
        noisy = QuantumCircuit(3).h(0)
        noisy.append(bit_flip(0.95), [1])
        noisy.cx(0, 1)
        noisy.append(two_qubit_depolarizing(0.98), [1, 2])
        noisy.cx(1, 2)
        ref = jamiolkowski_fidelity_dense(noisy, ideal, max_terms=None)
        f2 = fidelity_collective(noisy, ideal).fidelity
        f1 = fidelity_individual(noisy, ideal).fidelity
        assert np.isclose(f2, ref, atol=1e-8)
        assert np.isclose(f1, ref, atol=1e-8)

    def test_checker_with_two_qubit_noise(self):
        ideal = ghz(3)
        noisy = ghz(3)
        noisy.append(two_qubit_depolarizing(0.999), [0, 1])
        out = EquivalenceChecker(epsilon=0.01).check(ideal, noisy)
        assert out.equivalent
