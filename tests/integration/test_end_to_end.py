"""Integration tests: whole-pipeline checks across the benchmark suite."""

import numpy as np
import pytest

from repro import (
    EquivalenceChecker,
    NoiseModel,
    approx_equivalent,
    bernstein_vazirani,
    depolarizing,
    fidelity_collective,
    fidelity_individual,
    grover,
    insert_random_noise,
    jamiolkowski_fidelity_dense,
    mod_mult_7x15,
    process_fidelity,
    qft,
    quantum_volume,
    randomized_benchmarking,
)

BENCHMARKS = [
    ("rb2", lambda: randomized_benchmarking(2, 6, seed=0)),
    ("qft2", lambda: qft(2)),
    ("grover3", lambda: grover(3)),
    ("qft3", lambda: qft(3)),
    ("qv_n3d2", lambda: quantum_volume(3, 2, seed=0)),
    ("bv4", lambda: bernstein_vazirani(4)),
    ("7x1mod15", lambda: mod_mult_7x15()),
]


class TestThreeWayAgreement:
    @pytest.mark.parametrize(
        "name,build", BENCHMARKS, ids=[b[0] for b in BENCHMARKS]
    )
    def test_baseline_alg1_alg2_agree(self, name, build):
        ideal = build()
        noisy = insert_random_noise(
            ideal, 2, channel_factory=lambda: depolarizing(0.98), seed=13
        )
        ref = process_fidelity(noisy, ideal)
        f1 = fidelity_individual(noisy, ideal).fidelity
        f2 = fidelity_collective(noisy, ideal).fidelity
        assert np.isclose(f1, ref, atol=1e-7), name
        assert np.isclose(f2, ref, atol=1e-7), name


class TestCheckerScenarios:
    def test_nisq_grade_noise_accepted(self):
        ideal = bernstein_vazirani(6)
        noisy = insert_random_noise(ideal, 10, seed=3)  # p = 0.999
        out = EquivalenceChecker(epsilon=0.05).check(ideal, noisy)
        assert out.equivalent and out.algorithm == "alg2"

    def test_wrong_circuit_rejected(self):
        ideal = qft(3)
        wrong = qft(3).x(0)  # extra X: different unitary
        out = EquivalenceChecker(epsilon=0.1, algorithm="alg2").check(
            ideal, wrong
        )
        assert not out.equivalent

    def test_noise_model_pipeline(self):
        ideal = qft(3)
        model = NoiseModel().add_all_qubit_quantum_error(
            depolarizing(0.999), ["h", "cp", "swap"]
        )
        noisy = model.apply(ideal)
        assert noisy.num_noise_sites > 5
        out = EquivalenceChecker(epsilon=0.05).check(ideal, noisy)
        assert out.equivalent

    def test_epsilon_threshold_sharp(self):
        """F_J = p^2 exactly for the paper circuit; epsilon brackets it."""
        from tests.conftest import make_noisy_qft2

        ideal = qft(2)
        noisy = make_noisy_qft2(0.9)  # F_J = 0.81
        assert approx_equivalent(ideal, noisy, epsilon=0.20, algorithm="alg2")
        assert not approx_equivalent(
            ideal, noisy, epsilon=0.18, algorithm="alg2"
        )

    def test_identity_rb_fidelity(self):
        """RB circuits implement the identity; noiseless fidelity is 1."""
        circuit = randomized_benchmarking(2, 8, seed=1)
        result = fidelity_collective(circuit, circuit)
        assert np.isclose(result.fidelity, 1.0, atol=1e-8)


class TestScalability:
    def test_alg2_beyond_baseline_reach(self):
        """9 qubits: far past the dense baseline's 8 GB wall."""
        ideal = bernstein_vazirani(9)
        noisy = insert_random_noise(ideal, 6, seed=2)
        result = fidelity_collective(noisy, ideal)
        assert 0.9 < result.fidelity < 1.0

    def test_alg1_early_stop_large_circuit(self):
        ideal = bernstein_vazirani(9)
        noisy = insert_random_noise(ideal, 6, seed=2)
        result = fidelity_individual(noisy, ideal, epsilon=0.05)
        assert result.stats.early_stopped
        assert result.stats.terms_computed < result.stats.terms_total

    def test_wide_shallow_circuit(self):
        ideal = bernstein_vazirani(13)
        noisy = insert_random_noise(ideal, 4, seed=6)
        result = fidelity_collective(noisy, ideal)
        expected = jamiolkowski_like_bound(4)
        assert result.fidelity > expected

    def test_agreement_at_moderate_size(self):
        ideal = qft(5)
        noisy = insert_random_noise(ideal, 3, seed=9)
        f2 = fidelity_collective(noisy, ideal).fidelity
        ref = jamiolkowski_fidelity_dense(noisy, ideal)
        assert np.isclose(f2, ref, atol=1e-8)


def jamiolkowski_like_bound(k, p=0.999):
    """Crude lower bound: k depolarising sites lose at most ~2k(1-p)."""
    return 1 - 3 * k * (1 - p)
