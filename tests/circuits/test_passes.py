"""Unit tests for the optimisation passes (Sec. IV-C)."""

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    cancel_adjacent_gates,
    eliminate_final_swaps,
    permutation_matrix,
)
from repro.linalg import allclose_up_to_global_phase
from repro.noise import bit_flip


class TestCancelAdjacentGates:
    def test_hh_cancels(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_ssdg_cancels(self):
        circuit = QuantumCircuit(1).s(0).sdg(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_cxcx_cancels(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_cx_different_direction_kept(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_gates(circuit)) == 2

    def test_cascading_cancellation(self):
        # h x x h collapses completely once the inner pair goes.
        circuit = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_interposed_gate_blocks(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_noise_blocks_cancellation(self):
        circuit = QuantumCircuit(1).h(0)
        circuit.append(bit_flip(0.9), [0])
        circuit.h(0)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_functionality_preserved(self):
        circuit = (
            QuantumCircuit(2).h(0).h(0).cx(0, 1).t(1).tdg(1).cx(0, 1).s(0)
        )
        optimised = cancel_adjacent_gates(circuit)
        assert np.allclose(optimised.to_matrix(), circuit.to_matrix())
        assert len(optimised) < len(circuit)

    def test_partial_shared_wire_not_cancelled(self):
        # cx(0,1) and cx(0,2): share wire 0 only; must not merge.
        circuit = QuantumCircuit(3).cx(0, 1).cx(0, 2)
        assert len(cancel_adjacent_gates(circuit)) == 2


class TestRotationMerging:
    @pytest.mark.parametrize("gate", ["rx", "ry", "rz", "p"])
    def test_adjacent_rotations_merge_to_summed_angle(self, gate):
        circuit = QuantumCircuit(1)
        getattr(circuit, gate)(0.3, 0)
        getattr(circuit, gate)(0.4, 0)
        merged = cancel_adjacent_gates(circuit)
        assert len(merged) == 1
        assert merged[0].name == gate
        assert merged[0].operation.params == pytest.approx((0.7,))
        assert np.allclose(merged.to_matrix(), circuit.to_matrix())

    @pytest.mark.parametrize("gate", ["rx", "ry", "rz"])
    def test_merged_angle_zero_mod_4pi_drops_both(self, gate):
        circuit = QuantumCircuit(1)
        getattr(circuit, gate)(np.pi, 0)
        getattr(circuit, gate)(3 * np.pi, 0)  # sum 4π ≡ identity
        assert len(cancel_adjacent_gates(circuit)) == 0

    @pytest.mark.parametrize("gate", ["rx", "ry", "rz"])
    def test_merged_angle_2pi_is_minus_identity_and_kept(self, gate):
        # rotations have period 4π: a 2π sum is -I, a global phase the
        # strict pass must preserve — one merged gate, not zero gates.
        circuit = QuantumCircuit(1)
        getattr(circuit, gate)(np.pi, 0)
        getattr(circuit, gate)(np.pi, 0)
        merged = cancel_adjacent_gates(circuit)
        assert len(merged) == 1
        assert np.allclose(merged.to_matrix(), circuit.to_matrix())

    def test_p_gate_period_is_2pi(self):
        circuit = QuantumCircuit(1).p(np.pi / 2, 0).p(3 * np.pi / 2, 0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_rotation_chain_collapses_over_rounds(self):
        circuit = (
            QuantumCircuit(1).rz(0.1, 0).rz(0.2, 0).rz(0.3, 0).rz(0.4, 0)
        )
        merged = cancel_adjacent_gates(circuit)
        assert len(merged) == 1
        assert merged[0].operation.params == pytest.approx((1.0,))

    def test_merge_then_cancel_with_neighbour(self):
        # rz(0.2) rz(0.3) rz(-0.5): merging enables full cancellation.
        circuit = QuantumCircuit(1).rz(0.2, 0).rz(0.3, 0).rz(-0.5, 0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_different_axes_do_not_merge(self):
        circuit = QuantumCircuit(1).rx(0.3, 0).rz(0.4, 0)
        assert len(cancel_adjacent_gates(circuit)) == 2

    def test_different_wires_do_not_merge(self):
        circuit = QuantumCircuit(2).rz(0.3, 0).rz(0.4, 1)
        assert len(cancel_adjacent_gates(circuit)) == 2

    def test_noise_blocks_merging(self):
        circuit = QuantumCircuit(1).rz(0.3, 0)
        circuit.append(bit_flip(0.9), [0])
        circuit.rz(0.4, 0)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_interposed_gate_blocks_merging(self):
        circuit = QuantumCircuit(1).rz(0.3, 0).h(0).rz(0.4, 0)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_daggered_rotation_names_are_not_merged_by_params(self):
        # rz_dg keeps params=(θ,) but its matrix is rz(-θ): merging by
        # name+params would be wrong, so derived names are excluded —
        # the inverse pair still cancels through the matrix-product rule.
        from repro.gates.standard import rz_gate

        circuit = QuantumCircuit(1)
        circuit.append(rz_gate(0.3).dagger(), [0])
        circuit.append(rz_gate(0.3).dagger(), [0])
        merged = cancel_adjacent_gates(circuit)
        assert len(merged) == 2  # left untouched, not fused to rz(0.6)
        assert np.allclose(merged.to_matrix(), circuit.to_matrix())

    def test_impostor_rotation_names_are_never_rewritten(self):
        # A custom Gate may *call* itself "rz" with any matrix and any
        # params; merging must trust the matrices, not the label.
        from repro.gates import Gate

        impostor = Gate("rz", np.diag([1.0, 1.0j]), (0.3,))  # really S
        circuit = QuantumCircuit(1)
        circuit.append(impostor, [0])
        circuit.append(impostor, [0])
        merged = cancel_adjacent_gates(circuit)
        assert np.allclose(merged.to_matrix(), circuit.to_matrix())
        assert len(merged) == 2  # not fused to rz(0.6)

    def test_functionality_preserved_on_mixed_circuit(self):
        circuit = (
            QuantumCircuit(2)
            .rz(0.2, 0).rz(0.3, 0)
            .cx(0, 1)
            .rx(1.0, 1).rx(-1.0, 1)
            .ry(0.5, 0).ry(0.6, 0)
        )
        merged = cancel_adjacent_gates(circuit)
        assert np.allclose(merged.to_matrix(), circuit.to_matrix())
        assert len(merged) == 3  # rz(0.5), cx, ry(1.1)


class TestEliminateFinalSwaps:
    def test_single_trailing_swap(self):
        circuit = QuantumCircuit(2).h(0).swap(0, 1)
        stripped, perm = eliminate_final_swaps(circuit)
        assert len(stripped) == 1
        assert perm == [1, 0]

    def test_swap_chain(self):
        circuit = QuantumCircuit(3).swap(0, 1).swap(1, 2)
        stripped, perm = eliminate_final_swaps(circuit)
        assert len(stripped) == 0
        # wire0 -> 1 by first swap; then wire1(now carrying q0) -> 2.
        mat = permutation_matrix(perm)
        assert np.allclose(mat, circuit.to_matrix())

    def test_non_trailing_swap_kept(self):
        circuit = QuantumCircuit(2).swap(0, 1).h(0)
        stripped, perm = eliminate_final_swaps(circuit)
        assert len(stripped) == 2
        assert perm == [0, 1]

    def test_reconstruction_identity(self):
        # P @ stripped == original for a QFT-style ending.
        circuit = QuantumCircuit(3).h(0).cp(0.7, 1, 0).h(1).swap(0, 2)
        stripped, perm = eliminate_final_swaps(circuit)
        recon = permutation_matrix(perm) @ stripped.to_matrix()
        assert np.allclose(recon, circuit.to_matrix())


class TestPermutationMatrix:
    def test_identity(self):
        assert np.allclose(permutation_matrix([0, 1]), np.eye(4))

    def test_swap(self):
        swap = QuantumCircuit(2).swap(0, 1).to_matrix()
        assert np.allclose(permutation_matrix([1, 0]), swap)

    def test_three_cycle(self):
        perm = [1, 2, 0]
        mat = permutation_matrix(perm)
        assert np.allclose(mat @ mat.conj().T, np.eye(8))
        cubed = np.linalg.matrix_power(mat, 3)
        assert np.allclose(cubed, np.eye(8))
