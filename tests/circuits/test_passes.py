"""Unit tests for the optimisation passes (Sec. IV-C)."""

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    cancel_adjacent_gates,
    eliminate_final_swaps,
    permutation_matrix,
)
from repro.linalg import allclose_up_to_global_phase
from repro.noise import bit_flip


class TestCancelAdjacentGates:
    def test_hh_cancels(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_ssdg_cancels(self):
        circuit = QuantumCircuit(1).s(0).sdg(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_cxcx_cancels(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_cx_different_direction_kept(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_gates(circuit)) == 2

    def test_cascading_cancellation(self):
        # h x x h collapses completely once the inner pair goes.
        circuit = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_interposed_gate_blocks(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_noise_blocks_cancellation(self):
        circuit = QuantumCircuit(1).h(0)
        circuit.append(bit_flip(0.9), [0])
        circuit.h(0)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_functionality_preserved(self):
        circuit = (
            QuantumCircuit(2).h(0).h(0).cx(0, 1).t(1).tdg(1).cx(0, 1).s(0)
        )
        optimised = cancel_adjacent_gates(circuit)
        assert np.allclose(optimised.to_matrix(), circuit.to_matrix())
        assert len(optimised) < len(circuit)

    def test_partial_shared_wire_not_cancelled(self):
        # cx(0,1) and cx(0,2): share wire 0 only; must not merge.
        circuit = QuantumCircuit(3).cx(0, 1).cx(0, 2)
        assert len(cancel_adjacent_gates(circuit)) == 2


class TestEliminateFinalSwaps:
    def test_single_trailing_swap(self):
        circuit = QuantumCircuit(2).h(0).swap(0, 1)
        stripped, perm = eliminate_final_swaps(circuit)
        assert len(stripped) == 1
        assert perm == [1, 0]

    def test_swap_chain(self):
        circuit = QuantumCircuit(3).swap(0, 1).swap(1, 2)
        stripped, perm = eliminate_final_swaps(circuit)
        assert len(stripped) == 0
        # wire0 -> 1 by first swap; then wire1(now carrying q0) -> 2.
        mat = permutation_matrix(perm)
        assert np.allclose(mat, circuit.to_matrix())

    def test_non_trailing_swap_kept(self):
        circuit = QuantumCircuit(2).swap(0, 1).h(0)
        stripped, perm = eliminate_final_swaps(circuit)
        assert len(stripped) == 2
        assert perm == [0, 1]

    def test_reconstruction_identity(self):
        # P @ stripped == original for a QFT-style ending.
        circuit = QuantumCircuit(3).h(0).cp(0.7, 1, 0).h(1).swap(0, 2)
        stripped, perm = eliminate_final_swaps(circuit)
        recon = permutation_matrix(perm) @ stripped.to_matrix()
        assert np.allclose(recon, circuit.to_matrix())


class TestPermutationMatrix:
    def test_identity(self):
        assert np.allclose(permutation_matrix([0, 1]), np.eye(4))

    def test_swap(self):
        swap = QuantumCircuit(2).swap(0, 1).to_matrix()
        assert np.allclose(permutation_matrix([1, 0]), swap)

    def test_three_cycle(self):
        perm = [1, 2, 0]
        mat = permutation_matrix(perm)
        assert np.allclose(mat @ mat.conj().T, np.eye(8))
        cubed = np.linalg.matrix_power(mat, 3)
        assert np.allclose(cubed, np.eye(8))
