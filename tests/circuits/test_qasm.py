"""Unit tests for the OpenQASM 2 reader/writer."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, qasm
from repro.noise import bit_flip

SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
cp(-pi/2) q[1],q[2];
swap q[0],q[2];
"""


class TestLoads:
    def test_round_structure(self):
        circuit = qasm.loads(SAMPLE)
        assert circuit.num_qubits == 3
        assert [inst.name for inst in circuit] == [
            "h", "cx", "rz", "cp", "swap",
        ]

    def test_parameters_evaluated(self):
        circuit = qasm.loads(SAMPLE)
        assert np.isclose(circuit[2].operation.params[0], math.pi / 4)
        assert np.isclose(circuit[3].operation.params[0], -math.pi / 2)

    def test_comments_ignored(self):
        src = "OPENQASM 2.0; // header\nqreg q[1];\nh q[0]; // gate\n"
        assert len(qasm.loads(src)) == 1

    def test_missing_header(self):
        with pytest.raises(ValueError):
            qasm.loads("qreg q[2]; h q[0];")

    def test_missing_qreg(self):
        with pytest.raises(ValueError):
            qasm.loads("OPENQASM 2.0; h q[0];")

    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            qasm.loads("OPENQASM 2.0; qreg q[1]; frobnicate q[0];")

    def test_u3_alias(self):
        circuit = qasm.loads(
            "OPENQASM 2.0; qreg q[1]; u3(pi/2,0,pi) q[0];"
        )
        assert circuit[0].name == "u"

    def test_param_expression_arithmetic(self):
        circuit = qasm.loads(
            "OPENQASM 2.0; qreg q[1]; rz(2*pi/8 + 0.5) q[0];"
        )
        assert np.isclose(
            circuit[0].operation.params[0], 2 * math.pi / 8 + 0.5
        )

    def test_rejects_malicious_expression(self):
        with pytest.raises(ValueError):
            qasm.loads(
                "OPENQASM 2.0; qreg q[1]; rz(__import__('os')) q[0];"
            )


class TestDumps:
    def test_roundtrip_semantics(self):
        circuit = qasm.loads(SAMPLE)
        again = qasm.loads(qasm.dumps(circuit))
        assert np.allclose(circuit.to_matrix(), again.to_matrix())

    def test_noise_not_serialisable(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        with pytest.raises(ValueError):
            qasm.dumps(circuit)

    def test_file_round_trip(self, tmp_path):
        circuit = qasm.loads(SAMPLE)
        path = tmp_path / "c.qasm"
        qasm.dump(circuit, path)
        again = qasm.load(path)
        assert np.allclose(circuit.to_matrix(), again.to_matrix())
