"""Unit tests for the circuit DAG view."""

from repro.circuits import CircuitDag, QuantumCircuit
from repro.noise import bit_flip


class TestWireFollowing:
    def test_predecessors_and_successors(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        dag = CircuitDag(circuit)
        assert dag.nodes[0].predecessors == {0: None}
        assert dag.nodes[1].predecessors == {0: 0, 1: None}
        assert dag.nodes[0].successors == {0: 1}
        assert dag.nodes[1].successors[1] == 2

    def test_last_on_wire(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        dag = CircuitDag(circuit)
        assert dag.last_on_wire == {0: 1, 1: 2}


class TestAdjacentPairs:
    def test_same_qubits_pair(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        assert CircuitDag(circuit).adjacent_pairs() == [(0, 1)]

    def test_different_qubit_order_not_paired(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        assert CircuitDag(circuit).adjacent_pairs() == []

    def test_interposed_blocks_pairing(self):
        circuit = QuantumCircuit(2).cx(0, 1).h(0).cx(0, 1)
        assert CircuitDag(circuit).adjacent_pairs() == []

    def test_noise_counts_as_instruction(self):
        circuit = QuantumCircuit(1).h(0)
        circuit.append(bit_flip(0.9), [0])
        circuit.h(0)
        assert CircuitDag(circuit).adjacent_pairs() == [(1, 2)] or \
            CircuitDag(circuit).adjacent_pairs() == [(0, 1), (1, 2)]


class TestLayers:
    def test_parallel_gates_same_layer(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        layers = CircuitDag(circuit).topological_layers()
        assert layers == [[0, 1], [2]]

    def test_serial_chain(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        layers = CircuitDag(circuit).topological_layers()
        assert layers == [[0], [1], [2]]
