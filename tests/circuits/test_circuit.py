"""Unit tests for the QuantumCircuit IR."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.gates import h_gate
from repro.linalg import allclose_up_to_global_phase
from repro.noise import bit_flip, depolarizing


class TestConstruction:
    def test_needs_positive_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_append_out_of_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.h(2)

    def test_chaining(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert len(circuit) == 2

    def test_duplicate_qubits_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.cx(0, 0)

    def test_arity_mismatch_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.append(h_gate(), [0, 1])


class TestInspection:
    def test_counts(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        circuit.append(bit_flip(0.9), [0])
        assert circuit.num_gates == 3
        assert circuit.num_noise_sites == 1
        assert not circuit.is_unitary_circuit
        assert circuit.count_ops() == {"h": 2, "cx": 1, "bit_flip": 1}

    def test_num_kraus_terms(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        circuit.append(depolarizing(0.9), [0])
        assert circuit.num_kraus_terms == 8

    def test_depth(self):
        circuit = QuantumCircuit(3).h(0).h(1).cx(0, 1).h(2)
        assert circuit.depth() == 2

    def test_depth_empty(self):
        assert QuantumCircuit(2).depth() == 0


class TestDenseSemantics:
    def test_bell_state(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        vec = circuit.statevector()
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(vec, expected)

    def test_matrix_composition_order(self):
        # X then H on one qubit: matrix must be H @ X.
        circuit = QuantumCircuit(1).x(0).h(0)
        h = h_gate().matrix
        x = np.array([[0, 1], [1, 0]])
        assert np.allclose(circuit.to_matrix(), h @ x)

    def test_noisy_circuit_has_no_matrix(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        with pytest.raises(ValueError):
            circuit.to_matrix()


class TestTransforms:
    def test_inverse(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).s(1)
        product = circuit.inverse().to_matrix() @ circuit.to_matrix()
        assert np.allclose(product, np.eye(4))

    def test_inverse_rejects_noise(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        with pytest.raises(ValueError):
            circuit.inverse()

    def test_conjugate(self):
        circuit = QuantumCircuit(1).s(0)
        assert np.allclose(
            circuit.conjugate().to_matrix(), np.conjugate(circuit.to_matrix())
        )

    def test_compose(self):
        a = QuantumCircuit(1).h(0)
        b = QuantumCircuit(1).s(0)
        composed = a.compose(b)
        assert np.allclose(
            composed.to_matrix(), b.to_matrix() @ a.to_matrix()
        )

    def test_compose_width_mismatch(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).compose(QuantumCircuit(2))

    def test_power(self):
        s = QuantumCircuit(1).s(0)
        assert np.allclose(s.power(2).to_matrix(), np.diag([1, -1]))
        assert np.allclose(s.power(-1).to_matrix(), np.diag([1, -1j]))

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        swapped = circuit.remap_qubits([1, 0])
        assert swapped[0].qubits == (1, 0)

    def test_remap_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).remap_qubits([0, 0])

    def test_without_noise(self):
        circuit = QuantumCircuit(1).h(0)
        circuit.append(bit_flip(0.9), [0])
        circuit.x(0)
        ideal = circuit.without_noise()
        assert ideal.is_unitary_circuit and ideal.num_gates == 2

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(1).h(0)
        clone = circuit.copy()
        clone.x(0)
        assert len(circuit) == 1 and len(clone) == 2


class TestStatevectorInitial:
    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1).x(0)
        out = circuit.statevector(np.array([0, 1]))
        assert np.allclose(out, [1, 0])


class TestGateConvenienceMethods:
    def test_every_single_qubit_method(self):
        circuit = QuantumCircuit(1)
        for method in ("i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"):
            getattr(circuit, method)(0)
        for method in ("rx", "ry", "rz", "p"):
            getattr(circuit, method)(0.1, 0)
        circuit.u(0.1, 0.2, 0.3, 0)
        assert circuit.num_gates == 15
        # The full composition is still unitary.
        mat = circuit.to_matrix()
        assert np.allclose(mat @ mat.conj().T, np.eye(2))

    def test_multi_qubit_methods(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cz(1, 2).cp(0.3, 0, 2).cs(0, 1).swap(1, 2)
        circuit.ccx(0, 1, 2).cswap(0, 1, 2)
        assert circuit.num_gates == 7

    def test_unitary_method(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(np.eye(4), [0, 1], name="custom")
        assert circuit[0].name == "custom"
