"""Unit tests for the text circuit drawer."""

from repro.circuits import QuantumCircuit, draw
from repro.noise import bit_flip, two_qubit_depolarizing


class TestDraw:
    def test_single_qubit_gates(self):
        art = draw(QuantumCircuit(1).h(0).t(0))
        assert art.startswith("q0: ")
        assert "[h]" in art and "[t]" in art

    def test_rows_equal_width(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 2).t(1).swap(1, 2)
        lines = draw(circuit).splitlines()
        assert len(lines) == 3
        assert len({len(line) for line in lines}) == 1

    def test_control_and_target_symbols(self):
        art = draw(QuantumCircuit(2).cx(0, 1))
        lines = art.splitlines()
        assert "●" in lines[0]
        assert "X" in lines[1]

    def test_vertical_connector(self):
        art = draw(QuantumCircuit(3).cx(0, 2))
        lines = art.splitlines()
        assert "│" in lines[1]

    def test_noise_marked(self):
        circuit = QuantumCircuit(1)
        circuit.append(bit_flip(0.9), [0])
        assert "~bit_flip~" in draw(circuit)

    def test_multiqubit_box_indexed(self):
        circuit = QuantumCircuit(2)
        circuit.append(two_qubit_depolarizing(0.99), [0, 1])
        art = draw(circuit)
        assert ":0]" in art and ":1]" in art

    def test_method_alias(self):
        circuit = QuantumCircuit(1).h(0)
        assert circuit.draw() == draw(circuit)

    def test_empty_circuit(self):
        art = draw(QuantumCircuit(2))
        lines = art.splitlines()
        assert lines[0].startswith("q0: ")
        assert lines[1].startswith("q1: ")

    def test_label_alignment_two_digit(self):
        circuit = QuantumCircuit(11).h(10)
        lines = draw(circuit).splitlines()
        assert lines[0].startswith("q0 : ")
        assert lines[10].startswith("q10: ")
