"""Unit tests for the canonical, version-salted fingerprints."""

import numpy as np
import pytest

from repro.cache import fingerprint as fp
from repro.circuits import QuantumCircuit
from repro.core import CheckConfig
from repro.core.miter import alg2_trace_network
from repro.library import qft
from repro.noise import bit_flip, depolarizing, insert_random_noise


def noisy_pair(angle=0.3, p=0.99):
    ideal = QuantumCircuit(2).h(0).rz(angle, 0).cx(0, 1)
    noisy = ideal.copy()
    noisy.append(depolarizing(p), [1])
    return ideal, noisy


class TestCircuitFingerprint:
    def test_deterministic_across_rebuilds(self):
        a = fp.circuit_fingerprint(qft(3))
        b = fp.circuit_fingerprint(qft(3))
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_gate_angle_changes_fingerprint(self):
        one = QuantumCircuit(1).rz(0.3, 0)
        other = QuantumCircuit(1).rz(0.3000001, 0)
        assert fp.circuit_fingerprint(one) != fp.circuit_fingerprint(other)

    def test_qubit_map_changes_fingerprint(self):
        one = QuantumCircuit(2).cx(0, 1)
        other = QuantumCircuit(2).cx(1, 0)
        assert fp.circuit_fingerprint(one) != fp.circuit_fingerprint(other)

    def test_kraus_data_changes_fingerprint(self):
        one = QuantumCircuit(1).h(0)
        one.append(bit_flip(0.99), [0])
        other = QuantumCircuit(1).h(0)
        other.append(bit_flip(0.98), [0])
        assert fp.circuit_fingerprint(one) != fp.circuit_fingerprint(other)

    def test_name_is_irrelevant_matrix_is_not(self):
        """Two gates with equal matrices are the same gate to the cache."""
        import math

        named = QuantumCircuit(1).rz(math.pi / 2, 0)
        phase = np.exp(1j * math.pi / 4)
        anonymous = QuantumCircuit(1)
        anonymous.unitary(
            np.array([[1 / phase, 0], [0, phase]]), [0], name="mystery"
        )
        assert fp.circuit_fingerprint(named) == fp.circuit_fingerprint(
            anonymous
        )

    def test_width_changes_fingerprint(self):
        assert fp.circuit_fingerprint(
            QuantumCircuit(1).h(0)
        ) != fp.circuit_fingerprint(QuantumCircuit(2).h(0))


class TestStructureFingerprint:
    def test_same_structure_different_values_share(self):
        """Plans depend on structure only, so must their fingerprints."""
        a_ideal, a_noisy = noisy_pair(angle=0.3)
        b_ideal, b_noisy = noisy_pair(angle=0.7, p=0.95)
        a_net = alg2_trace_network(a_noisy, a_ideal)
        b_net = alg2_trace_network(b_noisy, b_ideal)
        assert fp.structure_fingerprint(a_net) == fp.structure_fingerprint(
            b_net
        )
        # ...while the circuit fingerprints of course differ
        assert fp.circuit_fingerprint(a_noisy) != fp.circuit_fingerprint(
            b_noisy
        )

    def test_different_wiring_differs(self):
        ideal = qft(3)
        one = alg2_trace_network(insert_random_noise(ideal, 2, seed=0), ideal)
        other = alg2_trace_network(
            insert_random_noise(ideal, 2, seed=3), ideal
        )
        assert fp.structure_fingerprint(one) != fp.structure_fingerprint(
            other
        )


class TestConfigFingerprint:
    def test_cache_knobs_are_stripped(self):
        """Where a result comes from must not change what it is keyed by."""
        plain = CheckConfig(epsilon=0.05)
        cached = CheckConfig(epsilon=0.05, cache=True, cache_dir="/anywhere")
        assert fp.config_fingerprint(plain) == fp.config_fingerprint(cached)

    def test_semantic_knobs_are_not(self):
        assert fp.config_fingerprint(
            CheckConfig(epsilon=0.05)
        ) != fp.config_fingerprint(CheckConfig(epsilon=0.01))
        assert fp.config_fingerprint(
            CheckConfig(backend="tdd")
        ) != fp.config_fingerprint(CheckConfig(backend="dense"))


class TestVersionSalt:
    def test_bump_invalidates_every_key_kind(self, monkeypatch):
        ideal, noisy = noisy_pair()
        net = alg2_trace_network(noisy, ideal)
        config = CheckConfig()
        before = (
            fp.circuit_fingerprint(ideal),
            fp.structure_fingerprint(net),
            fp.config_fingerprint(config),
            fp.plan_key("s", "order", "min_fill", None),
            fp.result_key("a", "b", "c"),
        )
        monkeypatch.setattr(fp, "CACHE_VERSION", fp.CACHE_VERSION + 1)
        after = (
            fp.circuit_fingerprint(ideal),
            fp.structure_fingerprint(net),
            fp.config_fingerprint(config),
            fp.plan_key("s", "order", "min_fill", None),
            fp.result_key("a", "b", "c"),
        )
        for old, new in zip(before, after):
            assert old != new


class TestPlanKey:
    def test_knobs_feed_the_key(self):
        base = fp.plan_key("s", "order", "min_fill", None)
        assert base != fp.plan_key("s2", "order", "min_fill", None)
        assert base != fp.plan_key("s", "order", "sequential", None)
        assert base != fp.plan_key("s", "order", "min_fill", 64)

    def test_greedy_ignores_order_method(self):
        """The greedy planner never consults the heuristic, so greedy
        plans built under different heuristics share one key."""
        assert fp.plan_key("s", "greedy", "min_fill", None) == fp.plan_key(
            "s", "greedy", "tree_decomposition", None
        )

    def test_prefixes_distinguish_kinds(self):
        assert fp.plan_key("s", "order", "min_fill", None).startswith("plan-")
        assert fp.result_key("a", "b", "c").startswith("result-")
