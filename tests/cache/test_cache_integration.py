"""Integration tests: the cache wired through backends and sessions.

The acceptance criteria of the caching subsystem live here:

* a repeated check of the same pair is a **result-cache hit** — zero
  planning, zero contraction, visible in ``RunStats.result_cache_hit``;
* a structurally identical new pair is a **plan-cache hit** — zero
  planning, visible in ``RunStats.plan_cache_hit``;
* cold and warm runs produce byte-identical ``CheckResult.to_dict()``
  modulo timing/counter fields, on all three backends;
* with caching off (the default) behaviour is exactly as before;
* corruption and version skew degrade to silent recomputation.
"""

import numpy as np
import pytest

import repro.backends.base as backends_base
from repro.backends import get_backend
from repro.cache import CheckCache, fingerprint
from repro.circuits import QuantumCircuit
from repro.core import CheckConfig, CheckSession
from repro.core.miter import alg2_trace_network
from repro.library import qft
from repro.noise import depolarizing, insert_random_noise

BACKENDS = ["tdd", "dense", "einsum"]

#: to_dict fields legitimately differing between a cold run and a
#: cache hit (everything else must be byte-identical).  A hit zeroes
#: every per-run work counter — it did no contraction — so cumulative
#: aggregates (StatsAggregator, /metrics) never re-count cached work.
TIMING_AND_COUNTER_FIELDS = (
    "time_seconds",
    "cpu_seconds",
    "term_times",
    "plan_cache_hit",
    "planning_seconds",
    "plan_trials",
    "result_cache_hit",
    "batched_slice_calls",
    "terms_computed",
)


def strip_timings(record: dict) -> dict:
    record = dict(record)
    record.pop("time_seconds", None)
    stats = dict(record["stats"])
    for field in TIMING_AND_COUNTER_FIELDS:
        stats.pop(field, None)
    record["stats"] = stats
    return record


def pair(angle=0.3, p=0.99):
    """A small ideal/noisy pair whose structure is angle-independent."""
    ideal = QuantumCircuit(3, "w").h(0).rz(angle, 0).cx(0, 1).cx(1, 2)
    noisy = ideal.copy()
    noisy.append(depolarizing(p), [1])
    noisy.append(depolarizing(p), [2])
    return ideal, noisy


def counting_build_plan(monkeypatch):
    """Route backends' build_plan through a call counter."""
    calls = []
    real = backends_base.build_plan

    def counted(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(backends_base, "build_plan", counted)
    return calls


class TestPlanCacheThroughBackends:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_fresh_backend_skips_planning_on_warm_cache(
        self, name, tmp_path, monkeypatch
    ):
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        calls = counting_build_plan(monkeypatch)

        cold = get_backend(name, plan_cache=tmp_path)
        plan = cold.plan_for(network)
        assert len(calls) == 1
        assert cold.plan_cache_misses == 1

        warm = get_backend(name, plan_cache=tmp_path)  # fresh instance
        replayed = warm.plan_for(network)
        assert len(calls) == 1  # zero planning
        assert warm.plan_cache_hits == 1
        assert replayed.steps == plan.steps
        assert replayed.order == plan.order

    def test_cached_plan_executes_to_the_same_value(self, tmp_path):
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        reference = get_backend("dense").contract_scalar(network)
        get_backend("dense", plan_cache=tmp_path).plan_for(network)
        warm = get_backend("dense", plan_cache=tmp_path)
        assert np.isclose(
            warm.contract_scalar(network), reference, atol=1e-12
        )

    def test_planning_knobs_partition_the_cache(self, tmp_path):
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        get_backend("dense", plan_cache=tmp_path).plan_for(network)
        other = get_backend(
            "dense", planner="greedy", plan_cache=tmp_path
        )
        other.plan_for(network)
        assert other.plan_cache_hits == 0  # greedy key is its own
        assert other.plan_cache_misses == 1

    def test_no_cache_keeps_counters_at_zero(self, monkeypatch):
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        calls = counting_build_plan(monkeypatch)
        backend = get_backend("dense")
        backend.plan_for(network)
        backend.plan_for(network)
        assert len(calls) == 1
        assert backend.plan_cache_hits == 0
        assert backend.plan_cache_misses == 0

    def test_describe_ships_the_disk_directory(self, tmp_path):
        spec = get_backend("einsum", plan_cache=tmp_path).describe()
        assert spec["plan_cache"] == str(tmp_path)
        assert get_backend("einsum").describe()["plan_cache"] is None
        # the spec round-trips through the worker rebuild path
        from repro.parallel.worker import backend_for_spec

        rebuilt = backend_for_spec(spec)
        assert rebuilt.plan_cache is not None
        assert rebuilt.plan_cache.directory == str(tmp_path)


class TestResultCacheThroughSessions:
    def config(self, backend, tmp_path, **overrides):
        settings = dict(
            epsilon=0.05,
            backend=backend,
            cache=True,
            cache_dir=str(tmp_path),
        )
        settings.update(overrides)
        return CheckConfig(**settings)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_cold_and_warm_byte_identical_modulo_timings(
        self, name, tmp_path
    ):
        ideal, noisy = pair()
        config = self.config(name, tmp_path)
        cold = CheckSession(config).check(ideal, noisy)
        assert cold.stats.result_cache_hit == 0
        warm_session = CheckSession(config)
        warm = warm_session.check(ideal, noisy)
        assert warm.stats.result_cache_hit == 1
        assert strip_timings(cold.to_dict()) == strip_timings(
            warm.to_dict()
        )

    def test_repeated_check_contracts_nothing(self, tmp_path):
        """A result hit must not even materialise a backend."""
        ideal, noisy = pair()
        config = self.config("tdd", tmp_path)
        CheckSession(config).check(ideal, noisy)
        warm_session = CheckSession(config)
        result = warm_session.check(ideal, noisy)
        assert result.stats.result_cache_hit == 1
        assert warm_session._backend is None  # untouched engine

    def test_structurally_identical_pair_skips_planning(
        self, tmp_path, monkeypatch
    ):
        config = self.config("einsum", tmp_path)
        CheckSession(config).check(*pair(angle=0.3))
        calls = counting_build_plan(monkeypatch)
        warm = CheckSession(config).check(*pair(angle=0.4, p=0.98))
        assert calls == []  # zero planning
        assert warm.stats.result_cache_hit == 0  # a genuinely new pair
        assert warm.stats.plan_cache_hit >= 1

    def test_within_session_replays_count_as_plan_hits(self, tmp_path):
        config = self.config("einsum", tmp_path)
        session = CheckSession(config)
        session.check(*pair(angle=0.3))
        again = session.check(*pair(angle=0.5))
        assert again.stats.plan_cache_hit >= 1

    def test_cache_off_is_exactly_todays_behaviour(self, tmp_path):
        ideal, noisy = pair()
        config = CheckConfig(epsilon=0.05, backend="einsum")
        assert config.cache is False
        session = CheckSession(config)
        assert session.cache is None
        result = session.check(ideal, noisy)
        assert result.stats.plan_cache_hit == 0
        assert result.stats.result_cache_hit == 0
        assert session.backend.plan_cache is None
        # and cached/uncached verdicts agree exactly
        cached = CheckSession(self.config("einsum", tmp_path)).check(
            ideal, noisy
        )
        assert strip_timings(cached.to_dict()) == strip_timings(
            result.to_dict()
        )

    def test_corrupt_result_entry_recomputes_silently(self, tmp_path):
        ideal, noisy = pair()
        config = self.config("dense", tmp_path)
        cold = CheckSession(config).check(ideal, noisy)
        for blob in tmp_path.rglob("result-*.blob"):
            blob.write_bytes(blob.read_bytes()[:13])
        recomputed = CheckSession(config).check(ideal, noisy)
        assert recomputed.stats.result_cache_hit == 0
        assert strip_timings(recomputed.to_dict()) == strip_timings(
            cold.to_dict()
        )
        # the store self-healed: the next session hits again
        rewarmed = CheckSession(config).check(ideal, noisy)
        assert rewarmed.stats.result_cache_hit == 1

    def test_version_salt_bump_invalidates_results(
        self, tmp_path, monkeypatch
    ):
        ideal, noisy = pair()
        config = self.config("dense", tmp_path)
        CheckSession(config).check(ideal, noisy)
        monkeypatch.setattr(
            fingerprint, "CACHE_VERSION", fingerprint.CACHE_VERSION + 1
        )
        stale = CheckSession(config).check(ideal, noisy)
        assert stale.stats.result_cache_hit == 0

    def test_config_change_misses(self, tmp_path):
        ideal, noisy = pair()
        CheckSession(self.config("dense", tmp_path)).check(ideal, noisy)
        other = CheckSession(
            self.config("dense", tmp_path, epsilon=0.04)
        ).check(ideal, noisy)
        assert other.stats.result_cache_hit == 0

    def test_time_budgeted_runs_are_never_cached(self, tmp_path):
        ideal, noisy = pair()
        config = self.config(
            "tdd",
            tmp_path,
            algorithm="alg1",
            alg1_time_budget_seconds=60.0,
        )
        CheckSession(config).check(ideal, noisy)
        again = CheckSession(config).check(ideal, noisy)
        assert again.stats.result_cache_hit == 0
        assert list(tmp_path.rglob("result-*.blob")) == []

    def test_check_many_dedups_byte_identical_rows(self, tmp_path):
        ideal, noisy = pair()
        session = CheckSession(self.config("einsum", tmp_path))
        results = list(
            session.check_many([(ideal, noisy)] * 3)
        )
        hits = [r.stats.result_cache_hit for r in results]
        assert hits == [0, 1, 1]  # first computes, the rest are lookups
        fidelities = {r.fidelity for r in results}
        assert len(fidelities) == 1

    def test_parallel_workers_share_the_disk_tier(self, tmp_path):
        """check_many(jobs=2) workers re-open the same cache directory,
        so a pre-warmed pool serves hits from every worker."""
        ideal, noisy = pair()
        config = self.config("einsum", tmp_path)
        CheckSession(config).check(ideal, noisy)  # warm the disk tier
        outcomes = list(
            CheckSession(config).check_many([(ideal, noisy)] * 2, jobs=2)
        )
        assert [r.stats.result_cache_hit for r in outcomes] == [1, 1]

    def test_backend_instance_is_never_mutated(self, tmp_path):
        """A caching session must not attach its plan cache to a
        caller-owned instance — that would leak caching into every
        other session sharing it, including cache=False ones."""
        ideal, noisy = pair()
        backend = get_backend("einsum")
        caching = CheckSession(CheckConfig(
            epsilon=0.05, backend=backend, cache=True,
            cache_dir=str(tmp_path),
        ))
        cached = caching.check(ideal, noisy)
        assert backend.plan_cache is None  # untouched
        assert cached.stats.plan_cache_hit == 0
        # the result cache still applies to instance-backed sessions
        warm = CheckSession(caching.config).check(ideal, noisy)
        assert warm.stats.result_cache_hit == 1
        # plan-caching an instance is opt-in at construction
        owned = get_backend("einsum", plan_cache=tmp_path)
        session = CheckSession(CheckConfig(
            epsilon=0.05, backend=owned, cache=True,
            cache_dir=str(tmp_path),
        ))
        assert session.backend.plan_cache is owned.plan_cache

    def test_cache_dir_pathlike_normalises_to_str(self, tmp_path):
        config = CheckConfig(cache=True, cache_dir=tmp_path)
        assert config.cache_dir == str(tmp_path)
        hash(config)  # stays hashable (worker session-cache key)
