"""Unit tests for the cache store tiers: LRU, disk, tiering, robustness."""

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cache import (
    CheckCache,
    DiskStore,
    MemoryStore,
    TieredStore,
    count_by_kind,
    default_cache_dir,
)
from repro.cache.store import decode_entry, encode_entry


class TestFraming:
    def test_roundtrip(self):
        assert decode_entry(encode_entry(b"payload")) == b"payload"

    def test_empty_payload_roundtrip(self):
        assert decode_entry(encode_entry(b"")) == b""

    @pytest.mark.parametrize(
        "damage",
        [
            lambda raw: raw[:-1],            # truncated payload
            lambda raw: raw[: len(raw) // 2],  # torn write
            lambda raw: b"junk" + raw,       # wrong magic
            lambda raw: raw + b"tail",       # trailing garbage
            lambda raw: raw[:-1] + b"X",     # flipped byte
            lambda raw: b"",                 # empty file
        ],
    )
    def test_damage_reads_as_none(self, damage):
        raw = encode_entry(b"some cached payload")
        assert decode_entry(damage(raw)) is None


class TestMemoryStore:
    def test_roundtrip_and_miss(self):
        store = MemoryStore()
        assert store.get("k") is None
        store.put("k", b"v")
        assert store.get("k") == b"v"

    def test_lru_eviction_order(self):
        """get() refreshes recency; eviction removes the *least* recent."""
        store = MemoryStore(max_entries=2)
        store.put("a", b"1")
        store.put("b", b"2")
        assert store.get("a") == b"1"  # a is now most-recently-used
        store.put("c", b"3")           # evicts b, not a
        assert store.get("b") is None
        assert store.get("a") == b"1"
        assert store.get("c") == b"3"
        assert store.stats().evictions == 1

    def test_put_refreshes_recency(self):
        store = MemoryStore(max_entries=2)
        store.put("a", b"1")
        store.put("b", b"2")
        store.put("a", b"1*")  # rewrite refreshes a
        store.put("c", b"3")   # evicts b
        assert store.get("a") == b"1*"
        assert store.get("b") is None

    def test_max_bytes_eviction(self):
        store = MemoryStore(max_entries=100, max_bytes=10)
        store.put("a", b"x" * 6)
        store.put("b", b"y" * 6)   # 12 bytes total -> evict a
        assert store.get("a") is None
        assert store.get("b") is not None

    def test_clear_and_prune(self):
        store = MemoryStore()
        for i in range(4):
            store.put(f"k{i}", b"x" * 10)
        assert store.prune(25) == 2  # oldest two go
        assert store.keys() == ["k2", "k3"]
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemoryStore(max_entries=0)


class TestDiskStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("plan-abc", b"payload")
        assert store.get("plan-abc") == b"payload"
        # a second store over the same directory sees the entry
        assert DiskStore(tmp_path).get("plan-abc") == b"payload"

    def test_miss_on_empty_dir(self, tmp_path):
        store = DiskStore(tmp_path / "never-created")
        assert store.get("plan-abc") is None
        assert store.stats().entries == 0
        assert store.clear() == 0

    def test_corrupt_entry_reads_as_miss_and_self_heals(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("plan-abc", b"payload")
        [blob] = list(tmp_path.rglob("*.blob"))
        blob.write_bytes(blob.read_bytes()[:10])  # truncate
        assert store.get("plan-abc") is None
        assert not blob.exists()  # damaged entry dropped
        store.put("plan-abc", b"payload")  # slot is writable again
        assert store.get("plan-abc") == b"payload"

    def test_garbage_entry_reads_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("plan-abc", b"payload")
        [blob] = list(tmp_path.rglob("*.blob"))
        blob.write_bytes(b"\x00\xff" * 100)
        assert store.get("plan-abc") is None

    def test_unpicklable_garbage_survives_adapters(self, tmp_path):
        """A validly framed but non-pickle payload must read as a plan
        miss, not an exception (version-skew simulation)."""
        from repro.cache import PlanCache
        from repro.core.miter import alg2_trace_network
        from repro.library import qft
        from repro.noise import insert_random_noise

        ideal = qft(2)
        net = alg2_trace_network(insert_random_noise(ideal, 1, seed=0), ideal)
        store = DiskStore(tmp_path)
        cache = PlanCache(store)
        knobs = dict(
            planner="order",
            order_method="min_fill",
            max_intermediate_size=None,
        )
        store.put(cache.key_for(net, **knobs), b"not a pickle at all")
        assert cache.get(net, **knobs) is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = DiskStore(tmp_path)
        for i in range(5):
            store.put(f"plan-{i:02d}", b"x" * 100)
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp-" in p.name]
        assert leftovers == []

    def test_write_failure_is_swallowed(self, tmp_path):
        # An unusable cache path (a *file* where the directory should
        # be — robust even when tests run as root, unlike chmod):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = DiskStore(blocker / "cache")
        store.put("plan-abc", b"payload")  # must not raise
        assert store.get("plan-abc") is None

    def test_prune_evicts_oldest_first(self, tmp_path):
        store = DiskStore(tmp_path)
        for i in range(3):
            store.put(f"plan-{i}", b"x" * 100)
        # make plan-0 the oldest and plan-1 the freshest explicitly
        times = {0: 1000, 2: 2000, 1: 3000}
        for i, stamp in times.items():
            [path] = list(tmp_path.rglob(f"plan-{i}.blob"))
            os.utime(path, (stamp, stamp))
        removed = store.prune(2 * (100 + 46))  # keep two framed entries
        assert removed == 1
        assert store.get("plan-0") is None  # oldest went first
        assert store.get("plan-1") is not None
        assert store.get("plan-2") is not None

    def test_clear_removes_everything(self, tmp_path):
        store = DiskStore(tmp_path)
        for i in range(4):
            store.put(f"result-{i}", b"data")
        assert store.clear() == 4
        assert store.stats().entries == 0

    def test_orphaned_temp_files_are_reaped(self, tmp_path):
        """A writer killed mid-put leaves a .tmp-* file; clear removes
        it outright and prune reaps it once it is stale."""
        store = DiskStore(tmp_path)
        store.put("plan-abc", b"payload")
        shard = next(p for p in tmp_path.iterdir() if p.is_dir())
        fresh_orphan = shard / ".tmp-orphan-fresh"
        fresh_orphan.write_bytes(b"half-written")
        stale_orphan = shard / ".tmp-orphan-stale"
        stale_orphan.write_bytes(b"half-written")
        os.utime(stale_orphan, (1000, 1000))
        store.prune(10**9)  # budget keeps every real entry
        assert not stale_orphan.exists()   # stale orphan reaped
        assert fresh_orphan.exists()       # in-flight write untouched
        assert store.get("plan-abc") == b"payload"
        store.clear()
        assert not fresh_orphan.exists()   # clear wipes unconditionally

    def test_env_var_sets_default_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        store = DiskStore()
        store.put("plan-x", b"1")
        assert (tmp_path / "env-cache").is_dir()

    def test_default_directory_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"


class TestTieredStore:
    def test_put_writes_through_and_get_promotes(self, tmp_path):
        memory = MemoryStore()
        disk = DiskStore(tmp_path)
        tiered = TieredStore([memory, disk])
        tiered.put("k", b"v")
        assert memory.get("k") == b"v"
        assert disk.get("k") == b"v"
        # a fresh memory tier warms itself from disk on first get
        cold = TieredStore([MemoryStore(), DiskStore(tmp_path)])
        assert cold.get("k") == b"v"
        assert cold.tiers[0].get("k") == b"v"  # promoted

    def test_directory_comes_from_persistent_tier(self, tmp_path):
        tiered = TieredStore([MemoryStore(), DiskStore(tmp_path)])
        assert tiered.directory == str(tmp_path)
        assert TieredStore([MemoryStore()]).directory is None

    def test_stats_reports_tiers(self, tmp_path):
        tiered = TieredStore([MemoryStore(), DiskStore(tmp_path)])
        tiered.put("k", b"v")
        stats = tiered.stats()
        assert stats.entries == 1
        assert [tier.store for tier in stats.tiers] == ["memory", "disk"]

    def test_needs_at_least_one_tier(self):
        with pytest.raises(ValueError):
            TieredStore([])


def _hammer_store(directory, key, payload, repeats):
    """Worker: rewrite the same key many times (concurrent-writer test)."""
    store = DiskStore(directory)
    for _ in range(repeats):
        store.put(key, payload)
    return True


class TestConcurrentWriters:
    def test_two_processes_same_key_leave_a_readable_store(self, tmp_path):
        """Interleaved writers of one key must never produce a state a
        reader can crash on or misread — the os.replace guarantee."""
        payload_a = pickle.dumps({"writer": "a", "data": list(range(200))})
        payload_b = pickle.dumps({"writer": "b", "data": list(range(300))})
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_hammer_store, str(tmp_path), "result-shared",
                            payload_a, 50),
                pool.submit(_hammer_store, str(tmp_path), "result-shared",
                            payload_b, 50),
            ]
            for future in futures:
                assert future.result() is True
        raw = DiskStore(tmp_path).get("result-shared")
        assert raw in (payload_a, payload_b)  # one write won, intact
        assert pickle.loads(raw)["writer"] in ("a", "b")
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp-" in p.name]
        assert leftovers == []


class TestCheckCacheFacade:
    def test_open_builds_two_tiers(self, tmp_path):
        cache = CheckCache.open(tmp_path)
        assert cache.directory == str(tmp_path)
        tiers = cache.stats().tiers
        assert [tier.store for tier in tiers] == ["memory", "disk"]

    def test_clear_and_prune_passthrough(self, tmp_path):
        cache = CheckCache.open(tmp_path)
        cache.store.put("plan-1", b"x" * 50)
        cache.store.put("result-1", b"y" * 50)
        assert cache.stats().entries == 2
        # entries live in both tiers; the count is logical, not summed
        assert cache.prune(0) == 2
        assert cache.stats().entries == 0
        cache.store.put("plan-2", b"z")
        assert cache.clear() == 1

    def test_count_by_kind(self):
        counts = count_by_kind(["plan-a", "plan-b", "result-c", "weird"])
        assert counts == {"plans": 2, "results": 1, "other": 1}
