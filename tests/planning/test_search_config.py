"""Validation and plumbing of the search-planner knobs.

``plan_budget_seconds`` / ``plan_seed`` follow the house validation
pattern — shared validators used by both the backend constructor and
``CheckConfig``, every rejection message stating the valid domain,
wrong *types* rejected with ``TypeError`` — and the knobs must travel
config -> session -> backend -> ``build_plan`` unchanged.
"""

import numpy as np
import pytest

from repro.backends import DenseBackend, get_backend
from repro.backends.base import (
    validate_plan_budget_seconds,
    validate_plan_seed,
)
from repro.core import CheckConfig, CheckSession
from repro.library import qft
from repro.noise import insert_random_noise

BAD_BUDGET_TYPES = ["1.0", True, [1.0], 1j]
BAD_BUDGET_VALUES = [-1.0, -0.001, float("inf"), float("nan")]
BAD_SEED_TYPES = ["0", True, 1.5, None]
BAD_SEED_VALUES = [-1, -10]


class TestSharedValidators:
    @pytest.mark.parametrize("value", BAD_BUDGET_TYPES)
    def test_budget_type_errors_state_the_domain(self, value):
        with pytest.raises(TypeError, match=">= 0 or\\s+None"):
            validate_plan_budget_seconds(value)

    @pytest.mark.parametrize("value", BAD_BUDGET_VALUES)
    def test_budget_value_errors_state_the_domain(self, value):
        with pytest.raises(ValueError, match=">= 0 or None"):
            validate_plan_budget_seconds(value)

    @pytest.mark.parametrize("value", [None, 0, 0.0, 1, 2.5])
    def test_valid_budgets_pass(self, value):
        validate_plan_budget_seconds(value)

    @pytest.mark.parametrize("value", BAD_SEED_TYPES)
    def test_seed_type_errors_state_the_domain(self, value):
        with pytest.raises(TypeError, match="integer >= 0"):
            validate_plan_seed(value)

    @pytest.mark.parametrize("value", BAD_SEED_VALUES)
    def test_seed_value_errors_state_the_domain(self, value):
        with pytest.raises(ValueError, match="integer >= 0"):
            validate_plan_seed(value)

    @pytest.mark.parametrize("value", [0, 1, 2**32])
    def test_valid_seeds_pass(self, value):
        validate_plan_seed(value)


class TestCheckConfigValidation:
    @pytest.mark.parametrize("value", BAD_BUDGET_TYPES)
    def test_bad_budget_type_rejected_at_construction(self, value):
        with pytest.raises(TypeError, match="plan_budget_seconds"):
            CheckConfig(plan_budget_seconds=value)

    @pytest.mark.parametrize("value", BAD_BUDGET_VALUES)
    def test_bad_budget_value_rejected_at_construction(self, value):
        with pytest.raises(ValueError, match="plan_budget_seconds"):
            CheckConfig(plan_budget_seconds=value)

    @pytest.mark.parametrize("value", BAD_SEED_TYPES)
    def test_bad_seed_type_rejected_at_construction(self, value):
        with pytest.raises(TypeError, match="plan_seed"):
            CheckConfig(plan_seed=value)

    @pytest.mark.parametrize("value", BAD_SEED_VALUES)
    def test_bad_seed_value_rejected_at_construction(self, value):
        with pytest.raises(ValueError, match="plan_seed"):
            CheckConfig(plan_seed=value)

    @pytest.mark.parametrize("planner", ["anneal", "hyper"])
    def test_search_planners_are_valid_choices(self, planner):
        assert CheckConfig(planner=planner).planner == planner

    def test_replace_revalidates_the_search_knobs(self):
        config = CheckConfig()
        assert config.replace(plan_budget_seconds=0.5) \
            .plan_budget_seconds == 0.5
        with pytest.raises(ValueError):
            config.replace(plan_seed=-1)

    def test_knobs_conflicting_with_an_instance_backend_rejected(self):
        with pytest.raises(ValueError, match="plan_budget_seconds"):
            CheckConfig(backend=DenseBackend(), plan_budget_seconds=0.5)
        with pytest.raises(ValueError, match="plan_seed"):
            CheckConfig(backend=DenseBackend(), plan_seed=3)
        config = CheckConfig(  # matching instances are fine
            backend=DenseBackend(plan_budget_seconds=0.5, plan_seed=3),
            plan_budget_seconds=0.5,
            plan_seed=3,
        )
        assert config.backend.plan_seed == 3


class TestBackendConstruction:
    @pytest.mark.parametrize("value", BAD_BUDGET_TYPES)
    def test_bad_budget_rejected(self, value):
        with pytest.raises(TypeError, match="plan_budget_seconds"):
            get_backend("dense", plan_budget_seconds=value)

    @pytest.mark.parametrize("value", BAD_SEED_VALUES)
    def test_bad_seed_rejected(self, value):
        with pytest.raises(ValueError, match="plan_seed"):
            get_backend("einsum", plan_seed=value)

    @pytest.mark.parametrize("name", ["tdd", "dense", "einsum"])
    def test_knobs_survive_the_describe_roundtrip(self, name):
        """describe() is the worker-rebuild wire format — the search
        knobs must ride it like every other planning knob."""
        backend = get_backend(
            name, planner="anneal", plan_budget_seconds=0.25, plan_seed=7
        )
        spec = backend.describe()
        assert spec["plan_budget_seconds"] == 0.25
        assert spec["plan_seed"] == 7
        from repro.parallel.worker import backend_for_spec

        rebuilt = backend_for_spec(spec)
        assert rebuilt.plan_budget_seconds == 0.25
        assert rebuilt.plan_seed == 7
        assert rebuilt.planner == "anneal"


class TestEndToEndPlumbing:
    def pair(self):
        ideal = qft(3)
        return ideal, insert_random_noise(ideal, 2, seed=0)

    def test_knobs_reach_the_backend_through_the_session(self):
        session = CheckSession(CheckConfig(
            backend="dense", planner="anneal",
            plan_budget_seconds=0.0, plan_seed=5,
        ))
        assert session.backend.planner == "anneal"
        assert session.backend.plan_budget_seconds == 0.0
        assert session.backend.plan_seed == 5

    @pytest.mark.parametrize("planner", ["anneal", "hyper"])
    def test_search_planner_checks_agree_with_dense(self, planner):
        ideal, noisy = self.pair()
        plain = CheckSession(CheckConfig(backend="dense")) \
            .check(ideal, noisy)
        searched = CheckSession(CheckConfig(
            backend="dense", planner=planner, plan_budget_seconds=0.0,
        )).check(ideal, noisy)
        assert np.isclose(searched.fidelity, plain.fidelity, atol=1e-9)
        assert searched.equivalent == plain.equivalent

    def test_zero_budget_runs_zero_trials_but_still_counts_planning(self):
        ideal, noisy = self.pair()
        result = CheckSession(CheckConfig(
            backend="einsum", planner="anneal", plan_budget_seconds=0.0,
        )).check(ideal, noisy)
        assert result.stats.plan_trials == 0
        assert result.stats.planning_seconds > 0

    def test_funded_search_reports_trials_in_the_stats(self):
        ideal, noisy = self.pair()
        result = CheckSession(CheckConfig(
            backend="einsum", planner="anneal", plan_budget_seconds=0.05,
        )).check(ideal, noisy)
        assert result.stats.plan_trials > 0
        assert result.stats.planning_seconds >= 0.05
