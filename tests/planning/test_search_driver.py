"""Unit tests for the anytime search driver (:mod:`repro.planning`).

The contract under test: ``search_plan`` never returns anything worse
than the heuristic baselines (anytime floor), a zero budget runs zero
trials, an exact ``trials`` count is deterministic and machine
independent, and every plan carries a faithful
:class:`~repro.planning.PlanSearchReport`.
"""

import numpy as np
import pytest

from repro.core.miter import alg2_trace_network
from repro.library import qft
from repro.noise import insert_random_noise
from repro.planning import (
    DEFAULT_PLAN_BUDGET_SECONDS,
    SEARCHERS,
    PlanSearcher,
    register_searcher,
    search_plan,
)
from repro.planning.driver import _steps_from_pairs, merge_cost
from repro.tensornet import greedy_plan, plan_from_order
from repro.tensornet.planner import SEARCH_PLANNERS, _make_step, _plan_inputs

SEARCH = sorted(SEARCHERS)


def network(qubits=3, noises=2, seed=0):
    ideal = qft(qubits)
    noisy = insert_random_noise(ideal, noises, seed=seed)
    return alg2_trace_network(noisy, ideal)


def baseline_cost(net):
    return min(
        greedy_plan(net).total_cost(),
        plan_from_order(net, method="min_fill").total_cost(),
    )


class TestValidation:
    def test_unknown_planner_lists_the_registered_searchers(self):
        with pytest.raises(ValueError) as err:
            search_plan(network(), "gredy")
        for name in SEARCHERS:
            assert name in str(err.value)

    @pytest.mark.parametrize("budget", [-1.0, -0.001, float("inf"),
                                        float("nan"), "1.0", True])
    def test_bad_budget_rejected(self, budget):
        with pytest.raises(ValueError, match=">= 0 or None"):
            search_plan(network(), "anneal", budget_seconds=budget)

    @pytest.mark.parametrize("trials", [-1, 1.5, "3", True])
    def test_bad_trials_rejected(self, trials):
        with pytest.raises(ValueError, match=">= 0 or None"):
            search_plan(network(), "anneal", trials=trials)

    def test_register_searcher_requires_a_name(self):
        class Nameless(PlanSearcher):
            def trial(self, rng, best_cost):
                return None

        with pytest.raises(ValueError, match="non-empty name"):
            register_searcher(Nameless)

    def test_register_searcher_requires_a_known_planner_name(self):
        class Rogue(PlanSearcher):
            name = "rogue"

            def trial(self, rng, best_cost):
                return None

        with pytest.raises(ValueError) as err:
            register_searcher(Rogue)
        for name in SEARCH_PLANNERS:
            assert name in str(err.value)

    def test_every_search_planner_has_a_registered_searcher(self):
        assert set(SEARCHERS) == set(SEARCH_PLANNERS)


class TestAnytimeSemantics:
    @pytest.mark.parametrize("planner", SEARCH)
    def test_zero_budget_returns_the_best_baseline(self, planner):
        net = network()
        plan = search_plan(net, planner, budget_seconds=0)
        report = plan.search_report
        assert report.trials == 0
        assert report.best_trial is None
        assert report.trajectory == ()
        assert plan.planner == planner  # relabelled baseline
        assert plan.total_cost() == baseline_cost(net)
        plan.validate()

    @pytest.mark.parametrize("planner", SEARCH)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_search_never_loses_to_the_baselines(self, planner, seed):
        net = network()
        plan = search_plan(net, planner, trials=10, seed=seed)
        assert plan.total_cost() <= baseline_cost(net)
        plan.validate()

    @pytest.mark.parametrize("planner", SEARCH)
    def test_fixed_trials_are_deterministic(self, planner):
        net = network()
        kwargs = dict(trials=8, seed=3)
        first = search_plan(net, planner, **kwargs)
        second = search_plan(net, planner, **kwargs)
        assert first.digest() == second.digest()
        assert first.steps == second.steps
        assert first.search_report.best_cost == \
            second.search_report.best_cost

    def test_trials_take_precedence_over_the_clock(self):
        plan = search_plan(
            network(), "anneal", trials=3, budget_seconds=0
        )
        assert plan.search_report.trials == 3

    def test_budget_is_enforced_by_the_injected_clock(self):
        ticks = iter(float(t) for t in range(100))
        plan = search_plan(
            network(),
            "anneal",
            budget_seconds=3.5,
            clock=lambda: next(ticks),
        )
        # start at t=0; loop checks at t=1, 2, 3 (run) and stops at t=4
        assert plan.search_report.trials == 3

    def test_default_budget_applies_when_nothing_is_given(self):
        ticks = iter(float(t) for t in range(100))
        plan = search_plan(network(), "anneal", clock=lambda: next(ticks))
        assert plan.search_report.budget_seconds == \
            DEFAULT_PLAN_BUDGET_SECONDS


class TestSearchImprovement:
    def test_anneal_beats_both_baselines_on_a_noisy_qft(self):
        """The acceptance workload in miniature: anneal finds a strictly
        cheaper contraction than greedy and min_fill within a modest
        deterministic trial count."""
        net = network(qubits=4, noises=2, seed=0)
        plan = search_plan(net, "anneal", trials=40, seed=0)
        assert plan.total_cost() < baseline_cost(net)
        report = plan.search_report
        assert report.best_trial is not None
        assert report.trajectory[-1] == (report.best_trial, report.best_cost)
        costs = [cost for _, cost in report.trajectory]
        assert costs == sorted(costs, reverse=True)
        assert all(cost < report.baseline_cost for cost in costs)
        plan.validate()


class TestReport:
    def test_report_contents(self):
        net = network()
        plan = search_plan(net, "anneal", trials=5, seed=11)
        report = plan.search_report
        assert report.planner == "anneal"
        assert report.seed == 11
        assert report.budget_seconds is None
        assert report.trials == 5
        assert report.baseline_planner in ("greedy", "min_fill")
        assert report.best_cost == plan.total_cost()
        assert report.best_cost <= report.baseline_cost
        assert report.search_seconds >= 0

    def test_report_to_dict_is_json_safe(self):
        import json

        plan = search_plan(network(), "anneal", trials=5)
        record = json.loads(json.dumps(plan.search_report.to_dict()))
        assert record["planner"] == "anneal"
        assert isinstance(record["trajectory"], list)

    def test_report_rides_through_slicing(self):
        plan = search_plan(
            network(), "anneal", trials=5, max_intermediate_size=16
        )
        assert plan.search_report is not None
        assert plan.peak_size() <= 16
        assert plan.num_slices() >= 1
        plan.validate()

    def test_plan_to_dict_carries_the_search_record(self):
        plan = search_plan(network(), "anneal", trials=5)
        assert plan.to_dict()["search"]["trials"] == 5
        heuristic = greedy_plan(network())
        assert heuristic.to_dict()["search"] is None

    def test_report_does_not_perturb_the_digest(self):
        """The digest hashes plan *structure*; provenance must not
        split the plan cache by search metadata."""
        from dataclasses import replace

        plan = search_plan(network(), "anneal", trials=8, seed=0)
        stripped = replace(plan, search_report=None)
        assert plan.digest() == stripped.digest()


class TestExecution:
    @pytest.mark.parametrize("planner", SEARCH)
    def test_searched_plan_contracts_to_the_dense_value(self, planner):
        from repro.backends import get_backend

        net = network()
        reference = get_backend("dense").contract_scalar(net)
        plan = search_plan(net, planner, trials=6, seed=1)
        for backend in ("tdd", "dense", "einsum"):
            value = get_backend(backend).contract_scalar(net, plan=plan)
            assert np.isclose(value, reference, atol=1e-9)


class TestStepsFromPairs:
    def test_stable_ids_reproduce_positional_costs(self):
        """The id-pair -> positional-step conversion must price every
        merge exactly like the searchers' shared merge_cost model."""
        net = network()
        inputs, dims = _plan_inputs(net)
        plan = search_plan(net, "anneal", trials=20, seed=0)
        if plan.search_report.best_trial is None:  # pragma: no cover
            pytest.skip("baseline won; no pair list to check")
        total = sum(step.flops for step in plan.steps)
        assert total == plan.search_report.best_cost

    def test_merge_cost_matches_make_step(self):
        inputs = [("a", "b"), ("b", "c"), ("c", "a")]
        dims = {"a": 2, "b": 3, "c": 4}
        ops = list(inputs)
        step = _make_step(ops, 0, 1, dims)
        output, size, flops = merge_cost(inputs[0], inputs[1], dims)
        assert step.output == output
        assert step.flops == flops
        steps = _steps_from_pairs(inputs, dims, [(0, 1), (3, 2)])
        assert steps[0].output == output
        assert steps[1].output == ()
