"""Searched plans through the plan/result caches.

The acceptance story: paying for a search once is enough.  A warm
plan-cache rerun replays the searched plan — provenance report
included — without spending a single trial, and the budget/seed knobs
partition the cache so a zero-budget baseline can never mask a funded
search (or vice versa).
"""

from repro.backends import get_backend
from repro.circuits import QuantumCircuit
from repro.core import CheckConfig, CheckSession
from repro.core.miter import alg2_trace_network
from repro.noise import depolarizing

BUDGET = 0.05  # plenty for dozens of trials on these networks


def pair(angle=0.3, p=0.99):
    """A small ideal/noisy pair whose structure is angle-independent."""
    ideal = QuantumCircuit(3, "w").h(0).rz(angle, 0).cx(0, 1).cx(1, 2)
    noisy = ideal.copy()
    noisy.append(depolarizing(p), [1])
    noisy.append(depolarizing(p), [2])
    return ideal, noisy


class TestBackendPlanCache:
    def test_warm_rerun_skips_the_search_entirely(self, tmp_path):
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        knobs = dict(
            planner="anneal", plan_budget_seconds=BUDGET, plan_seed=0,
            plan_cache=tmp_path,
        )
        cold = get_backend("einsum", **knobs)
        plan = cold.plan_for(network)
        assert cold.plan_cache_misses == 1
        assert cold.plan_trials_total >= 1
        assert cold.planning_seconds_total >= BUDGET
        assert plan.search_report.trials == cold.plan_trials_total

        warm = get_backend("einsum", **knobs)  # fresh instance
        replayed = warm.plan_for(network)
        assert warm.plan_cache_hits == 1
        assert warm.plan_trials_total == 0  # zero search on a hit
        assert warm.planning_seconds_total < BUDGET
        assert replayed.steps == plan.steps
        # the provenance report is cached alongside the plan
        assert replayed.search_report == plan.search_report

    def test_budget_partitions_the_cache(self, tmp_path):
        """A zero-budget baseline entry must never answer for a funded
        search, and a funded entry must never answer a baseline ask."""
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        get_backend(
            "einsum", planner="anneal", plan_budget_seconds=0.0,
            plan_cache=tmp_path,
        ).plan_for(network)
        funded = get_backend(
            "einsum", planner="anneal", plan_budget_seconds=BUDGET,
            plan_cache=tmp_path,
        )
        funded.plan_for(network)
        assert funded.plan_cache_hits == 0
        assert funded.plan_cache_misses == 1
        assert funded.plan_trials_total >= 1

    def test_seed_partitions_the_cache(self, tmp_path):
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        get_backend(
            "einsum", planner="anneal", plan_budget_seconds=0.0,
            plan_seed=0, plan_cache=tmp_path,
        ).plan_for(network)
        other = get_backend(
            "einsum", planner="anneal", plan_budget_seconds=0.0,
            plan_seed=1, plan_cache=tmp_path,
        )
        other.plan_for(network)
        assert other.plan_cache_hits == 0

    def test_heuristic_planners_ignore_the_search_knobs(self, tmp_path):
        """For greedy the knobs are inert and must not split the cache."""
        ideal, noisy = pair()
        network = alg2_trace_network(noisy, ideal)
        get_backend(
            "einsum", planner="greedy", plan_seed=0, plan_cache=tmp_path,
        ).plan_for(network)
        warm = get_backend(
            "einsum", planner="greedy", plan_seed=9, plan_cache=tmp_path,
        )
        warm.plan_for(network)
        assert warm.plan_cache_hits == 1


class TestSessionWarmReruns:
    def config(self, tmp_path, **overrides):
        settings = dict(
            epsilon=0.05, backend="einsum", planner="anneal",
            plan_budget_seconds=BUDGET, cache=True,
            cache_dir=str(tmp_path),
        )
        settings.update(overrides)
        return CheckConfig(**settings)

    def test_result_hit_restamps_search_time_to_zero(self, tmp_path):
        ideal, noisy = pair()
        config = self.config(tmp_path)
        cold = CheckSession(config).check(ideal, noisy)
        assert cold.stats.plan_trials >= 1
        assert cold.stats.planning_seconds >= BUDGET
        warm = CheckSession(config).check(ideal, noisy)
        assert warm.stats.result_cache_hit == 1
        assert warm.stats.planning_seconds == 0.0
        assert warm.stats.plan_trials == 0

    def test_plan_hit_spends_no_trials_on_a_new_pair(self, tmp_path):
        config = self.config(tmp_path)
        CheckSession(config).check(*pair(angle=0.3))
        warm = CheckSession(config).check(*pair(angle=0.4, p=0.98))
        # structurally identical new pair: searched plan replayed as-is
        assert warm.stats.result_cache_hit == 0
        assert warm.stats.plan_cache_hit >= 1
        assert warm.stats.plan_trials == 0
        assert warm.stats.planning_seconds < BUDGET
