"""Unit tests for the two search strategies behind ``search_plan``.

Trials are exercised directly through the :class:`PlanSearcher`
interface: whatever a trial returns must be a complete, correctly
priced contraction over stable operand ids — the driver trusts this
when it converts only the winning trial to plan steps.
"""

import numpy as np
import pytest

from repro.planning.anneal import AnnealSearcher
from repro.planning.driver import _steps_from_pairs, merge_cost
from repro.planning.hyper import HyperSearcher

SEARCHER_CLASSES = [AnnealSearcher, HyperSearcher]

#: a closed 6-tensor ring with mixed dimensions
RING_INPUTS = [
    ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "a"),
]
RING_DIMS = {"a": 2, "b": 3, "c": 2, "d": 4, "e": 2, "f": 3}

#: two disconnected components (forces the outer-product fallbacks)
SPLIT_INPUTS = [("a", "b"), ("b", "a"), ("x", "y"), ("y", "x")]
SPLIT_DIMS = {"a": 2, "b": 2, "x": 3, "y": 3}

UNBEATABLE = 10**18


def replay_cost(inputs, dims, pairs):
    """Recompute a trial's cost by replaying its pairs independently."""
    ops = {i: labs for i, labs in enumerate(inputs)}
    next_id = len(inputs)
    total = 0
    for a, b in pairs:
        output, _, flops = merge_cost(ops.pop(a), ops.pop(b), dims)
        total += flops
        ops[next_id] = output
        next_id += 1
    assert len(ops) == 1, "trial did not contract to a single operand"
    return total


@pytest.mark.parametrize("cls", SEARCHER_CLASSES)
@pytest.mark.parametrize("inputs,dims", [
    (RING_INPUTS, RING_DIMS),
    (SPLIT_INPUTS, SPLIT_DIMS),
])
class TestTrialContract:
    def test_trial_is_a_complete_correctly_priced_contraction(
        self, cls, inputs, dims
    ):
        searcher = cls(inputs, dims)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            cost, pairs = searcher.trial(rng, UNBEATABLE)
            assert len(pairs) == len(inputs) - 1
            assert cost == replay_cost(inputs, dims, pairs)

    def test_pairs_convert_to_valid_positional_steps(
        self, cls, inputs, dims
    ):
        searcher = cls(inputs, dims)
        cost, pairs = searcher.trial(np.random.default_rng(0), UNBEATABLE)
        steps = _steps_from_pairs(inputs, dims, pairs)
        assert sum(step.flops for step in steps) == cost
        eliminated = [lab for step in steps for lab in step.eliminated]
        assert sorted(eliminated) == sorted(dims)

    def test_trial_is_deterministic_under_a_fixed_rng_stream(
        self, cls, inputs, dims
    ):
        searcher = cls(inputs, dims)
        first = searcher.trial(np.random.default_rng(42), UNBEATABLE)
        second = searcher.trial(np.random.default_rng(42), UNBEATABLE)
        assert first == second

    def test_trial_prunes_against_an_already_beaten_cost(
        self, cls, inputs, dims
    ):
        searcher = cls(inputs, dims)
        assert searcher.trial(np.random.default_rng(0), 1) is None


class TestEdgeCases:
    def test_hyper_handles_an_empty_network(self):
        assert HyperSearcher([], {}).trial(
            np.random.default_rng(0), UNBEATABLE
        ) == (0, [])

    def test_single_tensor_needs_no_merges(self):
        for cls in SEARCHER_CLASSES:
            cost, pairs = cls([("a", "a")], {"a": 2}).trial(
                np.random.default_rng(0), UNBEATABLE
            )
            assert (cost, pairs) == (0, [])

    def test_anneal_explores_distinct_merge_orders(self):
        """Across seeds the restarts must not all collapse onto one
        deterministic contraction — that would be greedy, not search."""
        searcher = AnnealSearcher(RING_INPUTS, RING_DIMS)
        seen = {
            tuple(searcher.trial(np.random.default_rng(seed), UNBEATABLE)[1])
            for seed in range(12)
        }
        assert len(seen) > 1
